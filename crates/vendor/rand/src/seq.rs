//! Sequence-related sampling, mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Extension methods on slices: random element choice and in-place shuffling.
pub trait SliceRandom {
    /// The element type of the sequence.
    type Item;

    /// A uniformly chosen reference into the slice, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut items: Vec<u32> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(items, (0..50).collect::<Vec<_>>());
    }
}
