//! Offline stand-in for the `rand` crate.
//!
//! The container has no network access, so this workspace vendors a small,
//! fully deterministic PRNG with the API subset the repository uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom`] (`choose`/`shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64. The stream it
//! produces is **not** the same as the real `rand::rngs::StdRng` (which is
//! ChaCha12); all determinism guarantees in this repository are defined in
//! terms of this generator. It is stable across platforms and thread counts.

pub mod rngs;
pub mod seq;

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty, like the real `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i32 = rng.gen_range(-5..40);
            assert!((-5..40).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: f64 = rng.gen_range(0.1..3.0);
            assert!((0.1..3.0).contains(&z));
            let w: u8 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits: {hits}");
    }
}
