//! Offline stand-in for `criterion`.
//!
//! The container has no network access, so this crate provides a minimal
//! wall-clock benchmarking harness exposing the API subset the workspace's
//! benches use: [`Criterion`], [`black_box`], [`BenchmarkId`],
//! `benchmark_group`/`bench_function`/`bench_with_input`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and prints the mean
//! and minimum per-iteration time.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, forwarding to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for a parameterized benchmark, `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time the closure: a warm-up call, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.last = Some((total / self.samples as u32, min));
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        last: None,
    };
    f(&mut bencher);
    match bencher.last {
        Some((mean, min)) => {
            println!("bench {label:<50} mean {mean:>12.3?}   min {min:>12.3?}")
        }
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Finish the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: std::marker::PhantomData,
        }
    }
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
