//! Offline stand-in for `serde_derive`.
//!
//! The workspace has no access to crates.io, and nothing in the repository
//! actually serializes data (there is no `serde_json` usage): the
//! `#[derive(Serialize, Deserialize)]` attributes only document intent. The
//! derives therefore expand to nothing; the marker traits live in the sibling
//! `serde` stand-in crate.

use proc_macro::TokenStream;

/// Expands to nothing: the `Serialize` marker trait is never used in bounds.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: the `Deserialize` marker trait is never used in bounds.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
