//! Offline stand-in for the `serde` facade.
//!
//! The repository derives `Serialize`/`Deserialize` on its data types to
//! document which ones form the dataset interchange surface, but never
//! invokes a serializer (there is no `serde_json`). Since the container has
//! no network access, this crate provides the two marker traits and re-exports
//! the no-op derives so the annotations compile unchanged. Swapping in the
//! real serde later is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
