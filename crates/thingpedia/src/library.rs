//! The Thingpedia registry: classes + primitive templates + entity metadata.

use std::collections::BTreeMap;

use thingtalk::class::ClassDef;
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::types::Type;

use crate::templates::{PhraseCategory, PrimitiveTemplate};

/// The skill library: a set of classes with their primitive templates.
///
/// Implements [`SchemaRegistry`] so it can be used directly with the
/// typechecker, canonicalizer and describer of the `thingtalk` crate.
#[derive(Debug, Default, Clone)]
pub struct Thingpedia {
    classes: BTreeMap<String, ClassDef>,
    templates: Vec<PrimitiveTemplate>,
}

impl Thingpedia {
    /// An empty library.
    pub fn new() -> Self {
        Thingpedia::default()
    }

    /// The full builtin library (45+ skills across the domains of the
    /// paper's Thingpedia snapshot).
    pub fn builtin() -> Self {
        let mut library = Thingpedia::new();
        for (class, templates) in crate::builtin::all() {
            library.add_class(class, templates);
        }
        library
    }

    /// The builtin library plus the comprehensive Spotify skill used in the
    /// first case study (§6.1).
    pub fn builtin_with_spotify() -> Self {
        let mut library = Thingpedia::builtin();
        let (class, templates) = crate::builtin::spotify::extended();
        library.add_class(class, templates);
        library
    }

    /// Add a class and its primitive templates.
    pub fn add_class(&mut self, class: ClassDef, templates: Vec<PrimitiveTemplate>) {
        self.classes.insert(class.name.clone(), class);
        self.templates.extend(templates);
    }

    /// Reassemble a library from serialized parts, preserving the template
    /// `Vec` **exactly** as given. The template order is part of the
    /// synthesis identity (per-template pool RNG streams key on splice
    /// position), so deserializers — the world-bundle codec — must not
    /// rebuild it through [`Thingpedia::add_class`], which would group
    /// templates by class.
    pub fn from_parts(classes: Vec<ClassDef>, templates: Vec<PrimitiveTemplate>) -> Self {
        Thingpedia {
            classes: classes
                .into_iter()
                .map(|class| (class.name.clone(), class))
                .collect(),
            templates,
        }
    }

    /// Add or replace a class. An existing class's templates are replaced
    /// *in place* — the new templates take over the position of the old
    /// class's first template — so the template order of every other class
    /// (and therefore their phrase-pool entries under per-template RNG
    /// streams) is untouched by an update.
    pub fn upsert_class(&mut self, class: ClassDef, templates: Vec<PrimitiveTemplate>) {
        let name = class.name.clone();
        self.classes.insert(name.clone(), class);
        let insert_at = self.templates.iter().position(|t| t.class == name);
        self.templates.retain(|t| t.class != name);
        match insert_at {
            Some(at) => {
                let at = at.min(self.templates.len());
                self.templates.splice(at..at, templates);
            }
            None => self.templates.extend(templates),
        }
    }

    /// Remove a class and all of its templates. Returns whether the class
    /// existed.
    pub fn remove_class(&mut self, name: &str) -> bool {
        let existed = self.classes.remove(name).is_some();
        self.templates.retain(|t| t.class != name);
        existed
    }

    /// All primitive templates.
    pub fn templates(&self) -> &[PrimitiveTemplate] {
        &self.templates
    }

    /// Primitive templates for a given function.
    pub fn templates_for(&self, class: &str, function: &str) -> Vec<&PrimitiveTemplate> {
        self.templates
            .iter()
            .filter(|t| t.class == class && t.function == function)
            .collect()
    }

    /// Primitive templates of a given grammar category.
    pub fn templates_by_category(&self, category: PhraseCategory) -> Vec<&PrimitiveTemplate> {
        self.templates
            .iter()
            .filter(|t| t.category == category)
            .collect()
    }

    /// Iterate over all classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    /// Number of classes (skills).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of distinct parameter names across all functions, as reported
    /// in §5 of the paper (178 for the original snapshot).
    pub fn distinct_parameter_count(&self) -> usize {
        let mut names: Vec<&str> = Vec::new();
        for class in self.classes.values() {
            for function in class.functions.values() {
                for param in &function.params {
                    if !names.contains(&param.name.as_str()) {
                        names.push(&param.name);
                    }
                }
            }
        }
        names.len()
    }

    /// The distinct entity types referenced by parameters in the library.
    pub fn entity_types(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for class in self.classes.values() {
            for function in class.functions.values() {
                for param in &function.params {
                    if let Type::Entity(kind) = &param.ty {
                        if !out.contains(kind) {
                            out.push(kind.clone());
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Average number of primitive templates per function, reported in §5.2
    /// (8.5 for the full ThingTalk experiment, 5.8 for Spotify).
    pub fn templates_per_function(&self) -> f64 {
        let functions = self.function_count();
        if functions == 0 {
            0.0
        } else {
            self.templates.len() as f64 / functions as f64
        }
    }

    /// The classes in a given domain, used to build cheatsheets.
    pub fn classes_in_domain(&self, domain: &str) -> Vec<&ClassDef> {
        self.classes
            .values()
            .filter(|c| c.domain == domain)
            .collect()
    }

    /// All distinct domains.
    pub fn domains(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for class in self.classes.values() {
            if !class.domain.is_empty() && !out.contains(&class.domain.as_str()) {
                out.push(&class.domain);
            }
        }
        out.sort();
        out
    }
}

impl SchemaRegistry for Thingpedia {
    fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    fn class_names(&self) -> Vec<&str> {
        self.classes.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_library_matches_paper_scale() {
        let library = Thingpedia::builtin();
        assert!(
            library.class_count() >= 44,
            "expected at least 44 skills, found {}",
            library.class_count()
        );
        assert!(
            library.function_count() >= 131,
            "expected at least 131 functions, found {}",
            library.function_count()
        );
        assert!(
            library.distinct_parameter_count() >= 130,
            "expected a rich parameter vocabulary, found {}",
            library.distinct_parameter_count()
        );
    }

    #[test]
    fn every_function_has_at_least_one_template() {
        let library = Thingpedia::builtin();
        let mut missing = Vec::new();
        for class in library.classes() {
            for function in class.functions.values() {
                if library
                    .templates_for(&class.name, &function.name)
                    .is_empty()
                {
                    missing.push(format!("@{}.{}", class.name, function.name));
                }
            }
        }
        assert!(
            missing.is_empty(),
            "functions without templates: {missing:?}"
        );
    }

    #[test]
    fn templates_reference_existing_functions_and_params() {
        let library = Thingpedia::builtin();
        for template in library.templates() {
            let function = library
                .function(&template.class, &template.function)
                .unwrap_or_else(|| {
                    panic!(
                        "template references unknown function @{}.{}",
                        template.class, template.function
                    )
                });
            for placeholder in template.placeholders() {
                assert!(
                    function.param(&placeholder).is_some(),
                    "template `{}` references unknown parameter `{placeholder}` of @{}.{}",
                    template.utterance,
                    template.class,
                    template.function
                );
            }
            for (name, _) in &template.preset_params {
                assert!(
                    function.param(name).is_some(),
                    "template `{}` presets unknown parameter `{name}`",
                    template.utterance
                );
            }
        }
    }

    #[test]
    fn when_phrases_only_for_monitorable_queries() {
        let library = Thingpedia::builtin();
        for template in library.templates_by_category(PhraseCategory::WhenPhrase) {
            let function = library
                .function(&template.class, &template.function)
                .expect("template function exists");
            assert!(
                function.kind.is_monitorable(),
                "when phrase `{}` for non-monitorable @{}.{}",
                template.utterance,
                template.class,
                template.function
            );
        }
    }

    #[test]
    fn spotify_extension_adds_functions() {
        let base = Thingpedia::builtin();
        let extended = Thingpedia::builtin_with_spotify();
        assert!(extended.function_count() > base.function_count());
        let spotify = extended.class("com.spotify").unwrap();
        assert!(spotify.queries().count() >= 10);
        assert!(spotify.actions().count() >= 10);
    }

    #[test]
    fn upsert_replaces_templates_in_place() {
        let mut library = Thingpedia::builtin();
        let class_count = library.class_count();
        let template_count = library.templates().len();
        // Pick a class somewhere in the middle of the template list.
        let name = library.templates()[template_count / 2].class.clone();
        let old_span: Vec<usize> = library
            .templates()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.class == name)
            .map(|(i, _)| i)
            .collect();
        let class = library.class(&name).unwrap().clone();
        let replacement: Vec<PrimitiveTemplate> = library
            .templates()
            .iter()
            .filter(|t| t.class == name)
            .cloned()
            .collect();
        let before: Vec<String> = library
            .templates()
            .iter()
            .filter(|t| t.class != name)
            .map(|t| format!("{}/{}", t.class, t.utterance))
            .collect();
        library.upsert_class(class, replacement);
        assert_eq!(
            library.class_count(),
            class_count,
            "upsert must not duplicate"
        );
        assert_eq!(library.templates().len(), template_count);
        let new_span: Vec<usize> = library
            .templates()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.class == name)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(new_span.first(), old_span.first(), "span must stay put");
        let after: Vec<String> = library
            .templates()
            .iter()
            .filter(|t| t.class != name)
            .map(|t| format!("{}/{}", t.class, t.utterance))
            .collect();
        assert_eq!(before, after, "other classes' template order untouched");
    }

    #[test]
    fn remove_class_drops_templates() {
        let mut library = Thingpedia::builtin();
        let name = library.templates()[0].class.clone();
        assert!(library.remove_class(&name));
        assert!(library.class(&name).is_none());
        assert!(library.templates().iter().all(|t| t.class != name));
        assert!(!library.remove_class(&name), "second removal is a no-op");
    }

    #[test]
    fn domains_are_populated() {
        let library = Thingpedia::builtin();
        let domains = library.domains();
        assert!(
            domains.len() >= 6,
            "expected several domains, found {domains:?}"
        );
        assert!(!library.classes_in_domain(domains[0]).is_empty());
    }

    #[test]
    fn average_templates_per_function_is_reasonable() {
        let library = Thingpedia::builtin();
        let avg = library.templates_per_function();
        assert!(
            avg >= 2.0,
            "expected >= 2 templates per function on average, found {avg:.2}"
        );
    }
}
