//! Primitive templates (Table 1 of the paper).
//!
//! A primitive template maps a natural-language utterance — a noun phrase,
//! verb phrase, or when phrase, possibly with `$parameter` placeholders — to
//! a code fragment using one skill function, together with preset input
//! parameters. The template engine in `genie-templates` combines primitive
//! templates with construct templates to synthesize full sentences and
//! programs.

use serde::{Deserialize, Serialize};
use std::fmt;

use thingtalk::Value;

/// The grammar category of a primitive template's utterance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhraseCategory {
    /// A noun phrase describing the data a query returns ("my dropbox
    /// files", "the latest xkcd comic"). Noun phrases compose as input
    /// parameters of other phrases.
    NounPhrase,
    /// A verb phrase describing a query or action ("post $status on
    /// twitter", "translate $text").
    VerbPhrase,
    /// A when phrase describing an event ("when I receive an email", "when
    /// it starts raining").
    WhenPhrase,
}

impl PhraseCategory {
    /// A short label used in debugging output and dataset statistics.
    pub fn label(self) -> &'static str {
        match self {
            PhraseCategory::NounPhrase => "np",
            PhraseCategory::VerbPhrase => "vp",
            PhraseCategory::WhenPhrase => "wp",
        }
    }
}

impl fmt::Display for PhraseCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A developer-supplied primitive template for one skill function.
///
/// The utterance may contain `$name` placeholders; each placeholder refers
/// to an input parameter of the function and will be filled with a sampled
/// value (or left as a slot) during synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimitiveTemplate {
    /// The skill class, e.g. `com.dropbox`.
    pub class: String,
    /// The function within the class.
    pub function: String,
    /// The grammar category of the utterance.
    pub category: PhraseCategory,
    /// The utterance, with `$param` placeholders.
    pub utterance: String,
    /// Input parameters that this template fixes to constant values (e.g.
    /// `order_by = enum:modified_time_decreasing` for "my dropbox files that
    /// changed most recently").
    pub preset_params: Vec<(String, Value)>,
}

impl PrimitiveTemplate {
    /// Create a template with no preset parameters.
    pub fn new(
        class: impl Into<String>,
        function: impl Into<String>,
        category: PhraseCategory,
        utterance: impl Into<String>,
    ) -> Self {
        PrimitiveTemplate {
            class: class.into(),
            function: function.into(),
            category,
            utterance: utterance.into(),
            preset_params: Vec::new(),
        }
    }

    /// Add a preset input parameter (builder style).
    pub fn with_preset(mut self, name: impl Into<String>, value: Value) -> Self {
        self.preset_params.push((name.into(), value));
        self
    }

    /// The placeholder names appearing in the utterance (without the `$`).
    pub fn placeholders(&self) -> Vec<String> {
        let mut out = Vec::new();
        for word in self.utterance.split_whitespace() {
            if let Some(name) = word.strip_prefix('$') {
                let name: String = name
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && !out.contains(&name) {
                    out.push(name);
                }
            }
        }
        out
    }

    /// Substitute the placeholders with rendered values, producing a
    /// natural-language fragment.
    pub fn instantiate(&self, values: &[(String, String)]) -> String {
        let mut out = String::new();
        for (i, word) in self.utterance.split_whitespace().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            if let Some(name) = word.strip_prefix('$') {
                let clean: String = name
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                let suffix: String = name.chars().skip(clean.len()).collect();
                match values.iter().find(|(n, _)| *n == clean) {
                    Some((_, rendered)) => {
                        out.push_str(rendered);
                        out.push_str(&suffix);
                    }
                    None => {
                        out.push_str(word);
                    }
                }
            } else {
                out.push_str(word);
            }
        }
        out
    }
}

/// Shorthand constructors used by the builtin skill modules.
pub(crate) mod short {
    use super::*;

    /// Noun-phrase template.
    pub fn np(class: &str, function: &str, utterance: &str) -> PrimitiveTemplate {
        PrimitiveTemplate::new(class, function, PhraseCategory::NounPhrase, utterance)
    }

    /// Verb-phrase template.
    pub fn vp(class: &str, function: &str, utterance: &str) -> PrimitiveTemplate {
        PrimitiveTemplate::new(class, function, PhraseCategory::VerbPhrase, utterance)
    }

    /// When-phrase template.
    pub fn wp(class: &str, function: &str, utterance: &str) -> PrimitiveTemplate {
        PrimitiveTemplate::new(class, function, PhraseCategory::WhenPhrase, utterance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholders_are_extracted_in_order() {
        let t = PrimitiveTemplate::new(
            "com.dropbox",
            "list_folder",
            PhraseCategory::NounPhrase,
            "files in my dropbox folder $folder_name sorted by $order_by",
        );
        assert_eq!(t.placeholders(), vec!["folder_name", "order_by"]);
    }

    #[test]
    fn instantiate_substitutes_placeholders() {
        let t = PrimitiveTemplate::new(
            "com.twitter",
            "post",
            PhraseCategory::VerbPhrase,
            "tweet $status",
        );
        let s = t.instantiate(&[("status".to_owned(), "hello world".to_owned())]);
        assert_eq!(s, "tweet hello world");
    }

    #[test]
    fn instantiate_keeps_unbound_placeholders() {
        let t = PrimitiveTemplate::new(
            "com.twitter",
            "post",
            PhraseCategory::VerbPhrase,
            "tweet $status",
        );
        assert_eq!(t.instantiate(&[]), "tweet $status");
    }

    #[test]
    fn preset_params_are_recorded() {
        let t = PrimitiveTemplate::new(
            "com.dropbox",
            "list_folder",
            PhraseCategory::NounPhrase,
            "my dropbox files that changed most recently",
        )
        .with_preset("order_by", Value::Enum("modified_time_decreasing".into()));
        assert_eq!(t.preset_params.len(), 1);
        assert!(t.placeholders().is_empty());
    }

    #[test]
    fn category_labels() {
        assert_eq!(PhraseCategory::NounPhrase.label(), "np");
        assert_eq!(PhraseCategory::VerbPhrase.to_string(), "vp");
        assert_eq!(PhraseCategory::WhenPhrase.label(), "wp");
    }
}
