//! Simulated device implementations.
//!
//! The paper's Thingpedia skills call real web services and IoT devices; this
//! module substitutes them with deterministic, seeded simulators so that any
//! well-typed program over the builtin library can be *executed* by the
//! ThingTalk runtime. The simulator:
//!
//! * produces rows whose values match the declared output-parameter types,
//!   sampling strings and entities from the parameter-value datasets;
//! * is deterministic given the seed, the function, and the virtual tick, so
//!   tests and benchmarks are reproducible;
//! * appends new rows / changes single results as virtual time advances, so
//!   monitors and edge filters actually trigger;
//! * records every action invocation for inspection.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use thingtalk::ast::FunctionRef;
use thingtalk::class::{FunctionDef, ParamDef};
use thingtalk::error::{Error, Result};
use thingtalk::runtime::{DeviceDelegate, ExecContext, ResultRow};
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::types::Type;
use thingtalk::units::{BaseUnit, Unit};
use thingtalk::value::{DateValue, LocationValue, Value};

use crate::params::ParamDatasets;
use crate::Thingpedia;

/// How many virtual ticks pass between simulated data changes.
const CHANGE_PERIOD: u64 = 3;

/// A [`DeviceDelegate`] that simulates every function in a [`Thingpedia`]
/// library.
#[derive(Debug, Clone)]
pub struct SimulatedDevices {
    library: Thingpedia,
    datasets: ParamDatasets,
    seed: u64,
    performed_actions: Vec<(FunctionRef, ResultRow)>,
}

impl SimulatedDevices {
    /// Create a simulator over the given library with the given seed.
    pub fn new(library: Thingpedia, seed: u64) -> Self {
        SimulatedDevices {
            library,
            datasets: ParamDatasets::builtin(),
            seed,
            performed_actions: Vec::new(),
        }
    }

    /// Simulator over the full builtin library.
    pub fn builtin(seed: u64) -> Self {
        SimulatedDevices::new(Thingpedia::builtin(), seed)
    }

    /// Actions the simulator has been asked to perform, in order.
    pub fn performed_actions(&self) -> &[(FunctionRef, ResultRow)] {
        &self.performed_actions
    }

    fn function(&self, function: &FunctionRef) -> Result<&FunctionDef> {
        self.library
            .function(&function.class, &function.function)
            .ok_or_else(|| Error::UnknownFunction {
                class: function.class.clone(),
                function: function.function.clone(),
            })
    }

    fn row_seed(&self, function: &FunctionRef, row: usize, epoch: u64) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.seed.hash(&mut hasher);
        function.class.hash(&mut hasher);
        function.function.hash(&mut hasher);
        row.hash(&mut hasher);
        epoch.hash(&mut hasher);
        hasher.finish()
    }

    fn generate_row(
        &self,
        def: &FunctionDef,
        function: &FunctionRef,
        params: &ResultRow,
        row: usize,
        epoch: u64,
    ) -> ResultRow {
        let mut rng = StdRng::seed_from_u64(self.row_seed(function, row, epoch));
        let mut out = ResultRow::new();
        for param in def.output_params() {
            let value = self.generate_value(param, params, &mut rng);
            out.insert(param.name.clone(), value);
        }
        out
    }

    fn generate_value(&self, param: &ParamDef, inputs: &ResultRow, rng: &mut StdRng) -> Value {
        // If a string input parameter exists (e.g. a search query), weave it
        // into text outputs occasionally so filters over inputs make sense.
        let input_text = inputs.values().find_map(|v| match v {
            Value::String(s) => Some(s.clone()),
            _ => None,
        });
        match &param.ty {
            Type::String => {
                let base = self.datasets.sample_for_param(&param.ty, &param.name, rng);
                match (&input_text, rng.gen_bool(0.5)) {
                    (Some(query), true) => Value::String(format!("{base} about {query}")),
                    _ => Value::String(base),
                }
            }
            Type::Number => Value::Number((rng.gen_range(0..10_000) as f64) / 10.0),
            Type::Boolean => Value::Boolean(rng.gen_bool(0.5)),
            Type::Enum(variants) => {
                let idx = rng.gen_range(0..variants.len().max(1));
                Value::Enum(variants.get(idx).cloned().unwrap_or_default())
            }
            Type::Measure(base) => {
                let (amount, unit): (f64, Unit) = match base {
                    BaseUnit::Byte => (rng.gen_range(1.0..2000.0), Unit::Megabyte),
                    BaseUnit::Millisecond => (rng.gen_range(1.0..180.0), Unit::Minute),
                    BaseUnit::Meter => (rng.gen_range(0.1..500.0), Unit::Kilometer),
                    BaseUnit::Celsius => (rng.gen_range(-10.0..40.0), Unit::Celsius),
                    BaseUnit::Gram => (rng.gen_range(40.0..120.0), Unit::Kilogram),
                    BaseUnit::MeterPerSecond => (rng.gen_range(0.0..40.0), Unit::MeterPerSecond),
                    BaseUnit::Calorie => (rng.gen_range(50.0..900.0), Unit::Kilocalorie),
                    BaseUnit::BeatPerMinute => (rng.gen_range(50.0..180.0), Unit::BeatPerMinute),
                    BaseUnit::Pascal => (rng.gen_range(980.0..1040.0), Unit::Hectopascal),
                    BaseUnit::Milliliter => (rng.gen_range(0.1..3.0), Unit::Liter),
                };
                Value::Measure((amount * 10.0).round() / 10.0, unit)
            }
            Type::Date => Value::Date(DateValue::Absolute(rng.gen_range(0..90i64) * 86_400_000)),
            Type::Time => Value::Time(rng.gen_range(0..24), rng.gen_range(0..60)),
            Type::Location => Value::Location(LocationValue::Named(
                self.datasets
                    .sample_for_param(&Type::Location, &param.name, rng),
            )),
            Type::Currency => Value::Currency(
                (rng.gen_range(100..100_000) as f64) / 100.0,
                "USD".to_owned(),
            ),
            Type::PathName | Type::Url | Type::Picture | Type::EmailAddress | Type::PhoneNumber => {
                Value::String(self.datasets.sample_for_param(&param.ty, &param.name, rng))
            }
            Type::Entity(kind) => {
                let text = self.datasets.sample_for_param(&param.ty, &param.name, rng);
                Value::Entity {
                    value: text.clone(),
                    kind: kind.clone(),
                    display: Some(text),
                }
            }
            Type::Array(inner) => {
                let count = rng.gen_range(1..4);
                let inner_param = ParamDef::new(
                    param.name.clone(),
                    (**inner).clone(),
                    thingtalk::class::ParamDirection::Out,
                );
                Value::Array(
                    (0..count)
                        .map(|_| self.generate_value(&inner_param, inputs, rng))
                        .collect(),
                )
            }
            Type::Any => Value::Number(rng.gen_range(0..100) as f64),
        }
    }
}

impl DeviceDelegate for SimulatedDevices {
    fn invoke_query(
        &mut self,
        function: &FunctionRef,
        params: &ResultRow,
        ctx: &ExecContext,
    ) -> Result<Vec<ResultRow>> {
        let def = self.function(function)?.clone();
        if !def.kind.is_query() {
            return Err(Error::execution(format!(
                "{function} is an action, not a query"
            )));
        }
        let epoch = ctx.tick / CHANGE_PERIOD;
        if def.kind.is_list() {
            // A stable base of rows, plus one extra row per epoch so
            // monitors see new results over time.
            let base_rows = 3;
            let total = base_rows + epoch as usize;
            Ok((0..total)
                .map(|row| {
                    // Rows are keyed by index with epoch 0 so that old rows
                    // are identical across polls; only the newest row uses
                    // the current epoch.
                    let row_epoch = if row < base_rows { 0 } else { row as u64 };
                    self.generate_row(&def, function, params, row, row_epoch)
                })
                .collect())
        } else if def.kind.is_monitorable() {
            // A single result that changes every CHANGE_PERIOD ticks.
            Ok(vec![self.generate_row(&def, function, params, 0, epoch)])
        } else {
            // Non-monitorable single results (random cat pictures) change on
            // every invocation.
            Ok(vec![self.generate_row(&def, function, params, 0, ctx.tick)])
        }
    }

    fn invoke_action(
        &mut self,
        function: &FunctionRef,
        params: &ResultRow,
        _ctx: &ExecContext,
    ) -> Result<()> {
        let def = self.function(function)?;
        if !def.kind.is_action() {
            return Err(Error::execution(format!(
                "{function} is a query, not an action"
            )));
        }
        for required in def.required_params() {
            if !params.contains_key(&required.name) {
                return Err(Error::execution(format!(
                    "action {function} is missing required parameter `{}`",
                    required.name
                )));
            }
        }
        self.performed_actions
            .push((function.clone(), params.clone()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::runtime::{ClockConfig, ExecutionEngine};
    use thingtalk::syntax::parse_program;
    use thingtalk::typecheck::typecheck;

    fn engine(seed: u64) -> ExecutionEngine<SimulatedDevices> {
        ExecutionEngine::with_clock(
            SimulatedDevices::builtin(seed),
            ClockConfig {
                tick_ms: 60_000,
                start_ms: 0,
            },
        )
    }

    #[test]
    fn every_builtin_query_can_be_simulated() {
        let library = Thingpedia::builtin();
        let mut devices = SimulatedDevices::new(library.clone(), 42);
        let ctx = ExecContext { now_ms: 0, tick: 0 };
        for class in library.classes() {
            for function in class.queries() {
                let fref = FunctionRef::new(class.name.clone(), function.name.clone());
                // Provide required inputs.
                let mut params = ResultRow::new();
                for p in function.required_params() {
                    params.insert(p.name.clone(), Value::string("test value"));
                }
                let rows = devices
                    .invoke_query(&fref, &params, &ctx)
                    .unwrap_or_else(|e| panic!("query {fref} failed: {e}"));
                assert!(!rows.is_empty(), "query {fref} returned no rows");
                for p in function.output_params() {
                    assert!(
                        rows[0].contains_key(&p.name),
                        "query {fref} did not produce output parameter {}",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let fref = FunctionRef::new("com.nytimes", "get_front_page");
        let ctx = ExecContext { now_ms: 0, tick: 0 };
        let mut a = SimulatedDevices::builtin(7);
        let mut b = SimulatedDevices::builtin(7);
        let mut c = SimulatedDevices::builtin(8);
        let rows_a = a.invoke_query(&fref, &ResultRow::new(), &ctx).unwrap();
        let rows_b = b.invoke_query(&fref, &ResultRow::new(), &ctx).unwrap();
        let rows_c = c.invoke_query(&fref, &ResultRow::new(), &ctx).unwrap();
        assert_eq!(rows_a, rows_b);
        assert_ne!(rows_a, rows_c);
    }

    #[test]
    fn fig1_program_executes_end_to_end() {
        let library = Thingpedia::builtin();
        let program = parse_program(
            "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, caption = \"funny cat\")",
        )
        .unwrap();
        typecheck(&library, &program).unwrap();
        let mut engine = engine(1);
        let result = engine.execute_once(&program).unwrap();
        assert_eq!(result.actions.len(), 1);
        assert_eq!(result.actions[0].function.class, "com.facebook");
        assert!(result.actions[0].params.contains_key("picture_url"));
    }

    #[test]
    fn monitors_over_simulated_data_eventually_trigger() {
        let program = parse_program("monitor (@com.nytimes.get_front_page()) => notify").unwrap();
        let mut engine = engine(3);
        let result = engine.run_for(&program, 12).unwrap();
        assert!(
            result.notifications.len() >= 2,
            "expected several monitor triggers, got {}",
            result.notifications.len()
        );
    }

    #[test]
    fn aggregation_over_dropbox_files() {
        let program =
            parse_program("now => agg sum file_size of (@com.dropbox.list_folder()) => notify")
                .unwrap();
        let mut engine = engine(4);
        let result = engine.execute_once(&program).unwrap();
        assert_eq!(result.notifications.len(), 1);
        assert!(result.notifications[0]
            .get("file_size")
            .and_then(|v| v.measure_in_base())
            .is_some());
    }

    #[test]
    fn actions_require_their_parameters() {
        let mut devices = SimulatedDevices::builtin(5);
        let ctx = ExecContext { now_ms: 0, tick: 0 };
        let err = devices
            .invoke_action(
                &FunctionRef::new("com.twitter", "post"),
                &ResultRow::new(),
                &ctx,
            )
            .unwrap_err();
        assert!(err.to_string().contains("missing required parameter"));
        let mut params = ResultRow::new();
        params.insert("status".to_owned(), Value::string("hello"));
        devices
            .invoke_action(&FunctionRef::new("com.twitter", "post"), &params, &ctx)
            .unwrap();
        assert_eq!(devices.performed_actions().len(), 1);
    }

    #[test]
    fn unknown_functions_are_rejected() {
        let mut devices = SimulatedDevices::builtin(6);
        let ctx = ExecContext { now_ms: 0, tick: 0 };
        assert!(devices
            .invoke_query(
                &FunctionRef::new("com.nope", "nothing"),
                &ResultRow::new(),
                &ctx
            )
            .is_err());
    }
}
