//! Social-network skills: Twitter, Facebook, Instagram, Reddit, LinkedIn,
//! Tumblr, Pinterest.

use thingtalk::class::ClassDef;
use thingtalk::units::BaseUnit;
use thingtalk::Value;

use super::dsl::*;
use super::SkillEntry;
use crate::templates::short::{np, vp, wp};

/// The social-network skills.
pub fn skills() -> Vec<SkillEntry> {
    vec![
        twitter(),
        facebook(),
        instagram(),
        reddit(),
        linkedin(),
        tumblr(),
        pinterest(),
    ]
}

fn twitter() -> SkillEntry {
    let class = ClassDef::new("com.twitter")
        .with_display_name("Twitter")
        .with_domain("social network")
        .with_function(mlq(
            "timeline",
            "tweets from people i follow",
            vec![
                out("text", s()),
                out("hashtags", array(ent("tt:hashtag"))),
                out("author", ent("tt:username")),
                out("in_reply_to", ent("tt:username")),
                out("tweet_id", ent("com.twitter:id")),
            ],
        ))
        .with_function(mlq(
            "search",
            "tweets matching a search",
            vec![
                req("query", s()),
                out("text", s()),
                out("author", ent("tt:username")),
                out("hashtags", array(ent("tt:hashtag"))),
                out("tweet_id", ent("com.twitter:id")),
            ],
        ))
        .with_function(mlq(
            "direct_messages",
            "direct messages i received on twitter",
            vec![out("sender", ent("tt:username")), out("message", s())],
        ))
        .with_function(mlq(
            "my_tweets",
            "my own tweets",
            vec![
                out("text", s()),
                out("tweet_id", ent("com.twitter:id")),
                out("retweet_count", num()),
            ],
        ))
        .with_function(act("post", "tweet", vec![req("status", s())]))
        .with_function(act(
            "post_picture",
            "post a picture on twitter",
            vec![
                req("picture_url", thingtalk::Type::Picture),
                req("caption", s()),
            ],
        ))
        .with_function(act(
            "retweet",
            "retweet",
            vec![req("tweet_id", ent("com.twitter:id"))],
        ))
        .with_function(act(
            "follow",
            "follow someone on twitter",
            vec![req("user_name", ent("tt:username"))],
        ))
        .with_function(act(
            "send_direct_message",
            "send a twitter direct message",
            vec![req("to", ent("tt:username")), req("message", s())],
        ));
    let templates = vec![
        np("com.twitter", "timeline", "my twitter timeline"),
        np("com.twitter", "timeline", "tweets from people i follow"),
        np("com.twitter", "timeline", "recent tweets in my feed"),
        wp("com.twitter", "timeline", "when someone i follow tweets"),
        wp(
            "com.twitter",
            "timeline",
            "when there is a new tweet in my timeline",
        ),
        np("com.twitter", "search", "tweets about $query"),
        np("com.twitter", "search", "twitter posts matching $query"),
        wp("com.twitter", "search", "when someone tweets about $query"),
        np(
            "com.twitter",
            "direct_messages",
            "my twitter direct messages",
        ),
        wp(
            "com.twitter",
            "direct_messages",
            "when i receive a twitter dm",
        ),
        np("com.twitter", "my_tweets", "my own tweets"),
        wp("com.twitter", "my_tweets", "when i tweet something"),
        vp("com.twitter", "post", "tweet $status"),
        vp("com.twitter", "post", "post $status on twitter"),
        vp(
            "com.twitter",
            "post_picture",
            "post the picture $picture_url on twitter with caption $caption",
        ),
        vp(
            "com.twitter",
            "post_picture",
            "tweet the photo $picture_url saying $caption",
        ),
        vp("com.twitter", "retweet", "retweet it"),
        vp("com.twitter", "retweet", "retweet that tweet"),
        vp("com.twitter", "follow", "follow $user_name on twitter"),
        vp(
            "com.twitter",
            "send_direct_message",
            "send a twitter dm to $to saying $message",
        ),
    ];
    (class, templates)
}

fn facebook() -> SkillEntry {
    let class = ClassDef::new("com.facebook")
        .with_display_name("Facebook")
        .with_domain("social network")
        .with_function(mlq(
            "feed",
            "posts in my facebook feed",
            vec![
                out("text", s()),
                out("author", ent("tt:person_name")),
                out("link", thingtalk::Type::Url),
            ],
        ))
        .with_function(act("post", "post on facebook", vec![req("status", s())]))
        .with_function(act(
            "post_picture",
            "post a picture on facebook",
            vec![
                req("picture_url", thingtalk::Type::Picture),
                req("caption", s()),
            ],
        ));
    let templates = vec![
        np("com.facebook", "feed", "my facebook feed"),
        np("com.facebook", "feed", "posts from my facebook friends"),
        wp(
            "com.facebook",
            "feed",
            "when one of my friends posts on facebook",
        ),
        vp("com.facebook", "post", "post $status on facebook"),
        vp(
            "com.facebook",
            "post",
            "share $status with my facebook friends",
        ),
        vp(
            "com.facebook",
            "post_picture",
            "post the picture $picture_url on facebook with caption $caption",
        ),
        vp(
            "com.facebook",
            "post_picture",
            "upload $picture_url to facebook saying $caption",
        ),
    ];
    (class, templates)
}

fn instagram() -> SkillEntry {
    let class = ClassDef::new("com.instagram")
        .with_display_name("Instagram")
        .with_domain("social network")
        .with_function(mlq(
            "get_pictures",
            "my instagram pictures",
            vec![
                out("picture_url", thingtalk::Type::Picture),
                out("caption", s()),
                out("hashtags", array(ent("tt:hashtag"))),
                out("location", thingtalk::Type::Location),
            ],
        ))
        .with_function(act(
            "post_picture",
            "post a picture on instagram",
            vec![
                req("picture_url", thingtalk::Type::Picture),
                req("caption", s()),
            ],
        ))
        .with_function(act(
            "follow",
            "follow someone on instagram",
            vec![req("user_name", ent("tt:username"))],
        ));
    let templates = vec![
        np("com.instagram", "get_pictures", "my instagram pictures"),
        np(
            "com.instagram",
            "get_pictures",
            "photos i posted on instagram",
        ),
        wp(
            "com.instagram",
            "get_pictures",
            "when i upload a new photo to instagram",
        ),
        vp(
            "com.instagram",
            "post_picture",
            "post $picture_url on instagram with caption $caption",
        ),
        vp("com.instagram", "follow", "follow $user_name on instagram"),
    ];
    (class, templates)
}

fn reddit() -> SkillEntry {
    let class = ClassDef::new("com.reddit")
        .with_display_name("Reddit")
        .with_domain("social network")
        .with_function(mlq(
            "frontpage",
            "posts on the reddit front page",
            vec![
                out("title", s()),
                out("link", thingtalk::Type::Url),
                out("subreddit", ent("com.reddit:subreddit")),
                out("score", num()),
            ],
        ))
        .with_function(mlq(
            "subreddit_posts",
            "posts in a subreddit",
            vec![
                req("subreddit", ent("com.reddit:subreddit")),
                out("title", s()),
                out("link", thingtalk::Type::Url),
                out("score", num()),
            ],
        ))
        .with_function(act(
            "submit_link",
            "submit a link to reddit",
            vec![
                req("subreddit", ent("com.reddit:subreddit")),
                req("title", s()),
                req("link", thingtalk::Type::Url),
            ],
        ));
    let templates = vec![
        np("com.reddit", "frontpage", "the reddit front page"),
        np("com.reddit", "frontpage", "top posts on reddit"),
        wp(
            "com.reddit",
            "frontpage",
            "when a new post reaches the reddit front page",
        ),
        np(
            "com.reddit",
            "subreddit_posts",
            "posts in the subreddit $subreddit",
        ),
        np(
            "com.reddit",
            "subreddit_posts",
            "what people are posting on $subreddit",
        ),
        wp(
            "com.reddit",
            "subreddit_posts",
            "when there is a new post on $subreddit",
        ),
        vp(
            "com.reddit",
            "submit_link",
            "submit $link to $subreddit titled $title",
        ),
    ];
    (class, templates)
}

fn linkedin() -> SkillEntry {
    let class = ClassDef::new("com.linkedin")
        .with_display_name("LinkedIn")
        .with_domain("social network")
        .with_function(mq(
            "get_profile",
            "my linkedin profile",
            vec![
                out("headline", s()),
                out("industry", s()),
                out("profile_picture", thingtalk::Type::Picture),
            ],
        ))
        .with_function(act("share", "share on linkedin", vec![req("status", s())]))
        .with_function(act(
            "update_headline",
            "update my linkedin headline",
            vec![req("headline", s())],
        ));
    let templates = vec![
        np("com.linkedin", "get_profile", "my linkedin profile"),
        np(
            "com.linkedin",
            "get_profile",
            "my professional profile on linkedin",
        ),
        wp(
            "com.linkedin",
            "get_profile",
            "when i update my linkedin profile",
        ),
        vp("com.linkedin", "share", "share $status on linkedin"),
        vp(
            "com.linkedin",
            "update_headline",
            "set my linkedin headline to $headline",
        ),
    ];
    (class, templates)
}

fn tumblr() -> SkillEntry {
    let class = ClassDef::new("com.tumblr")
        .with_display_name("Tumblr")
        .with_domain("social network")
        .with_function(mlq(
            "dashboard",
            "posts on my tumblr dashboard",
            vec![out("title", s()), out("body", s()), out("blog_name", s())],
        ))
        .with_function(act(
            "post_text",
            "post on tumblr",
            vec![req("title", s()), req("body", s())],
        ))
        .with_function(act(
            "post_picture",
            "post a picture on tumblr",
            vec![
                req("picture_url", thingtalk::Type::Picture),
                opt("caption", s()),
            ],
        ));
    let templates = vec![
        np("com.tumblr", "dashboard", "my tumblr dashboard"),
        wp(
            "com.tumblr",
            "dashboard",
            "when a blog i follow posts on tumblr",
        ),
        vp(
            "com.tumblr",
            "post_text",
            "post $body on tumblr titled $title",
        ),
        vp(
            "com.tumblr",
            "post_picture",
            "post the picture $picture_url on my tumblr",
        ),
    ];
    (class, templates)
}

fn pinterest() -> SkillEntry {
    let class = ClassDef::new("com.pinterest")
        .with_display_name("Pinterest")
        .with_domain("social network")
        .with_function(mlq(
            "my_pins",
            "my pinterest pins",
            vec![
                out("pin_url", thingtalk::Type::Url),
                out("description", s()),
                out("board", s()),
                out("picture_url", thingtalk::Type::Picture),
            ],
        ))
        .with_function(act(
            "create_pin",
            "pin a picture on pinterest",
            vec![
                req("board", s()),
                req("picture_url", thingtalk::Type::Picture),
                opt("description", s()),
            ],
        ));
    let templates = vec![
        np("com.pinterest", "my_pins", "my pinterest pins"),
        np("com.pinterest", "my_pins", "pictures i pinned on pinterest"),
        wp(
            "com.pinterest",
            "my_pins",
            "when i pin something new on pinterest",
        ),
        vp(
            "com.pinterest",
            "create_pin",
            "pin $picture_url to my $board board",
        ),
    ];
    (class, templates)
}

/// A retweet-count threshold, used by tests exercising numeric filters on
/// social skills.
pub fn popular_tweet_threshold() -> Value {
    Value::Number(100.0)
}

/// The byte dimension used by picture-size parameters (kept here so domain
/// modules share one definition).
pub const PICTURE_SIZE_DIMENSION: BaseUnit = BaseUnit::Byte;
