//! Web-service skills: weather, translation, web search, Wikipedia, stock
//! quotes, Bitcoin prices, NASA, ride hailing, restaurant search, air
//! quality, and the builtin assistant device (say, timers, random numbers).

use thingtalk::class::ClassDef;
use thingtalk::units::BaseUnit;

use super::dsl::*;
use super::SkillEntry;
use crate::templates::short::{np, vp, wp};

/// The web-service skills plus the builtin assistant device.
pub fn skills() -> Vec<SkillEntry> {
    vec![
        weather(),
        translate(),
        bing(),
        wikipedia(),
        yahoo_finance(),
        coinbase(),
        nasa(),
        uber(),
        yelp(),
        airquality(),
        builtin_device(),
    ]
}

fn weather() -> SkillEntry {
    let class = ClassDef::new("org.thingpedia.weather")
        .with_display_name("Weather")
        .with_domain("weather")
        .with_function(mq(
            "current",
            "the current weather",
            vec![
                opt("location", thingtalk::Type::Location),
                out("temperature", measure(BaseUnit::Celsius)),
                out("wind_speed", measure(BaseUnit::MeterPerSecond)),
                out("humidity", num()),
                out(
                    "status",
                    en(&["sunny", "cloudy", "raining", "snowy", "windy", "foggy"]),
                ),
            ],
        ))
        .with_function(mq(
            "sunrise",
            "sunrise and sunset times",
            vec![
                opt("location", thingtalk::Type::Location),
                out("sunrise_time", thingtalk::Type::Time),
                out("sunset_time", thingtalk::Type::Time),
            ],
        ))
        .with_function(lq(
            "forecast",
            "the weather forecast",
            vec![
                opt("location", thingtalk::Type::Location),
                out("date", date()),
                out("high", measure(BaseUnit::Celsius)),
                out("low", measure(BaseUnit::Celsius)),
                out(
                    "status",
                    en(&["sunny", "cloudy", "raining", "snowy", "windy", "foggy"]),
                ),
            ],
        ));
    let templates = vec![
        np("org.thingpedia.weather", "current", "the current weather"),
        np(
            "org.thingpedia.weather",
            "current",
            "the weather in $location",
        ),
        np(
            "org.thingpedia.weather",
            "current",
            "the temperature outside",
        ),
        wp(
            "org.thingpedia.weather",
            "current",
            "when the weather changes",
        ),
        wp(
            "org.thingpedia.weather",
            "current",
            "when it starts raining",
        ),
        np(
            "org.thingpedia.weather",
            "sunrise",
            "the sunrise time in $location",
        ),
        wp("org.thingpedia.weather", "sunrise", "when the sun rises"),
        np(
            "org.thingpedia.weather",
            "forecast",
            "the weather forecast for $location",
        ),
        np("org.thingpedia.weather", "forecast", "this week's forecast"),
    ];
    (class, templates)
}

fn translate() -> SkillEntry {
    let class = ClassDef::new("com.yandex.translate")
        .with_display_name("Yandex Translate")
        .with_domain("web services")
        .with_function(q(
            "translate",
            "the translation of some text",
            vec![
                req("text", s()),
                opt("target_language", ent("tt:language")),
                out("translated_text", s()),
            ],
        ))
        .with_function(q(
            "detect_language",
            "the language of some text",
            vec![req("text", s()), out("value", ent("tt:language"))],
        ));
    let templates = vec![
        np(
            "com.yandex.translate",
            "translate",
            "the translation of $text",
        ),
        np(
            "com.yandex.translate",
            "translate",
            "the translation of $text to $target_language",
        ),
        vp("com.yandex.translate", "translate", "translate $text"),
        vp(
            "com.yandex.translate",
            "translate",
            "translate $text to $target_language",
        ),
        np(
            "com.yandex.translate",
            "detect_language",
            "the language of $text",
        ),
        vp(
            "com.yandex.translate",
            "detect_language",
            "detect the language of $text",
        ),
    ];
    (class, templates)
}

fn bing() -> SkillEntry {
    let class = ClassDef::new("com.bing")
        .with_display_name("Bing")
        .with_domain("web services")
        .with_function(lq(
            "web_search",
            "web search results",
            vec![
                req("query", s()),
                out("title", s()),
                out("description", s()),
                out("link", thingtalk::Type::Url),
            ],
        ))
        .with_function(lq(
            "image_search",
            "image search results",
            vec![
                req("query", s()),
                out("title", s()),
                out("picture_url", thingtalk::Type::Picture),
            ],
        ));
    let templates = vec![
        np("com.bing", "web_search", "websites matching $query"),
        np("com.bing", "web_search", "search results for $query"),
        vp("com.bing", "web_search", "search the web for $query"),
        np("com.bing", "image_search", "images of $query"),
        np("com.bing", "image_search", "pictures matching $query"),
        vp("com.bing", "image_search", "search for images of $query"),
    ];
    (class, templates)
}

fn wikipedia() -> SkillEntry {
    let class = ClassDef::new("org.wikipedia")
        .with_display_name("Wikipedia")
        .with_domain("web services")
        .with_function(q(
            "article",
            "a wikipedia article",
            vec![
                req("query", s()),
                out("title", s()),
                out("summary", s()),
                out("link", thingtalk::Type::Url),
            ],
        ))
        .with_function(mq(
            "featured_article",
            "today's featured wikipedia article",
            vec![
                out("title", s()),
                out("summary", s()),
                out("link", thingtalk::Type::Url),
            ],
        ));
    let templates = vec![
        np(
            "org.wikipedia",
            "article",
            "the wikipedia article about $query",
        ),
        np(
            "org.wikipedia",
            "article",
            "the wikipedia summary of $query",
        ),
        vp("org.wikipedia", "article", "look up $query on wikipedia"),
        np(
            "org.wikipedia",
            "featured_article",
            "today's featured wikipedia article",
        ),
        wp(
            "org.wikipedia",
            "featured_article",
            "when wikipedia features a new article",
        ),
    ];
    (class, templates)
}

fn yahoo_finance() -> SkillEntry {
    let class = ClassDef::new("com.yahoo.finance")
        .with_display_name("Yahoo Finance")
        .with_domain("finance")
        .with_function(mq(
            "get_stock_quote",
            "the price of a stock",
            vec![
                req("stock_id", ent("com.yahoo.finance:stock")),
                out("value", thingtalk::Type::Currency),
                out("change", num()),
            ],
        ))
        .with_function(mq(
            "get_stock_div",
            "the dividend of a stock",
            vec![
                req("stock_id", ent("com.yahoo.finance:stock")),
                out("value", thingtalk::Type::Currency),
                out("yield_rate", num()),
            ],
        ));
    let templates = vec![
        np(
            "com.yahoo.finance",
            "get_stock_quote",
            "the stock price of $stock_id",
        ),
        np(
            "com.yahoo.finance",
            "get_stock_quote",
            "how $stock_id is trading",
        ),
        wp(
            "com.yahoo.finance",
            "get_stock_quote",
            "when the price of $stock_id changes",
        ),
        np(
            "com.yahoo.finance",
            "get_stock_div",
            "the dividend of $stock_id",
        ),
        wp(
            "com.yahoo.finance",
            "get_stock_div",
            "when $stock_id announces a dividend",
        ),
    ];
    (class, templates)
}

fn coinbase() -> SkillEntry {
    let class = ClassDef::new("com.coinbase")
        .with_display_name("Coinbase")
        .with_domain("finance")
        .with_function(mq(
            "get_price",
            "the price of a cryptocurrency",
            vec![
                req("currency_code", en(&["btc", "eth", "ltc", "doge"])),
                out("value", thingtalk::Type::Currency),
            ],
        ));
    let templates = vec![
        np("com.coinbase", "get_price", "the price of $currency_code"),
        np(
            "com.coinbase",
            "get_price",
            "how much $currency_code is worth",
        ),
        wp(
            "com.coinbase",
            "get_price",
            "when the price of $currency_code changes",
        ),
    ];
    (class, templates)
}

fn nasa() -> SkillEntry {
    let class = ClassDef::new("gov.nasa")
        .with_display_name("NASA")
        .with_domain("web services")
        .with_function(mq(
            "apod",
            "nasa's astronomy picture of the day",
            vec![
                out("title", s()),
                out("description", s()),
                out("picture_url", thingtalk::Type::Picture),
            ],
        ))
        .with_function(lq(
            "asteroid",
            "asteroids passing near earth",
            vec![
                out("name", s()),
                out("distance", measure(BaseUnit::Meter)),
                out("is_dangerous", boolean()),
            ],
        ))
        .with_function(q(
            "rover",
            "pictures from the mars rover",
            vec![
                opt("date_taken", date()),
                out("picture_url", thingtalk::Type::Picture),
                out("camera_used", s()),
            ],
        ));
    let templates = vec![
        np("gov.nasa", "apod", "nasa's astronomy picture of the day"),
        np("gov.nasa", "apod", "the nasa picture of the day"),
        wp(
            "gov.nasa",
            "apod",
            "when nasa publishes a new picture of the day",
        ),
        np("gov.nasa", "asteroid", "asteroids passing near earth"),
        np("gov.nasa", "asteroid", "near earth objects today"),
        np("gov.nasa", "rover", "pictures from the mars rover"),
    ];
    (class, templates)
}

fn uber() -> SkillEntry {
    let class = ClassDef::new("com.uber")
        .with_display_name("Uber")
        .with_domain("web services")
        .with_function(q(
            "get_price_estimate",
            "the price of an uber ride",
            vec![
                req("start", thingtalk::Type::Location),
                req("end", thingtalk::Type::Location),
                out("low_estimate", thingtalk::Type::Currency),
                out("high_estimate", thingtalk::Type::Currency),
                out("duration", measure(BaseUnit::Millisecond)),
            ],
        ))
        .with_function(act(
            "request_ride",
            "request an uber",
            vec![
                req("start", thingtalk::Type::Location),
                req("end", thingtalk::Type::Location),
            ],
        ));
    let templates = vec![
        np(
            "com.uber",
            "get_price_estimate",
            "the price of an uber from $start to $end",
        ),
        np(
            "com.uber",
            "get_price_estimate",
            "how much an uber to $end costs from $start",
        ),
        vp(
            "com.uber",
            "request_ride",
            "get me an uber from $start to $end",
        ),
        vp(
            "com.uber",
            "request_ride",
            "request a ride to $end from $start",
        ),
    ];
    (class, templates)
}

fn yelp() -> SkillEntry {
    let class = ClassDef::new("com.yelp")
        .with_display_name("Yelp")
        .with_domain("web services")
        .with_function(lq(
            "restaurant",
            "restaurants nearby",
            vec![
                opt("cuisine", s()),
                opt("location", thingtalk::Type::Location),
                out("name", s()),
                out("rating", num()),
                out(
                    "price_range",
                    en(&["cheap", "moderate", "expensive", "luxury"]),
                ),
                out("link", thingtalk::Type::Url),
            ],
        ));
    let templates = vec![
        np("com.yelp", "restaurant", "restaurants near $location"),
        np("com.yelp", "restaurant", "$cuisine restaurants nearby"),
        np("com.yelp", "restaurant", "places to eat around $location"),
        vp("com.yelp", "restaurant", "find me a $cuisine restaurant"),
    ];
    (class, templates)
}

fn airquality() -> SkillEntry {
    let class = ClassDef::new("gov.epa.airnow")
        .with_display_name("Air Quality")
        .with_domain("weather")
        .with_function(mq(
            "get_aqi",
            "the air quality index",
            vec![
                opt("location", thingtalk::Type::Location),
                out("aqi", num()),
                out(
                    "category",
                    en(&["good", "moderate", "unhealthy", "hazardous"]),
                ),
            ],
        ));
    let templates = vec![
        np("gov.epa.airnow", "get_aqi", "the air quality in $location"),
        np("gov.epa.airnow", "get_aqi", "the aqi near me"),
        wp("gov.epa.airnow", "get_aqi", "when the air quality changes"),
        wp(
            "gov.epa.airnow",
            "get_aqi",
            "when the air becomes unhealthy",
        ),
    ];
    (class, templates)
}

fn builtin_device() -> SkillEntry {
    let class = ClassDef::new("org.thingpedia.builtin.thingengine.builtin")
        .with_display_name("Assistant")
        .with_domain("web services")
        .with_function(q(
            "get_random_between",
            "a random number",
            vec![req("low", num()), req("high", num()), out("random", num())],
        ))
        .with_function(mq("get_date", "today's date", vec![out("date", date())]))
        .with_function(mq(
            "get_time",
            "the current time",
            vec![out("time", thingtalk::Type::Time)],
        ))
        .with_function(act("say", "say something", vec![req("message", s())]))
        .with_function(act(
            "open_url",
            "open a website",
            vec![req("url", thingtalk::Type::Url)],
        ));
    let templates = vec![
        np(
            "org.thingpedia.builtin.thingengine.builtin",
            "get_random_between",
            "a random number between $low and $high",
        ),
        vp(
            "org.thingpedia.builtin.thingengine.builtin",
            "get_random_between",
            "pick a number between $low and $high",
        ),
        np(
            "org.thingpedia.builtin.thingengine.builtin",
            "get_date",
            "today's date",
        ),
        wp(
            "org.thingpedia.builtin.thingengine.builtin",
            "get_date",
            "when the date changes",
        ),
        np(
            "org.thingpedia.builtin.thingengine.builtin",
            "get_time",
            "the current time",
        ),
        wp(
            "org.thingpedia.builtin.thingengine.builtin",
            "get_time",
            "when the time changes",
        ),
        vp(
            "org.thingpedia.builtin.thingengine.builtin",
            "say",
            "say $message",
        ),
        vp(
            "org.thingpedia.builtin.thingengine.builtin",
            "say",
            "tell me $message",
        ),
        vp(
            "org.thingpedia.builtin.thingengine.builtin",
            "open_url",
            "open $url",
        ),
    ];
    (class, templates)
}
