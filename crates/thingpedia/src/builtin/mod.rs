//! The builtin skill library: 45+ classes across the domains of the paper's
//! Thingpedia snapshot, each with function signatures (Fig. 3), canonical
//! phrases, and primitive templates (Table 1).
//!
//! The classes are grouped by domain module. `all()` returns every class
//! together with its primitive templates; [`crate::Thingpedia::builtin`]
//! assembles them into a registry.

pub mod communication;
pub mod iot;
pub mod media;
pub mod news;
pub mod productivity;
pub mod social;
pub mod spotify;
pub mod web;

use thingtalk::class::ClassDef;

use crate::templates::PrimitiveTemplate;

/// A class plus its primitive templates.
pub type SkillEntry = (ClassDef, Vec<PrimitiveTemplate>);

/// All builtin skills (the extended Spotify skill of §6.1 is returned
/// separately by [`spotify::extended`]).
pub fn all() -> Vec<SkillEntry> {
    let mut out = Vec::new();
    out.extend(social::skills());
    out.extend(communication::skills());
    out.extend(media::skills());
    out.extend(news::skills());
    out.extend(productivity::skills());
    out.extend(iot::skills());
    out.extend(web::skills());
    out.push(spotify::basic());
    out
}

/// Shared shorthand for declaring functions and parameters compactly.
pub(crate) mod dsl {
    use thingtalk::class::{FunctionDef, FunctionKind, ParamDef, ParamDirection};
    use thingtalk::types::Type;
    use thingtalk::units::BaseUnit;

    /// Required input parameter.
    pub fn req(name: &str, ty: Type) -> ParamDef {
        ParamDef::new(name, ty, ParamDirection::InReq)
    }

    /// Optional input parameter.
    pub fn opt(name: &str, ty: Type) -> ParamDef {
        ParamDef::new(name, ty, ParamDirection::InOpt)
    }

    /// Output parameter.
    pub fn out(name: &str, ty: Type) -> ParamDef {
        ParamDef::new(name, ty, ParamDirection::Out)
    }

    /// Monitorable list query.
    pub fn mlq(name: &str, canonical: &str, params: Vec<ParamDef>) -> FunctionDef {
        FunctionDef::new(name, FunctionKind::MONITORABLE_LIST_QUERY, params)
            .with_canonical(canonical)
    }

    /// Monitorable single-result query.
    pub fn mq(name: &str, canonical: &str, params: Vec<ParamDef>) -> FunctionDef {
        FunctionDef::new(name, FunctionKind::MONITORABLE_QUERY, params).with_canonical(canonical)
    }

    /// Non-monitorable list query.
    pub fn lq(name: &str, canonical: &str, params: Vec<ParamDef>) -> FunctionDef {
        FunctionDef::new(name, FunctionKind::LIST_QUERY, params).with_canonical(canonical)
    }

    /// Non-monitorable single-result query.
    pub fn q(name: &str, canonical: &str, params: Vec<ParamDef>) -> FunctionDef {
        FunctionDef::new(name, FunctionKind::QUERY, params).with_canonical(canonical)
    }

    /// Action.
    pub fn act(name: &str, canonical: &str, params: Vec<ParamDef>) -> FunctionDef {
        FunctionDef::new(name, FunctionKind::Action, params).with_canonical(canonical)
    }

    /// `String` type shorthand.
    pub fn s() -> Type {
        Type::String
    }

    /// `Number` type shorthand.
    pub fn num() -> Type {
        Type::Number
    }

    /// `Boolean` type shorthand.
    pub fn boolean() -> Type {
        Type::Boolean
    }

    /// `Date` type shorthand.
    pub fn date() -> Type {
        Type::Date
    }

    /// Entity type shorthand.
    pub fn ent(kind: &str) -> Type {
        Type::Entity(kind.to_owned())
    }

    /// Enum type shorthand.
    pub fn en(variants: &[&str]) -> Type {
        Type::Enum(variants.iter().map(|v| v.to_string()).collect())
    }

    /// Measure type shorthand.
    pub fn measure(base: BaseUnit) -> Type {
        Type::Measure(base)
    }

    /// Array type shorthand.
    pub fn array(inner: Type) -> Type {
        Type::Array(Box::new(inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::class::FunctionKind;

    #[test]
    fn all_returns_many_skills() {
        let skills = all();
        assert!(skills.len() >= 44, "found only {} skills", skills.len());
        // No duplicate class names.
        let mut names: Vec<&str> = skills.iter().map(|(c, _)| c.name.as_str()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(
            before,
            names.len(),
            "duplicate class names in the builtin library"
        );
    }

    #[test]
    fn every_class_has_a_domain_and_display_name() {
        for (class, _) in all() {
            assert!(
                !class.domain.is_empty(),
                "class {} has no domain",
                class.name
            );
            assert!(!class.display_name.is_empty());
            assert!(
                !class.functions.is_empty(),
                "class {} has no functions",
                class.name
            );
        }
    }

    #[test]
    fn actions_have_no_output_parameters() {
        for (class, _) in all() {
            for function in class.functions.values() {
                if function.kind == FunctionKind::Action {
                    assert_eq!(
                        function.output_params().count(),
                        0,
                        "action @{}.{} declares output parameters",
                        class.name,
                        function.name
                    );
                }
            }
        }
    }

    #[test]
    fn queries_have_at_least_one_output_parameter() {
        for (class, _) in all() {
            for function in class.functions.values() {
                if function.kind.is_query() {
                    assert!(
                        function.output_params().count() > 0,
                        "query @{}.{} has no output parameters",
                        class.name,
                        function.name
                    );
                }
            }
        }
    }
}
