//! IoT skills: Hue lights, a thermostat, a security camera, a smart scale, a
//! fitness tracker, a smart plug, a robot vacuum, a smart lock, and a car.

use thingtalk::class::ClassDef;
use thingtalk::units::BaseUnit;

use super::dsl::*;
use super::SkillEntry;
use crate::templates::short::{np, vp, wp};

/// The IoT skills.
pub fn skills() -> Vec<SkillEntry> {
    vec![
        hue(),
        thermostat(),
        security_camera(),
        scale(),
        fitbit(),
        smart_plug(),
        roomba(),
        august_lock(),
        tesla(),
    ]
}

fn hue() -> SkillEntry {
    let class = ClassDef::new("com.hue")
        .with_display_name("Philips Hue")
        .with_domain("home automation")
        .with_function(mlq(
            "list_lights",
            "my hue light bulbs",
            vec![
                out("name", ent("tt:device_name")),
                out("power", en(&["on", "off"])),
                out("brightness", num()),
                out("color", s()),
            ],
        ))
        .with_function(act(
            "set_power",
            "turn a hue light on or off",
            vec![
                req("name", ent("tt:device_name")),
                req("power", en(&["on", "off"])),
            ],
        ))
        .with_function(act(
            "set_color",
            "change the color of a hue light",
            vec![req("name", ent("tt:device_name")), req("color", s())],
        ))
        .with_function(act(
            "color_loop",
            "make a hue light cycle through colors",
            vec![req("name", ent("tt:device_name"))],
        ));
    let templates = vec![
        np("com.hue", "list_lights", "my hue light bulbs"),
        np("com.hue", "list_lights", "the state of my hue lights"),
        wp(
            "com.hue",
            "list_lights",
            "when one of my hue lights changes",
        ),
        vp("com.hue", "set_power", "turn $power my $name hue light"),
        vp("com.hue", "set_power", "switch the $name light $power"),
        vp("com.hue", "set_color", "set my $name light to $color"),
        vp(
            "com.hue",
            "set_color",
            "change the color of the $name light to $color",
        ),
        vp(
            "com.hue",
            "color_loop",
            "make my $name hue light color loop",
        ),
        vp("com.hue", "color_loop", "blink my $name light"),
    ];
    (class, templates)
}

fn thermostat() -> SkillEntry {
    let class = ClassDef::new("org.thingpedia.builtin.thermostat")
        .with_display_name("Thermostat")
        .with_domain("home automation")
        .with_function(mq(
            "get_temperature",
            "the temperature at home",
            vec![
                out("value", measure(BaseUnit::Celsius)),
                out("humidity", num()),
            ],
        ))
        .with_function(mq(
            "get_target_temperature",
            "the thermostat set point",
            vec![out("value", measure(BaseUnit::Celsius))],
        ))
        .with_function(act(
            "set_target_temperature",
            "set the thermostat",
            vec![req("value", measure(BaseUnit::Celsius))],
        ))
        .with_function(act(
            "set_mode",
            "set the thermostat mode",
            vec![req("mode", en(&["heat", "cool", "off", "auto"]))],
        ));
    let templates = vec![
        np(
            "org.thingpedia.builtin.thermostat",
            "get_temperature",
            "the temperature at home",
        ),
        np(
            "org.thingpedia.builtin.thermostat",
            "get_temperature",
            "the indoor temperature",
        ),
        wp(
            "org.thingpedia.builtin.thermostat",
            "get_temperature",
            "when the temperature at home changes",
        ),
        np(
            "org.thingpedia.builtin.thermostat",
            "get_target_temperature",
            "the thermostat set point",
        ),
        wp(
            "org.thingpedia.builtin.thermostat",
            "get_target_temperature",
            "when someone changes the thermostat",
        ),
        vp(
            "org.thingpedia.builtin.thermostat",
            "set_target_temperature",
            "set the temperature to $value",
        ),
        vp(
            "org.thingpedia.builtin.thermostat",
            "set_target_temperature",
            "set the thermostat to $value",
        ),
        vp(
            "org.thingpedia.builtin.thermostat",
            "set_mode",
            "set the thermostat to $mode mode",
        ),
    ];
    (class, templates)
}

fn security_camera() -> SkillEntry {
    let class = ClassDef::new("com.nest.security_camera")
        .with_display_name("Security Camera")
        .with_domain("home automation")
        .with_function(mq(
            "current_event",
            "events detected by my security camera",
            vec![
                out("has_person", boolean()),
                out("has_motion", boolean()),
                out("has_sound", boolean()),
                out("picture_url", thingtalk::Type::Picture),
                out("start_time", date()),
            ],
        ))
        .with_function(q(
            "get_snapshot",
            "a snapshot from my security camera",
            vec![out("picture_url", thingtalk::Type::Picture)],
        ))
        .with_function(act(
            "set_is_streaming",
            "turn the security camera on or off",
            vec![req("is_streaming", boolean())],
        ));
    let templates = vec![
        np(
            "com.nest.security_camera",
            "current_event",
            "events from my security camera",
        ),
        wp(
            "com.nest.security_camera",
            "current_event",
            "when my security camera detects motion",
        ),
        wp(
            "com.nest.security_camera",
            "current_event",
            "when someone is at the door",
        ),
        np(
            "com.nest.security_camera",
            "get_snapshot",
            "a snapshot from my security camera",
        ),
        vp(
            "com.nest.security_camera",
            "get_snapshot",
            "show me the security camera",
        ),
        vp(
            "com.nest.security_camera",
            "set_is_streaming",
            "turn the security camera streaming $is_streaming",
        ),
    ];
    (class, templates)
}

fn scale() -> SkillEntry {
    let class = ClassDef::new("com.bodytrace.scale")
        .with_display_name("Smart Scale")
        .with_domain("health")
        .with_function(mq(
            "get_weight",
            "my weight from the smart scale",
            vec![out("weight", measure(BaseUnit::Gram)), out("time", date())],
        ));
    let templates = vec![
        np("com.bodytrace.scale", "get_weight", "my weight"),
        np(
            "com.bodytrace.scale",
            "get_weight",
            "the reading from my smart scale",
        ),
        wp(
            "com.bodytrace.scale",
            "get_weight",
            "when i step on the scale",
        ),
        wp(
            "com.bodytrace.scale",
            "get_weight",
            "when my weight changes",
        ),
    ];
    (class, templates)
}

fn fitbit() -> SkillEntry {
    let class = ClassDef::new("com.fitbit")
        .with_display_name("Fitbit")
        .with_domain("health")
        .with_function(mq(
            "getsteps",
            "my step count",
            vec![out("steps", num()), out("date", date())],
        ))
        .with_function(mq(
            "get_heart_rate",
            "my heart rate",
            vec![out("heart_rate", measure(BaseUnit::BeatPerMinute))],
        ))
        .with_function(mq(
            "get_sleep",
            "how i slept",
            vec![
                out("duration", measure(BaseUnit::Millisecond)),
                out("efficiency", num()),
            ],
        ));
    let templates = vec![
        np("com.fitbit", "getsteps", "my step count"),
        np("com.fitbit", "getsteps", "how many steps i walked today"),
        wp("com.fitbit", "getsteps", "when my step count updates"),
        np("com.fitbit", "get_heart_rate", "my heart rate"),
        wp("com.fitbit", "get_heart_rate", "when my heart rate changes"),
        np("com.fitbit", "get_sleep", "how i slept last night"),
        wp("com.fitbit", "get_sleep", "when my sleep data is ready"),
    ];
    (class, templates)
}

fn smart_plug() -> SkillEntry {
    let class = ClassDef::new("com.tplink.plug")
        .with_display_name("Smart Plug")
        .with_domain("home automation")
        .with_function(mq(
            "get_state",
            "whether the smart plug is on",
            vec![out("power", en(&["on", "off"])), out("energy_usage", num())],
        ))
        .with_function(act(
            "set_power",
            "turn the smart plug on or off",
            vec![req("power", en(&["on", "off"]))],
        ));
    let templates = vec![
        np(
            "com.tplink.plug",
            "get_state",
            "whether my smart plug is on",
        ),
        wp(
            "com.tplink.plug",
            "get_state",
            "when my smart plug switches",
        ),
        vp("com.tplink.plug", "set_power", "turn the plug $power"),
        vp(
            "com.tplink.plug",
            "set_power",
            "switch $power the smart plug",
        ),
    ];
    (class, templates)
}

fn roomba() -> SkillEntry {
    let class = ClassDef::new("com.irobot.roomba")
        .with_display_name("Roomba")
        .with_domain("home automation")
        .with_function(mq(
            "get_status",
            "what my roomba is doing",
            vec![
                out("status", en(&["cleaning", "docked", "stuck", "charging"])),
                out("battery", num()),
            ],
        ))
        .with_function(act("start_cleaning", "start the roomba", vec![]))
        .with_function(act("dock", "send the roomba home", vec![]));
    let templates = vec![
        np("com.irobot.roomba", "get_status", "what my roomba is doing"),
        wp(
            "com.irobot.roomba",
            "get_status",
            "when my roomba gets stuck",
        ),
        wp(
            "com.irobot.roomba",
            "get_status",
            "when the roomba finishes cleaning",
        ),
        vp("com.irobot.roomba", "start_cleaning", "start the roomba"),
        vp("com.irobot.roomba", "start_cleaning", "vacuum the house"),
        vp(
            "com.irobot.roomba",
            "dock",
            "send the roomba back to its dock",
        ),
    ];
    (class, templates)
}

fn august_lock() -> SkillEntry {
    let class = ClassDef::new("com.august.lock")
        .with_display_name("Smart Lock")
        .with_domain("home automation")
        .with_function(mq(
            "get_state",
            "whether my door is locked",
            vec![
                out("state", en(&["locked", "unlocked"])),
                out("battery", num()),
            ],
        ))
        .with_function(act("lock", "lock the door", vec![]))
        .with_function(act("unlock", "unlock the door", vec![]));
    let templates = vec![
        np("com.august.lock", "get_state", "whether my door is locked"),
        wp(
            "com.august.lock",
            "get_state",
            "when my front door is unlocked",
        ),
        wp(
            "com.august.lock",
            "get_state",
            "when someone opens the door",
        ),
        vp("com.august.lock", "lock", "lock the front door"),
        vp("com.august.lock", "unlock", "unlock the front door"),
    ];
    (class, templates)
}

fn tesla() -> SkillEntry {
    let class = ClassDef::new("com.tesla.car")
        .with_display_name("Tesla")
        .with_domain("home automation")
        .with_function(mq(
            "get_charge_state",
            "my car's battery level",
            vec![
                out("battery_level", num()),
                out(
                    "charging_state",
                    en(&["charging", "complete", "disconnected"]),
                ),
                out("range", measure(BaseUnit::Meter)),
            ],
        ))
        .with_function(mq(
            "get_location",
            "where my car is parked",
            vec![out("location", thingtalk::Type::Location)],
        ))
        .with_function(act(
            "set_climate",
            "precondition the car",
            vec![req("value", measure(BaseUnit::Celsius))],
        ))
        .with_function(act("honk_horn", "honk the horn", vec![]));
    let templates = vec![
        np(
            "com.tesla.car",
            "get_charge_state",
            "my car's battery level",
        ),
        np(
            "com.tesla.car",
            "get_charge_state",
            "how charged my tesla is",
        ),
        wp(
            "com.tesla.car",
            "get_charge_state",
            "when my car finishes charging",
        ),
        wp(
            "com.tesla.car",
            "get_charge_state",
            "when my car's battery gets low",
        ),
        np("com.tesla.car", "get_location", "where my car is parked"),
        wp("com.tesla.car", "get_location", "when my car moves"),
        vp(
            "com.tesla.car",
            "set_climate",
            "set the car temperature to $value",
        ),
        vp("com.tesla.car", "honk_horn", "honk the horn"),
    ];
    (class, templates)
}
