//! The Spotify skill.
//!
//! `basic()` is the small music skill that is part of the main 44-skill
//! library; `extended()` is the comprehensive skill of the first case study
//! (§6.1), which "allows users to combine 15 queries and 17 actions in
//! creative ways" — e.g. "add all songs faster than 500 bpm to the playlist
//! dance dance revolution" or "wake me up at 8 am by playing wake me up
//! inside by evanescence".

use thingtalk::class::ClassDef;
use thingtalk::units::BaseUnit;

use super::dsl::*;
use super::SkillEntry;
use crate::templates::short::{np, vp, wp};

/// The basic Spotify skill included in the main library.
pub fn basic() -> SkillEntry {
    let class = ClassDef::new("com.spotify")
        .with_display_name("Spotify")
        .with_domain("media")
        .with_function(mq(
            "get_currently_playing",
            "the song i am listening to",
            vec![
                out("song", ent("com.spotify:song")),
                out("artist", ent("com.spotify:artist")),
                out("album", ent("com.spotify:album")),
            ],
        ))
        .with_function(lq(
            "search_songs",
            "songs matching a search",
            vec![
                req("query", s()),
                out("song", ent("com.spotify:song")),
                out("artist", ent("com.spotify:artist")),
                out("popularity", num()),
            ],
        ))
        .with_function(act(
            "play_song",
            "play a song",
            vec![req("song", ent("com.spotify:song"))],
        ))
        .with_function(act(
            "add_to_playlist",
            "add a song to a playlist",
            vec![
                req("playlist", ent("com.spotify:playlist")),
                req("song", ent("com.spotify:song")),
            ],
        ));
    let templates = vec![
        np(
            "com.spotify",
            "get_currently_playing",
            "the song i am listening to",
        ),
        np(
            "com.spotify",
            "get_currently_playing",
            "what is playing on spotify",
        ),
        wp(
            "com.spotify",
            "get_currently_playing",
            "when the song changes on spotify",
        ),
        np(
            "com.spotify",
            "search_songs",
            "songs matching $query on spotify",
        ),
        np("com.spotify", "search_songs", "spotify songs about $query"),
        vp("com.spotify", "play_song", "play $song"),
        vp("com.spotify", "play_song", "play $song on spotify"),
        vp(
            "com.spotify",
            "add_to_playlist",
            "add $song to the playlist $playlist",
        ),
        vp(
            "com.spotify",
            "add_to_playlist",
            "put $song in my $playlist playlist",
        ),
    ];
    (class, templates)
}

/// The comprehensive Spotify skill of the §6.1 case study: 15 queries and 17
/// actions written by the skill developers (5.8 primitive templates per
/// function on average in the paper).
pub fn extended() -> SkillEntry {
    let song_outs = vec![
        out("song", ent("com.spotify:song")),
        out("artist", ent("com.spotify:artist")),
        out("album", ent("com.spotify:album")),
        out("genre", ent("tt:music_genre")),
        out("popularity", num()),
        out("tempo", measure(BaseUnit::BeatPerMinute)),
        out("duration", measure(BaseUnit::Millisecond)),
        out("release_date", date()),
        out("is_explicit", boolean()),
    ];
    let class = ClassDef::new("com.spotify")
        .with_display_name("Spotify")
        .with_domain("media")
        // ---- queries (15) ----
        .with_function(mq(
            "get_currently_playing",
            "the song i am listening to",
            song_outs.clone(),
        ))
        .with_function(lq("search_songs", "songs matching a search", {
            let mut p = vec![req("query", s())];
            p.extend(song_outs.clone());
            p
        }))
        .with_function(lq(
            "search_artists",
            "artists matching a search",
            vec![
                req("query", s()),
                out("artist", ent("com.spotify:artist")),
                out("genre", ent("tt:music_genre")),
                out("follower_count", num()),
            ],
        ))
        .with_function(lq(
            "search_albums",
            "albums matching a search",
            vec![
                req("query", s()),
                out("album", ent("com.spotify:album")),
                out("artist", ent("com.spotify:artist")),
                out("release_date", date()),
            ],
        ))
        .with_function(lq("get_playlist_tracks", "songs in a playlist", {
            let mut p = vec![req("playlist", ent("com.spotify:playlist"))];
            p.extend(song_outs.clone());
            p
        }))
        .with_function(mlq("get_saved_songs", "my saved songs", song_outs.clone()))
        .with_function(mlq(
            "get_recently_played",
            "songs i listened to recently",
            song_outs.clone(),
        ))
        .with_function(lq(
            "get_top_tracks",
            "my most played songs",
            song_outs.clone(),
        ))
        .with_function(lq(
            "get_top_artists",
            "my most played artists",
            vec![
                out("artist", ent("com.spotify:artist")),
                out("genre", ent("tt:music_genre")),
            ],
        ))
        .with_function(lq(
            "get_new_releases",
            "newly released albums",
            vec![
                out("album", ent("com.spotify:album")),
                out("artist", ent("com.spotify:artist")),
                out("release_date", date()),
            ],
        ))
        .with_function(lq("get_recommendations", "recommended songs", {
            let mut p = vec![opt("seed_genre", ent("tt:music_genre"))];
            p.extend(song_outs.clone());
            p
        }))
        .with_function(mlq(
            "get_my_playlists",
            "my playlists",
            vec![
                out("playlist", ent("com.spotify:playlist")),
                out("track_count", num()),
                out("is_public", boolean()),
            ],
        ))
        .with_function(lq(
            "get_artist_top_tracks",
            "an artist's most popular songs",
            {
                let mut p = vec![req("artist", ent("com.spotify:artist"))];
                p.extend(song_outs.clone());
                p
            },
        ))
        .with_function(lq("get_album_tracks", "songs on an album", {
            let mut p = vec![req("album", ent("com.spotify:album"))];
            p.extend(song_outs);
            p
        }))
        .with_function(mq(
            "get_playback_state",
            "what my spotify player is doing",
            vec![
                out("is_playing", boolean()),
                out("shuffle", boolean()),
                out("volume", num()),
                out("device_name", ent("tt:device_name")),
            ],
        ))
        // ---- actions (17) ----
        .with_function(act(
            "play_song",
            "play a song",
            vec![req("song", ent("com.spotify:song"))],
        ))
        .with_function(act(
            "play_artist",
            "play songs by an artist",
            vec![req("artist", ent("com.spotify:artist"))],
        ))
        .with_function(act(
            "play_album",
            "play an album",
            vec![req("album", ent("com.spotify:album"))],
        ))
        .with_function(act(
            "play_playlist",
            "play a playlist",
            vec![req("playlist", ent("com.spotify:playlist"))],
        ))
        .with_function(act(
            "play_genre",
            "play music of a genre",
            vec![req("genre", ent("tt:music_genre"))],
        ))
        .with_function(act("pause", "pause the music", vec![]))
        .with_function(act("resume", "resume the music", vec![]))
        .with_function(act("next_track", "skip to the next song", vec![]))
        .with_function(act(
            "previous_track",
            "go back to the previous song",
            vec![],
        ))
        .with_function(act(
            "set_volume",
            "set the volume",
            vec![req("volume", num())],
        ))
        .with_function(act(
            "set_shuffle",
            "turn shuffle on or off",
            vec![req("shuffle", boolean())],
        ))
        .with_function(act(
            "set_repeat",
            "set the repeat mode",
            vec![req("mode", en(&["track", "context", "off"]))],
        ))
        .with_function(act(
            "add_to_playlist",
            "add a song to a playlist",
            vec![
                req("playlist", ent("com.spotify:playlist")),
                req("song", ent("com.spotify:song")),
            ],
        ))
        .with_function(act(
            "remove_from_playlist",
            "remove a song from a playlist",
            vec![
                req("playlist", ent("com.spotify:playlist")),
                req("song", ent("com.spotify:song")),
            ],
        ))
        .with_function(act(
            "create_playlist",
            "create a playlist",
            vec![req("name", s())],
        ))
        .with_function(act(
            "save_song",
            "save a song to my library",
            vec![req("song", ent("com.spotify:song"))],
        ))
        .with_function(act(
            "follow_artist",
            "follow an artist",
            vec![req("artist", ent("com.spotify:artist"))],
        ));

    let c = "com.spotify";
    let templates = vec![
        // queries
        np(c, "get_currently_playing", "the song i am listening to"),
        np(c, "get_currently_playing", "what is playing right now"),
        np(c, "get_currently_playing", "the current song on spotify"),
        wp(c, "get_currently_playing", "when the song changes"),
        np(c, "search_songs", "songs matching $query"),
        np(c, "search_songs", "spotify songs about $query"),
        vp(c, "search_songs", "search spotify for $query"),
        np(c, "search_artists", "artists matching $query"),
        np(c, "search_artists", "musicians named $query"),
        np(c, "search_albums", "albums matching $query"),
        np(c, "get_playlist_tracks", "songs in the playlist $playlist"),
        np(c, "get_playlist_tracks", "what is on my $playlist playlist"),
        np(c, "get_saved_songs", "my saved songs"),
        np(c, "get_saved_songs", "songs in my spotify library"),
        wp(c, "get_saved_songs", "when i save a new song"),
        np(c, "get_recently_played", "songs i listened to recently"),
        np(c, "get_recently_played", "my spotify listening history"),
        wp(
            c,
            "get_recently_played",
            "when i finish listening to a song",
        ),
        np(c, "get_top_tracks", "my most played songs"),
        np(c, "get_top_tracks", "my favorite tracks on spotify"),
        np(c, "get_top_artists", "my most played artists"),
        np(c, "get_new_releases", "newly released albums"),
        np(c, "get_new_releases", "new music on spotify"),
        np(c, "get_recommendations", "recommended songs"),
        np(
            c,
            "get_recommendations",
            "spotify recommendations for $seed_genre",
        ),
        np(c, "get_my_playlists", "my playlists"),
        wp(c, "get_my_playlists", "when i create a new playlist"),
        np(
            c,
            "get_artist_top_tracks",
            "the most popular songs by $artist",
        ),
        np(c, "get_artist_top_tracks", "top tracks of $artist"),
        np(c, "get_album_tracks", "songs on the album $album"),
        np(c, "get_playback_state", "what my spotify player is doing"),
        wp(c, "get_playback_state", "when my spotify playback changes"),
        // actions
        vp(c, "play_song", "play $song"),
        vp(c, "play_song", "play the song $song"),
        vp(c, "play_song", "put on $song"),
        vp(c, "play_artist", "play songs by $artist"),
        vp(c, "play_artist", "play $artist"),
        vp(c, "play_album", "play the album $album"),
        vp(c, "play_playlist", "play my $playlist playlist"),
        vp(c, "play_playlist", "put on the $playlist playlist"),
        vp(c, "play_genre", "play some $genre music"),
        vp(c, "play_genre", "put on $genre"),
        vp(c, "pause", "pause the music"),
        vp(c, "pause", "stop playing"),
        vp(c, "resume", "resume the music"),
        vp(c, "resume", "keep playing"),
        vp(c, "next_track", "skip this song"),
        vp(c, "next_track", "play the next track"),
        vp(c, "previous_track", "go back to the previous song"),
        vp(c, "set_volume", "set the volume to $volume"),
        vp(c, "set_volume", "turn the volume to $volume percent"),
        vp(c, "set_shuffle", "set shuffle to $shuffle"),
        vp(c, "set_repeat", "set repeat to $mode"),
        vp(c, "add_to_playlist", "add $song to the playlist $playlist"),
        vp(c, "add_to_playlist", "put $song in my $playlist playlist"),
        vp(
            c,
            "remove_from_playlist",
            "remove $song from the playlist $playlist",
        ),
        vp(c, "create_playlist", "create a playlist called $name"),
        vp(c, "create_playlist", "make a new playlist named $name"),
        vp(c, "save_song", "save $song to my library"),
        vp(c, "save_song", "like the song $song"),
        vp(c, "follow_artist", "follow $artist on spotify"),
    ];
    (class, templates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_skill_matches_case_study_scale() {
        let (class, templates) = extended();
        assert_eq!(class.queries().count(), 15);
        assert_eq!(class.actions().count(), 17);
        let per_function = templates.len() as f64 / class.functions.len() as f64;
        assert!(
            per_function >= 1.5,
            "templates per function = {per_function:.2}"
        );
    }

    #[test]
    fn basic_skill_is_a_subset_by_name() {
        let (basic_class, _) = basic();
        let (extended_class, _) = extended();
        for name in basic_class.functions.keys() {
            assert!(
                extended_class.functions.contains_key(name),
                "extended spotify is missing {name}"
            );
        }
    }
}
