//! Productivity and cloud-storage skills: Dropbox, OneDrive, Google Drive,
//! GitHub, a calendar, a to-do list, and a note-taking app.

use thingtalk::class::ClassDef;
use thingtalk::units::BaseUnit;
use thingtalk::Value;

use super::dsl::*;
use super::SkillEntry;
use crate::templates::short::{np, vp, wp};

/// The productivity skills.
pub fn skills() -> Vec<SkillEntry> {
    vec![
        dropbox(),
        onedrive(),
        gdrive(),
        github(),
        calendar(),
        todo(),
        notes(),
    ]
}

fn dropbox() -> SkillEntry {
    let class = ClassDef::new("com.dropbox")
        .with_display_name("Dropbox")
        .with_domain("cloud storage")
        .with_function(mq(
            "get_space_usage",
            "my dropbox space usage",
            vec![
                out("used_space", measure(BaseUnit::Byte)),
                out("total_space", measure(BaseUnit::Byte)),
            ],
        ))
        .with_function(mlq(
            "list_folder",
            "my dropbox files",
            vec![
                opt("folder_name", thingtalk::Type::PathName),
                opt(
                    "order_by",
                    en(&[
                        "modified_time_decreasing",
                        "modified_time_increasing",
                        "name",
                    ]),
                ),
                out("file_name", thingtalk::Type::PathName),
                out("is_folder", boolean()),
                out("modified_time", date()),
                out("file_size", measure(BaseUnit::Byte)),
                out("full_path", thingtalk::Type::PathName),
            ],
        ))
        .with_function(q(
            "open",
            "a temporary download link to a dropbox file",
            vec![
                req("file_name", thingtalk::Type::PathName),
                out("download_url", thingtalk::Type::Url),
            ],
        ))
        .with_function(act(
            "move",
            "move a dropbox file",
            vec![
                req("old_name", thingtalk::Type::PathName),
                req("new_name", thingtalk::Type::PathName),
            ],
        ))
        .with_function(act(
            "create_folder",
            "create a dropbox folder",
            vec![req("folder_name", thingtalk::Type::PathName)],
        ));
    let templates = vec![
        np("com.dropbox", "get_space_usage", "my dropbox space usage"),
        np(
            "com.dropbox",
            "get_space_usage",
            "how much dropbox space i am using",
        ),
        np("com.dropbox", "list_folder", "my dropbox files"),
        np(
            "com.dropbox",
            "list_folder",
            "files in my dropbox folder $folder_name",
        ),
        np(
            "com.dropbox",
            "list_folder",
            "my dropbox files that changed most recently",
        )
        .with_preset("order_by", Value::Enum("modified_time_decreasing".into())),
        wp(
            "com.dropbox",
            "list_folder",
            "when i modify a file in dropbox",
        ),
        wp(
            "com.dropbox",
            "list_folder",
            "when i create a file in dropbox",
        ),
        np("com.dropbox", "open", "the download url of $file_name"),
        np("com.dropbox", "open", "a temporary link to $file_name"),
        vp("com.dropbox", "open", "open $file_name"),
        vp("com.dropbox", "open", "download $file_name"),
        vp(
            "com.dropbox",
            "move",
            "move $old_name to $new_name in dropbox",
        ),
        vp(
            "com.dropbox",
            "move",
            "rename the dropbox file $old_name to $new_name",
        ),
        vp(
            "com.dropbox",
            "create_folder",
            "create a dropbox folder named $folder_name",
        ),
    ];
    (class, templates)
}

fn onedrive() -> SkillEntry {
    let class = ClassDef::new("com.live.onedrive")
        .with_display_name("OneDrive")
        .with_domain("cloud storage")
        .with_function(mlq(
            "list_files",
            "my onedrive files",
            vec![
                out("file_name", thingtalk::Type::PathName),
                out("file_size", measure(BaseUnit::Byte)),
                out("modified_time", date()),
            ],
        ))
        .with_function(act(
            "upload_file",
            "upload a file to onedrive",
            vec![
                req("file_name", thingtalk::Type::PathName),
                req("contents", s()),
            ],
        ));
    let templates = vec![
        np("com.live.onedrive", "list_files", "my onedrive files"),
        np(
            "com.live.onedrive",
            "list_files",
            "files stored in my onedrive",
        ),
        wp(
            "com.live.onedrive",
            "list_files",
            "when a file changes in my onedrive",
        ),
        vp(
            "com.live.onedrive",
            "upload_file",
            "upload $contents to onedrive as $file_name",
        ),
    ];
    (class, templates)
}

fn gdrive() -> SkillEntry {
    let class = ClassDef::new("com.google.drive")
        .with_display_name("Google Drive")
        .with_domain("cloud storage")
        .with_function(mlq(
            "list_drive_files",
            "my google drive files",
            vec![
                out("file_name", thingtalk::Type::PathName),
                out("file_size", measure(BaseUnit::Byte)),
                out("last_modified", date()),
                out("link", thingtalk::Type::Url),
            ],
        ))
        .with_function(act(
            "create_document",
            "create a google doc",
            vec![req("title", s()), opt("body", s())],
        ));
    let templates = vec![
        np(
            "com.google.drive",
            "list_drive_files",
            "my google drive files",
        ),
        np(
            "com.google.drive",
            "list_drive_files",
            "documents in my google drive",
        ),
        wp(
            "com.google.drive",
            "list_drive_files",
            "when a new file appears in my google drive",
        ),
        vp(
            "com.google.drive",
            "create_document",
            "create a google doc called $title",
        ),
    ];
    (class, templates)
}

fn github() -> SkillEntry {
    let class = ClassDef::new("com.github")
        .with_display_name("GitHub")
        .with_domain("productivity")
        .with_function(mlq(
            "issues",
            "issues opened on my github repositories",
            vec![
                opt("repo_name", ent("com.github:repo_name")),
                out("title", ent("com.github:issue_title")),
                out("author", ent("tt:username")),
                out("number", num()),
                out("state", en(&["open", "closed"])),
            ],
        ))
        .with_function(mlq(
            "pull_requests",
            "pull requests on my repositories",
            vec![
                opt("repo_name", ent("com.github:repo_name")),
                out("title", s()),
                out("author", ent("tt:username")),
                out("number", num()),
            ],
        ))
        .with_function(mlq(
            "commits",
            "commits pushed to a repository",
            vec![
                req("repo_name", ent("com.github:repo_name")),
                out("message", s()),
                out("author", ent("tt:username")),
                out("sha", s()),
            ],
        ))
        .with_function(act(
            "open_issue",
            "open a github issue",
            vec![
                req("repo_name", ent("com.github:repo_name")),
                req("title", s()),
                opt("body", s()),
            ],
        ))
        .with_function(act(
            "star_repo",
            "star a github repository",
            vec![req("repo_name", ent("com.github:repo_name"))],
        ));
    let templates = vec![
        np("com.github", "issues", "issues on my github repositories"),
        np("com.github", "issues", "github issues on $repo_name"),
        wp(
            "com.github",
            "issues",
            "when someone opens an issue on $repo_name",
        ),
        wp("com.github", "issues", "when a new github issue is filed"),
        np("com.github", "pull_requests", "pull requests on $repo_name"),
        wp(
            "com.github",
            "pull_requests",
            "when someone opens a pull request",
        ),
        np("com.github", "commits", "commits pushed to $repo_name"),
        wp("com.github", "commits", "when someone pushes to $repo_name"),
        vp(
            "com.github",
            "open_issue",
            "open an issue on $repo_name titled $title",
        ),
        vp("com.github", "star_repo", "star the repository $repo_name"),
    ];
    (class, templates)
}

fn calendar() -> SkillEntry {
    let class = ClassDef::new("org.thingpedia.builtin.calendar")
        .with_display_name("Calendar")
        .with_domain("productivity")
        .with_function(mlq(
            "list_events",
            "events on my calendar",
            vec![
                out("title", ent("tt:calendar_event")),
                out("start_time", date()),
                out("end_time", date()),
                out("location", thingtalk::Type::Location),
                out("organizer", ent("tt:person_name")),
            ],
        ))
        .with_function(act(
            "create_event",
            "add an event to my calendar",
            vec![
                req("title", s()),
                req("start_time", date()),
                opt("end_time", date()),
                opt("location", thingtalk::Type::Location),
            ],
        ));
    let templates = vec![
        np(
            "org.thingpedia.builtin.calendar",
            "list_events",
            "events on my calendar",
        ),
        np(
            "org.thingpedia.builtin.calendar",
            "list_events",
            "my upcoming meetings",
        ),
        wp(
            "org.thingpedia.builtin.calendar",
            "list_events",
            "when a new event is added to my calendar",
        ),
        wp(
            "org.thingpedia.builtin.calendar",
            "list_events",
            "when a meeting is about to start",
        ),
        vp(
            "org.thingpedia.builtin.calendar",
            "create_event",
            "add $title to my calendar at $start_time",
        ),
        vp(
            "org.thingpedia.builtin.calendar",
            "create_event",
            "schedule $title for $start_time",
        ),
    ];
    (class, templates)
}

fn todo() -> SkillEntry {
    let class = ClassDef::new("com.todoist")
        .with_display_name("Todoist")
        .with_domain("productivity")
        .with_function(mlq(
            "list_tasks",
            "tasks on my to do list",
            vec![
                out("task", s()),
                out("due_date", date()),
                out("priority", num()),
                out("completed", boolean()),
            ],
        ))
        .with_function(act(
            "add_task",
            "add a task to my to do list",
            vec![req("task", s()), opt("due_date", date())],
        ))
        .with_function(act(
            "complete_task",
            "mark a task as done",
            vec![req("task", s())],
        ));
    let templates = vec![
        np("com.todoist", "list_tasks", "tasks on my to do list"),
        np("com.todoist", "list_tasks", "my todoist tasks"),
        wp(
            "com.todoist",
            "list_tasks",
            "when i add a task to my to do list",
        ),
        wp("com.todoist", "list_tasks", "when a task becomes due"),
        vp("com.todoist", "add_task", "add $task to my to do list"),
        vp("com.todoist", "add_task", "remind me to $task"),
        vp("com.todoist", "complete_task", "mark $task as done"),
    ];
    (class, templates)
}

fn notes() -> SkillEntry {
    let class = ClassDef::new("com.evernote")
        .with_display_name("Evernote")
        .with_domain("productivity")
        .with_function(mlq(
            "list_notes",
            "my evernote notes",
            vec![
                out("title", ent("tt:note_title")),
                out("body", s()),
                out("updated", date()),
            ],
        ))
        .with_function(act(
            "create_note",
            "create a note",
            vec![req("title", s()), req("body", s())],
        ))
        .with_function(act(
            "append_to_note",
            "append to a note",
            vec![req("title", ent("tt:note_title")), req("body", s())],
        ));
    let templates = vec![
        np("com.evernote", "list_notes", "my evernote notes"),
        np("com.evernote", "list_notes", "notes i saved in evernote"),
        wp(
            "com.evernote",
            "list_notes",
            "when i edit a note in evernote",
        ),
        vp(
            "com.evernote",
            "create_note",
            "create a note titled $title saying $body",
        ),
        vp(
            "com.evernote",
            "create_note",
            "save a note that says $body with title $title",
        ),
        vp(
            "com.evernote",
            "append_to_note",
            "append $body to my note $title",
        ),
    ];
    (class, templates)
}
