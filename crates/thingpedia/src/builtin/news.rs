//! News skills: the New York Times, the Washington Post, the Wall Street
//! Journal, BBC, a generic RSS reader, and PhD Comics.

use thingtalk::class::ClassDef;

use super::dsl::*;
use super::SkillEntry;
use crate::templates::short::{np, vp, wp};

/// The news skills.
pub fn skills() -> Vec<SkillEntry> {
    vec![
        nytimes(),
        washingtonpost(),
        wsj(),
        bbc(),
        rss(),
        phdcomics(),
    ]
}

fn nytimes() -> SkillEntry {
    let class = ClassDef::new("com.nytimes")
        .with_display_name("New York Times")
        .with_domain("news")
        .with_function(mlq(
            "get_front_page",
            "articles on the new york times front page",
            vec![
                out("title", ent("tt:news_title")),
                out("link", thingtalk::Type::Url),
                out("abstract", s()),
                out("section", s()),
                out("updated", date()),
            ],
        ))
        .with_function(mlq(
            "get_section",
            "new york times articles in a section",
            vec![
                req(
                    "section",
                    en(&[
                        "world",
                        "business",
                        "technology",
                        "sports",
                        "science",
                        "arts",
                    ]),
                ),
                out("title", ent("tt:news_title")),
                out("link", thingtalk::Type::Url),
                out("abstract", s()),
            ],
        ));
    let templates = vec![
        np(
            "com.nytimes",
            "get_front_page",
            "articles on the new york times front page",
        ),
        np(
            "com.nytimes",
            "get_front_page",
            "the headlines in the new york times",
        ),
        np(
            "com.nytimes",
            "get_front_page",
            "today's new york times stories",
        ),
        wp(
            "com.nytimes",
            "get_front_page",
            "when the new york times publishes a new article",
        ),
        np(
            "com.nytimes",
            "get_section",
            "new york times $section articles",
        ),
        wp(
            "com.nytimes",
            "get_section",
            "when there is a new $section story in the new york times",
        ),
    ];
    (class, templates)
}

fn washingtonpost() -> SkillEntry {
    let class = ClassDef::new("com.washingtonpost")
        .with_display_name("Washington Post")
        .with_domain("news")
        .with_function(mlq(
            "get_article",
            "washington post articles",
            vec![
                out("headline", ent("tt:news_title")),
                out("link", thingtalk::Type::Url),
                out("blurb", s()),
            ],
        ))
        .with_function(mlq(
            "get_blog_post",
            "washington post blog posts",
            vec![
                out("headline", ent("tt:news_title")),
                out("link", thingtalk::Type::Url),
            ],
        ));
    let templates = vec![
        np(
            "com.washingtonpost",
            "get_article",
            "washington post articles",
        ),
        np(
            "com.washingtonpost",
            "get_article",
            "news from the washington post",
        ),
        wp(
            "com.washingtonpost",
            "get_article",
            "when the washington post publishes an article",
        ),
        np(
            "com.washingtonpost",
            "get_blog_post",
            "washington post blog posts",
        ),
        wp(
            "com.washingtonpost",
            "get_blog_post",
            "when there is a new washington post blog post",
        ),
    ];
    (class, templates)
}

fn wsj() -> SkillEntry {
    let class = ClassDef::new("com.wsj")
        .with_display_name("Wall Street Journal")
        .with_domain("news")
        .with_function(mlq(
            "get_news",
            "wall street journal articles",
            vec![
                req(
                    "section",
                    en(&[
                        "markets",
                        "world_news",
                        "us_business",
                        "technology",
                        "opinion",
                    ]),
                ),
                out("title", ent("tt:news_title")),
                out("link", thingtalk::Type::Url),
                out("published", date()),
            ],
        ));
    let templates = vec![
        np(
            "com.wsj",
            "get_news",
            "wall street journal $section articles",
        ),
        np(
            "com.wsj",
            "get_news",
            "news in the $section section of the wsj",
        ),
        wp(
            "com.wsj",
            "get_news",
            "when the wall street journal publishes a $section article",
        ),
    ];
    (class, templates)
}

fn bbc() -> SkillEntry {
    let class = ClassDef::new("com.bbc")
        .with_display_name("BBC")
        .with_domain("news")
        .with_function(mlq(
            "top_stories",
            "bbc top stories",
            vec![
                out("title", ent("tt:news_title")),
                out("link", thingtalk::Type::Url),
                out("summary", s()),
            ],
        ));
    let templates = vec![
        np("com.bbc", "top_stories", "bbc top stories"),
        np("com.bbc", "top_stories", "the latest news from the bbc"),
        wp("com.bbc", "top_stories", "when the bbc reports a new story"),
    ];
    (class, templates)
}

fn rss() -> SkillEntry {
    let class = ClassDef::new("org.thingpedia.rss")
        .with_display_name("RSS Feed")
        .with_domain("news")
        .with_function(mlq(
            "get_post",
            "posts in an rss feed",
            vec![
                req("url", thingtalk::Type::Url),
                out("title", s()),
                out("link", thingtalk::Type::Url),
                out("updated", date()),
            ],
        ));
    let templates = vec![
        np(
            "org.thingpedia.rss",
            "get_post",
            "posts in the rss feed $url",
        ),
        np(
            "org.thingpedia.rss",
            "get_post",
            "articles from the feed at $url",
        ),
        wp(
            "org.thingpedia.rss",
            "get_post",
            "when the rss feed $url updates",
        ),
    ];
    (class, templates)
}

fn phdcomics() -> SkillEntry {
    let class = ClassDef::new("com.phdcomics")
        .with_display_name("PhD Comics")
        .with_domain("news")
        .with_function(mq(
            "get_post",
            "the latest phd comic",
            vec![
                out("title", s()),
                out("link", thingtalk::Type::Url),
                out("picture_url", thingtalk::Type::Picture),
            ],
        ));
    let templates = vec![
        np("com.phdcomics", "get_post", "the latest phd comic"),
        wp(
            "com.phdcomics",
            "get_post",
            "when a new phd comic is published",
        ),
        vp("com.phdcomics", "get_post", "check phd comics"),
    ];
    (class, templates)
}
