//! Communication skills: Gmail, Slack, phone (SMS and calls), Telegram-style
//! messaging, and a transactional email sender.

use thingtalk::class::ClassDef;
use thingtalk::units::BaseUnit;

use super::dsl::*;
use super::SkillEntry;
use crate::templates::short::{np, vp, wp};

/// The communication skills.
pub fn skills() -> Vec<SkillEntry> {
    vec![gmail(), slack(), phone(), messaging(), sendmail()]
}

fn gmail() -> SkillEntry {
    let class = ClassDef::new("com.gmail")
        .with_display_name("Gmail")
        .with_domain("communication")
        .with_function(mlq(
            "inbox",
            "emails in my inbox",
            vec![
                out("sender", ent("tt:person_name")),
                out("sender_address", thingtalk::Type::EmailAddress),
                out("subject", s()),
                out("snippet", s()),
                out("labels", array(s())),
                out("is_unread", boolean()),
                out("date", date()),
            ],
        ))
        .with_function(mlq(
            "emails_with_attachment",
            "emails with attachments",
            vec![
                out("sender", ent("tt:person_name")),
                out("subject", s()),
                out("attachment_name", thingtalk::Type::PathName),
                out("attachment_size", measure(BaseUnit::Byte)),
            ],
        ))
        .with_function(act(
            "send_email",
            "send an email",
            vec![
                req("to", thingtalk::Type::EmailAddress),
                req("subject", s()),
                req("body", s()),
            ],
        ))
        .with_function(act("reply", "reply to an email", vec![req("body", s())]))
        .with_function(act("add_label", "label an email", vec![req("label", s())]));
    let templates = vec![
        np("com.gmail", "inbox", "emails in my inbox"),
        np("com.gmail", "inbox", "my gmail messages"),
        np("com.gmail", "inbox", "the mail i received"),
        wp("com.gmail", "inbox", "when i receive an email"),
        wp("com.gmail", "inbox", "when a new email arrives in my inbox"),
        np(
            "com.gmail",
            "emails_with_attachment",
            "emails with attachments",
        ),
        wp(
            "com.gmail",
            "emails_with_attachment",
            "when i receive an email with an attachment",
        ),
        vp(
            "com.gmail",
            "send_email",
            "send an email to $to with subject $subject saying $body",
        ),
        vp(
            "com.gmail",
            "send_email",
            "email $to about $subject with body $body",
        ),
        vp("com.gmail", "reply", "reply $body"),
        vp("com.gmail", "add_label", "label it $label"),
    ];
    (class, templates)
}

fn slack() -> SkillEntry {
    let class = ClassDef::new("com.slack")
        .with_display_name("Slack")
        .with_domain("communication")
        .with_function(mlq(
            "channel_history",
            "messages in a slack channel",
            vec![
                req("channel", ent("tt:slack_channel")),
                out("sender", ent("tt:username")),
                out("message", s()),
                out("date", date()),
            ],
        ))
        .with_function(act(
            "send",
            "send a slack message",
            vec![req("channel", ent("tt:slack_channel")), req("message", s())],
        ))
        .with_function(act(
            "set_status",
            "set my slack status",
            vec![req("status", s())],
        ))
        .with_function(act(
            "add_reaction",
            "react to a slack message",
            vec![req("emoji", ent("tt:emoji_reaction"))],
        ));
    let templates = vec![
        np(
            "com.slack",
            "channel_history",
            "messages in the slack channel $channel",
        ),
        np(
            "com.slack",
            "channel_history",
            "the conversation in $channel on slack",
        ),
        wp(
            "com.slack",
            "channel_history",
            "when someone posts in $channel on slack",
        ),
        vp(
            "com.slack",
            "send",
            "send a slack message to $channel saying $message",
        ),
        vp(
            "com.slack",
            "send",
            "post $message in the $channel slack channel",
        ),
        vp(
            "com.slack",
            "send",
            "let the team know $message on slack in $channel",
        ),
        vp("com.slack", "set_status", "set my slack status to $status"),
        vp("com.slack", "add_reaction", "react with $emoji on slack"),
    ];
    (class, templates)
}

fn phone() -> SkillEntry {
    let class = ClassDef::new("org.thingpedia.builtin.thingengine.phone")
        .with_display_name("Phone")
        .with_domain("communication")
        .with_function(mlq(
            "sms",
            "text messages i received",
            vec![
                out("sender", thingtalk::Type::PhoneNumber),
                out("message", s()),
                out("date", date()),
            ],
        ))
        .with_function(mq(
            "get_gps",
            "my current location",
            vec![
                out("location", thingtalk::Type::Location),
                out("altitude", measure(BaseUnit::Meter)),
                out("speed", measure(BaseUnit::MeterPerSecond)),
            ],
        ))
        .with_function(act(
            "send_sms",
            "send a text message",
            vec![req("to", thingtalk::Type::PhoneNumber), req("message", s())],
        ))
        .with_function(act(
            "call",
            "call someone",
            vec![req("number", thingtalk::Type::PhoneNumber)],
        ))
        .with_function(act(
            "set_ringer",
            "set the phone ringer mode",
            vec![req("mode", en(&["normal", "vibrate", "silent"]))],
        ));
    let templates = vec![
        np(
            "org.thingpedia.builtin.thingengine.phone",
            "sms",
            "my text messages",
        ),
        np(
            "org.thingpedia.builtin.thingengine.phone",
            "sms",
            "sms messages i received",
        ),
        wp(
            "org.thingpedia.builtin.thingengine.phone",
            "sms",
            "when i receive a text message",
        ),
        np(
            "org.thingpedia.builtin.thingengine.phone",
            "get_gps",
            "my current location",
        ),
        wp(
            "org.thingpedia.builtin.thingengine.phone",
            "get_gps",
            "when my location changes",
        ),
        vp(
            "org.thingpedia.builtin.thingengine.phone",
            "send_sms",
            "text $to saying $message",
        ),
        vp(
            "org.thingpedia.builtin.thingengine.phone",
            "send_sms",
            "send an sms to $to with $message",
        ),
        vp(
            "org.thingpedia.builtin.thingengine.phone",
            "call",
            "call $number",
        ),
        vp(
            "org.thingpedia.builtin.thingengine.phone",
            "set_ringer",
            "set my ringer to $mode",
        ),
    ];
    (class, templates)
}

fn messaging() -> SkillEntry {
    let class = ClassDef::new("org.thingpedia.builtin.matrix")
        .with_display_name("Matrix")
        .with_domain("communication")
        .with_function(mlq(
            "incoming_messages",
            "messages i received on matrix",
            vec![
                out("sender", ent("tt:username")),
                out("message", s()),
                out("room", s()),
            ],
        ))
        .with_function(act(
            "send_message",
            "send a matrix message",
            vec![req("room", s()), req("message", s())],
        ));
    let templates = vec![
        np(
            "org.thingpedia.builtin.matrix",
            "incoming_messages",
            "my matrix messages",
        ),
        wp(
            "org.thingpedia.builtin.matrix",
            "incoming_messages",
            "when i get a message on matrix",
        ),
        vp(
            "org.thingpedia.builtin.matrix",
            "send_message",
            "send $message to the matrix room $room",
        ),
    ];
    (class, templates)
}

fn sendmail() -> SkillEntry {
    let class = ClassDef::new("com.sendgrid")
        .with_display_name("SendGrid")
        .with_domain("communication")
        .with_function(act(
            "send",
            "send an automated email",
            vec![
                req("to", thingtalk::Type::EmailAddress),
                req("subject", s()),
                req("body", s()),
            ],
        ));
    let templates = vec![
        vp(
            "com.sendgrid",
            "send",
            "send an automated email to $to with subject $subject and body $body",
        ),
        vp(
            "com.sendgrid",
            "send",
            "email me at $to saying $body with subject $subject",
        ),
    ];
    (class, templates)
}
