//! Media and entertainment skills: YouTube, the cat API, Giphy, xkcd,
//! Imgflip memes, a podcast service, and a movie database.

use thingtalk::class::ClassDef;
use thingtalk::units::BaseUnit;

use super::dsl::*;
use super::SkillEntry;
use crate::templates::short::{np, vp, wp};

/// The media skills.
pub fn skills() -> Vec<SkillEntry> {
    vec![
        youtube(),
        thecatapi(),
        giphy(),
        xkcd(),
        imgflip(),
        podcasts(),
        movies(),
    ]
}

fn youtube() -> SkillEntry {
    let class = ClassDef::new("com.youtube")
        .with_display_name("YouTube")
        .with_domain("media")
        .with_function(mlq(
            "search_videos",
            "youtube videos matching a search",
            vec![
                req("query", s()),
                out("video_title", ent("com.youtube:video_title")),
                out("video_url", thingtalk::Type::Url),
                out("channel", ent("com.youtube:channel")),
                out("view_count", num()),
            ],
        ))
        .with_function(mlq(
            "channel_uploads",
            "new videos from a channel",
            vec![
                req("channel", ent("com.youtube:channel")),
                out("video_title", ent("com.youtube:video_title")),
                out("video_url", thingtalk::Type::Url),
                out("duration", measure(BaseUnit::Millisecond)),
            ],
        ))
        .with_function(act(
            "add_to_playlist",
            "add a video to a youtube playlist",
            vec![req("playlist", s()), req("video_url", thingtalk::Type::Url)],
        ));
    let templates = vec![
        np(
            "com.youtube",
            "search_videos",
            "youtube videos about $query",
        ),
        np(
            "com.youtube",
            "search_videos",
            "videos matching $query on youtube",
        ),
        wp(
            "com.youtube",
            "search_videos",
            "when a new video about $query is uploaded",
        ),
        np(
            "com.youtube",
            "channel_uploads",
            "videos from the channel $channel",
        ),
        wp(
            "com.youtube",
            "channel_uploads",
            "when $channel uploads a new video",
        ),
        vp(
            "com.youtube",
            "add_to_playlist",
            "add $video_url to my $playlist playlist on youtube",
        ),
    ];
    (class, templates)
}

fn thecatapi() -> SkillEntry {
    let class = ClassDef::new("com.thecatapi")
        .with_display_name("The Cat API")
        .with_domain("media")
        .with_function(q(
            "get",
            "a cat picture",
            vec![
                out("picture_url", thingtalk::Type::Picture),
                out("link", thingtalk::Type::Url),
            ],
        ));
    let templates = vec![
        np("com.thecatapi", "get", "a cat picture"),
        np("com.thecatapi", "get", "a random picture of a cat"),
        np("com.thecatapi", "get", "a cute cat photo"),
        vp("com.thecatapi", "get", "show me a cat"),
    ];
    (class, templates)
}

fn giphy() -> SkillEntry {
    let class = ClassDef::new("com.giphy")
        .with_display_name("Giphy")
        .with_domain("media")
        .with_function(q(
            "get",
            "an animated gif",
            vec![
                opt("tag", s()),
                out("picture_url", thingtalk::Type::Picture),
            ],
        ));
    let templates = vec![
        np("com.giphy", "get", "a gif"),
        np("com.giphy", "get", "an animated gif of $tag"),
        np("com.giphy", "get", "a random $tag gif"),
    ];
    (class, templates)
}

fn xkcd() -> SkillEntry {
    let class = ClassDef::new("com.xkcd")
        .with_display_name("XKCD")
        .with_domain("media")
        .with_function(mq(
            "get_comic",
            "the latest xkcd comic",
            vec![
                out("title", s()),
                out("picture_url", thingtalk::Type::Picture),
                out("link", thingtalk::Type::Url),
                out("alt_text", s()),
            ],
        ))
        .with_function(q(
            "random_comic",
            "a random xkcd comic",
            vec![
                out("title", s()),
                out("picture_url", thingtalk::Type::Picture),
                out("number", num()),
            ],
        ));
    let templates = vec![
        np("com.xkcd", "get_comic", "the latest xkcd comic"),
        np("com.xkcd", "get_comic", "today's xkcd"),
        wp(
            "com.xkcd",
            "get_comic",
            "when a new xkcd comic is published",
        ),
        np("com.xkcd", "random_comic", "a random xkcd comic"),
    ];
    (class, templates)
}

fn imgflip() -> SkillEntry {
    let class = ClassDef::new("com.imgflip")
        .with_display_name("Imgflip")
        .with_domain("media")
        .with_function(lq(
            "list_templates",
            "popular meme templates",
            vec![
                out("name", s()),
                out("picture_url", thingtalk::Type::Picture),
            ],
        ))
        .with_function(q(
            "generate",
            "a generated meme",
            vec![
                req("template", s()),
                req("top_text", ent("tt:meme_text")),
                req("bottom_text", ent("tt:meme_text")),
                out("picture_url", thingtalk::Type::Picture),
            ],
        ));
    let templates = vec![
        np("com.imgflip", "list_templates", "popular meme templates"),
        np(
            "com.imgflip",
            "generate",
            "a $template meme saying $top_text and $bottom_text",
        ),
        vp(
            "com.imgflip",
            "generate",
            "make a meme from $template with top text $top_text and bottom text $bottom_text",
        ),
    ];
    (class, templates)
}

fn podcasts() -> SkillEntry {
    let class = ClassDef::new("com.listenlater")
        .with_display_name("Podcasts")
        .with_domain("media")
        .with_function(mlq(
            "new_episodes",
            "new podcast episodes",
            vec![
                opt("podcast", ent("tt:podcast_name")),
                out("episode_title", s()),
                out("podcast_name", ent("tt:podcast_name")),
                out("duration", measure(BaseUnit::Millisecond)),
                out("link", thingtalk::Type::Url),
            ],
        ))
        .with_function(act(
            "add_to_queue",
            "add an episode to my listening queue",
            vec![req("link", thingtalk::Type::Url)],
        ));
    let templates = vec![
        np("com.listenlater", "new_episodes", "new podcast episodes"),
        np(
            "com.listenlater",
            "new_episodes",
            "new episodes of $podcast",
        ),
        wp(
            "com.listenlater",
            "new_episodes",
            "when a new episode of $podcast comes out",
        ),
        vp(
            "com.listenlater",
            "add_to_queue",
            "add $link to my listening queue",
        ),
    ];
    (class, templates)
}

fn movies() -> SkillEntry {
    let class = ClassDef::new("com.themoviedb")
        .with_display_name("The Movie DB")
        .with_domain("media")
        .with_function(mlq(
            "now_playing",
            "movies playing in theaters",
            vec![
                out("title", ent("tt:movie_title")),
                out("rating", num()),
                out("release_date", date()),
                out("overview", s()),
            ],
        ))
        .with_function(lq(
            "search_movie",
            "information about a movie",
            vec![
                req("title", ent("tt:movie_title")),
                out("rating", num()),
                out("release_date", date()),
                out("overview", s()),
            ],
        ));
    let templates = vec![
        np(
            "com.themoviedb",
            "now_playing",
            "movies playing in theaters",
        ),
        np(
            "com.themoviedb",
            "now_playing",
            "what is showing at the movies",
        ),
        wp(
            "com.themoviedb",
            "now_playing",
            "when a new movie comes out in theaters",
        ),
        np(
            "com.themoviedb",
            "search_movie",
            "information about the movie $title",
        ),
        np("com.themoviedb", "search_movie", "the rating of $title"),
    ];
    (class, templates)
}
