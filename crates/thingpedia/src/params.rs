//! Parameter-value datasets (§3.3 of the paper).
//!
//! Genie ships a database of 49 parameter lists and gazettes of named
//! entities — YouTube video titles, Twitter hashtags, song titles, people
//! names, country names, currencies, and corpora of free-form English text —
//! used to expand the synthesized and paraphrase datasets so the model does
//! not overfit on specific values.
//!
//! The paper's corpora were scraped from the web; here they are generated
//! from embedded word lists and combinatorial generators, which preserves the
//! property the pipeline needs (many distinct, plausible, typed values) while
//! keeping the repository self-contained. See DESIGN.md for the substitution
//! rationale.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use thingtalk::types::Type;

const FIRST_NAMES: &[&str] = &[
    "alice", "bob", "carol", "david", "emma", "frank", "grace", "henry", "isabel", "jack", "karen",
    "liam", "maria", "nathan", "olivia", "peter", "quinn", "rachel", "samuel", "tina", "umar",
    "victor", "wendy", "xavier", "yasmin", "zach", "noah", "mia", "lucas", "sofia", "ethan", "ava",
    "mason", "amelia", "logan", "harper", "elijah", "ella", "james", "scarlett",
];

const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
];

const ADJECTIVES: &[&str] = &[
    "funny",
    "amazing",
    "broken",
    "quiet",
    "loud",
    "bright",
    "dark",
    "tiny",
    "huge",
    "quick",
    "lazy",
    "happy",
    "sad",
    "angry",
    "calm",
    "wild",
    "gentle",
    "brave",
    "shy",
    "clever",
    "ancient",
    "modern",
    "crispy",
    "smooth",
    "rough",
    "golden",
    "silver",
    "crimson",
    "azure",
    "emerald",
    "hidden",
    "secret",
    "famous",
    "forgotten",
    "electric",
    "frozen",
    "burning",
    "silent",
    "endless",
    "lucky",
];

const NOUNS: &[&str] = &[
    "cat",
    "dog",
    "river",
    "mountain",
    "city",
    "garden",
    "robot",
    "dream",
    "song",
    "story",
    "journey",
    "shadow",
    "light",
    "storm",
    "ocean",
    "forest",
    "castle",
    "bridge",
    "train",
    "rocket",
    "planet",
    "island",
    "desert",
    "winter",
    "summer",
    "morning",
    "midnight",
    "coffee",
    "breakfast",
    "library",
    "museum",
    "market",
    "festival",
    "harbor",
    "village",
    "engine",
    "mirror",
    "harvest",
    "lantern",
    "compass",
];

const VERBS: &[&str] = &[
    "remember", "forget", "find", "lose", "build", "break", "open", "close", "start", "finish",
    "love", "hate", "watch", "read", "write", "sing", "dance", "run", "walk", "fly",
];

const CITIES: &[&str] = &[
    "san francisco",
    "palo alto",
    "new york",
    "london",
    "paris",
    "tokyo",
    "beijing",
    "sydney",
    "berlin",
    "madrid",
    "rome",
    "seattle",
    "austin",
    "boston",
    "chicago",
    "toronto",
    "vancouver",
    "mexico city",
    "sao paulo",
    "mumbai",
    "delhi",
    "singapore",
    "seoul",
    "dubai",
    "amsterdam",
    "stockholm",
    "oslo",
    "helsinki",
    "zurich",
    "vienna",
    "prague",
    "lisbon",
    "dublin",
    "edinburgh",
    "cairo",
    "nairobi",
    "lagos",
    "buenos aires",
    "santiago",
    "lima",
];

const COUNTRIES: &[&str] = &[
    "united states",
    "canada",
    "mexico",
    "brazil",
    "argentina",
    "united kingdom",
    "france",
    "germany",
    "italy",
    "spain",
    "portugal",
    "netherlands",
    "belgium",
    "sweden",
    "norway",
    "finland",
    "denmark",
    "switzerland",
    "austria",
    "poland",
    "czech republic",
    "greece",
    "turkey",
    "egypt",
    "kenya",
    "nigeria",
    "south africa",
    "india",
    "china",
    "japan",
    "south korea",
    "vietnam",
    "thailand",
    "indonesia",
    "australia",
    "new zealand",
    "russia",
    "ukraine",
    "ireland",
    "iceland",
    "chile",
    "peru",
    "colombia",
    "morocco",
    "israel",
];

const CURRENCY_CODES: &[&str] = &[
    "USD", "EUR", "GBP", "JPY", "CAD", "AUD", "CHF", "CNY", "INR", "BRL", "MXN", "KRW", "SEK",
    "NOK", "DKK", "SGD", "HKD", "NZD", "ZAR", "TRY",
];

const TOPICS: &[&str] = &[
    "rust",
    "climate",
    "election",
    "football",
    "basketball",
    "music",
    "movies",
    "cooking",
    "travel",
    "photography",
    "science",
    "space",
    "ai",
    "privacy",
    "security",
    "startups",
    "fashion",
    "gaming",
    "books",
    "health",
    "fitness",
    "economy",
    "art",
    "history",
    "weather",
    "gardening",
    "coffee",
    "wine",
    "cycling",
    "hiking",
];

const EMAIL_DOMAINS: &[&str] = &[
    "gmail.com",
    "yahoo.com",
    "outlook.com",
    "example.com",
    "stanford.edu",
    "mit.edu",
    "company.org",
    "startup.io",
];

const FILE_EXTENSIONS: &[&str] = &[
    "pdf", "txt", "docx", "xlsx", "pptx", "jpg", "png", "md", "csv", "zip",
];

const GENRES: &[&str] = &[
    "pop",
    "rock",
    "jazz",
    "classical",
    "hip hop",
    "country",
    "electronic",
    "folk",
    "blues",
    "reggae",
    "metal",
    "indie",
    "soul",
    "punk",
    "disco",
];

/// A named list of parameter values of one kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDataset {
    /// The dataset key, e.g. `tt:person_name`, `com.spotify:song`.
    pub name: String,
    /// The distinct values.
    pub values: Vec<String>,
}

impl ParamDataset {
    fn new(name: &str, values: Vec<String>) -> Self {
        ParamDataset {
            name: name.to_owned(),
            values,
        }
    }

    /// Sample one value uniformly at random.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        self.values
            .choose(rng)
            .map(String::as_str)
            .unwrap_or("placeholder")
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The registry of parameter-value datasets.
#[derive(Debug, Clone, Default)]
pub struct ParamDatasets {
    datasets: BTreeMap<String, ParamDataset>,
}

impl ParamDatasets {
    /// Build the builtin registry of 49 datasets.
    pub fn builtin() -> Self {
        let mut registry = ParamDatasets::default();
        for dataset in build_all() {
            registry.datasets.insert(dataset.name.clone(), dataset);
        }
        registry
    }

    /// Look up a dataset by exact key.
    pub fn get(&self, name: &str) -> Option<&ParamDataset> {
        self.datasets.get(name)
    }

    /// Number of datasets.
    pub fn dataset_count(&self) -> usize {
        self.datasets.len()
    }

    /// Total number of distinct values across all datasets.
    pub fn total_values(&self) -> usize {
        self.datasets.values().map(|d| d.len()).sum()
    }

    /// Iterate over all datasets.
    pub fn datasets(&self) -> impl Iterator<Item = &ParamDataset> {
        self.datasets.values()
    }

    /// Choose the dataset appropriate for a parameter, based on its type and
    /// its name. Entity types map to their own gazette when one exists;
    /// string parameters are routed by name heuristics (titles, messages,
    /// queries, captions, …) and fall back to the free-form text corpus.
    ///
    /// # Errors
    ///
    /// Returns [`thingtalk::Error::MissingResource`] when neither the routed
    /// dataset nor the `tt:free_form_text` fallback exists in the registry —
    /// possible only for hand-assembled registries, never for
    /// [`ParamDatasets::builtin`]. (Historically this path panicked; serving
    /// converts it into a request error instead.)
    pub fn for_param(&self, ty: &Type, param_name: &str) -> thingtalk::Result<&ParamDataset> {
        let key = match ty {
            Type::Entity(kind) => {
                if self.datasets.contains_key(kind.as_str()) {
                    kind.clone()
                } else if kind.ends_with(":person") || kind == "tt:contact_name" {
                    "tt:person_name".to_owned()
                } else {
                    "tt:generic_entity".to_owned()
                }
            }
            Type::PathName => "tt:path_name".to_owned(),
            Type::Url => "tt:url".to_owned(),
            Type::Picture => "tt:picture_url".to_owned(),
            Type::EmailAddress => "tt:email_address".to_owned(),
            Type::PhoneNumber => "tt:phone_number".to_owned(),
            Type::Location => "tt:location".to_owned(),
            Type::String => {
                let name = param_name.to_lowercase();
                if name.contains("query") || name.contains("search") || name.contains("keyword") {
                    "tt:search_query".to_owned()
                } else if name.contains("message")
                    || name.contains("body")
                    || name.contains("text")
                    || name.contains("status")
                {
                    "tt:message_text".to_owned()
                } else if name.contains("caption") {
                    "tt:caption".to_owned()
                } else if name.contains("title") || name.contains("subject") {
                    "tt:short_title".to_owned()
                } else if name.contains("channel") {
                    "com.youtube:channel".to_owned()
                } else if name.contains("playlist") {
                    "com.spotify:playlist".to_owned()
                } else if name.contains("song") || name.contains("track") {
                    "com.spotify:song".to_owned()
                } else if name.contains("artist") {
                    "com.spotify:artist".to_owned()
                } else if name.contains("album") {
                    "com.spotify:album".to_owned()
                } else if name.contains("author")
                    || name.contains("name") && name.contains("person")
                {
                    "tt:person_name".to_owned()
                } else if name.contains("city")
                    || name.contains("location")
                    || name.contains("place")
                {
                    "tt:city_name".to_owned()
                } else if name.contains("country") {
                    "tt:country_name".to_owned()
                } else if name.contains("hashtag") || name.contains("tag") {
                    "tt:hashtag".to_owned()
                } else if name.contains("folder") || name.contains("file") || name.contains("path")
                {
                    "tt:path_name".to_owned()
                } else if name.contains("genre") {
                    "tt:music_genre".to_owned()
                } else {
                    "tt:free_form_text".to_owned()
                }
            }
            _ => "tt:free_form_text".to_owned(),
        };
        self.datasets
            .get(&key)
            .or_else(|| self.datasets.get("tt:free_form_text"))
            .ok_or_else(|| {
                thingtalk::Error::missing_resource(format!(
                    "parameter dataset `{key}` (and the `tt:free_form_text` fallback)"
                ))
            })
    }

    /// Sample one value for a parameter, falling back to a fixed placeholder
    /// when no dataset covers it. The infallible convenience over
    /// [`ParamDatasets::for_param`] used by the simulated runtime and the
    /// phrase instantiator, whose value generation cannot fail.
    pub fn sample_for_param<R: Rng + ?Sized>(
        &self,
        ty: &Type,
        param_name: &str,
        rng: &mut R,
    ) -> String {
        match self.for_param(ty, param_name) {
            Ok(dataset) => dataset.sample(rng).to_owned(),
            Err(_) => "placeholder".to_owned(),
        }
    }
}

fn cross2(prefix: &[&str], suffix: &[&str], join: &str, cap: usize) -> Vec<String> {
    let mut out = Vec::new();
    for a in prefix {
        for b in suffix {
            out.push(format!("{a}{join}{b}"));
            if out.len() >= cap {
                return out;
            }
        }
    }
    out
}

fn cross3(a: &[&str], b: &[&str], c: &[&str], join: &str, cap: usize) -> Vec<String> {
    let mut out = Vec::new();
    for x in a {
        for y in b {
            for z in c {
                out.push(format!("{x}{join}{y}{join}{z}"));
                if out.len() >= cap {
                    return out;
                }
            }
        }
    }
    out
}

fn numbered(prefix: &str, count: usize) -> Vec<String> {
    (1..=count).map(|i| format!("{prefix} {i}")).collect()
}

fn build_all() -> Vec<ParamDataset> {
    let person_names = cross2(FIRST_NAMES, LAST_NAMES, " ", 1600);
    let usernames: Vec<String> = cross2(FIRST_NAMES, LAST_NAMES, "_", 1600)
        .into_iter()
        .map(|s| format!("@{s}"))
        .collect();
    let song_titles = cross3(VERBS, &["the", "my", "your", "that"], NOUNS, " ", 3200);
    let free_text = cross3(
        &[
            "i want to",
            "please",
            "remember to",
            "do not forget to",
            "let us",
        ],
        VERBS,
        &[
            "the report",
            "my homework",
            "dinner tonight",
            "the meeting notes",
            "a new plan",
            "the groceries",
            "that email",
            "the tickets",
            "our trip",
            "the budget",
        ],
        " ",
        1000,
    );
    let messages = cross3(
        &["hey", "hello", "hi there", "good morning", "quick reminder"],
        &[
            "the meeting is",
            "lunch is",
            "the deadline is",
            "the party is",
            "standup is",
        ],
        &[
            "at noon",
            "tomorrow",
            "on friday",
            "moved to 3pm",
            "cancelled",
            "in room 201",
        ],
        " ",
        1000,
    );
    let captions = cross2(ADJECTIVES, NOUNS, " ", 1600);
    let news_titles = cross3(
        ADJECTIVES,
        NOUNS,
        &[
            "shakes markets",
            "wins election",
            "breaks record",
            "surprises scientists",
            "returns home",
            "goes viral",
            "faces criticism",
            "announces merger",
        ],
        " ",
        2400,
    );
    let video_titles = cross3(
        &["how to", "top 10", "the best", "why i", "unboxing the"],
        ADJECTIVES,
        NOUNS,
        " ",
        2400,
    );
    let hashtags: Vec<String> = TOPICS
        .iter()
        .flat_map(|t| {
            vec![
                format!("#{t}"),
                format!("#{t}life"),
                format!("#{t}daily"),
                format!("#love{t}"),
            ]
        })
        .collect();
    let emails: Vec<String> = FIRST_NAMES
        .iter()
        .flat_map(|f| EMAIL_DOMAINS.iter().map(move |d| format!("{f}@{d}")))
        .collect();
    let phone_numbers: Vec<String> = (0..500)
        .map(|i| format!("+1 650 555 {:04}", (i * 37) % 10_000))
        .collect();
    let path_names: Vec<String> = NOUNS
        .iter()
        .flat_map(|n| {
            FILE_EXTENSIONS
                .iter()
                .map(move |e| format!("{n}_notes.{e}"))
        })
        .chain(NOUNS.iter().map(|n| format!("{n}/")))
        .collect();
    let urls: Vec<String> = TOPICS
        .iter()
        .flat_map(|t| {
            vec![
                format!("https://example.com/{t}"),
                format!("https://blog.example.org/{t}/latest"),
            ]
        })
        .collect();
    let picture_urls: Vec<String> = (0..400)
        .map(|i| format!("https://images.example.com/photo_{i}.jpg"))
        .collect();
    let playlists = cross2(
        ADJECTIVES,
        &[
            "vibes",
            "mix",
            "hits",
            "classics",
            "mood",
            "party",
            "workout",
            "study",
            "focus",
            "road trip",
        ],
        " ",
        400,
    );
    let artists = cross2(
        &["the", "dj", "little", "big", "saint"],
        &[
            "foxes", "rivers", "echoes", "pioneers", "wolves", "sparrows", "giants", "comets",
            "monarchs", "tides", "embers", "harbors",
        ],
        " ",
        200,
    );
    let albums = cross2(
        ADJECTIVES,
        &["nights", "days", "dreams", "roads", "letters", "echoes"],
        " ",
        240,
    );
    let channels = cross2(
        &["daily", "weekly", "the", "planet", "studio"],
        &[
            "tech", "cooking", "science", "music", "news", "travel", "history", "sports",
        ],
        " ",
        200,
    );
    let subreddits: Vec<String> = TOPICS.iter().map(|t| format!("r/{t}")).collect();
    let stock_symbols: Vec<String> = [
        "AAPL", "GOOG", "MSFT", "AMZN", "TSLA", "NVDA", "META", "NFLX", "INTC", "AMD", "ORCL",
        "IBM", "UBER", "LYFT", "SHOP", "SQ", "CRM", "ADBE", "PYPL", "DIS",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let device_names = cross2(
        &[
            "living room",
            "bedroom",
            "kitchen",
            "office",
            "garage",
            "hallway",
        ],
        &["light", "lamp", "speaker", "thermostat", "camera", "plug"],
        " ",
        100,
    );
    let calendar_events = cross2(
        &["team", "project", "weekly", "quarterly", "client"],
        &[
            "standup",
            "review",
            "sync",
            "planning",
            "retrospective",
            "dinner",
            "call",
        ],
        " ",
        100,
    );
    let recipes = cross2(
        ADJECTIVES,
        &[
            "pasta", "curry", "salad", "soup", "tacos", "pancakes", "stew",
        ],
        " ",
        280,
    );

    vec![
        ParamDataset::new("tt:person_name", person_names),
        ParamDataset::new(
            "tt:person_first_name",
            FIRST_NAMES.iter().map(|s| s.to_string()).collect(),
        ),
        ParamDataset::new("tt:username", usernames),
        ParamDataset::new(
            "tt:contact_name",
            FIRST_NAMES.iter().map(|s| s.to_string()).collect(),
        ),
        ParamDataset::new("tt:email_address", emails),
        ParamDataset::new("tt:phone_number", phone_numbers),
        ParamDataset::new("tt:hashtag", hashtags),
        ParamDataset::new("tt:search_query", cross2(ADJECTIVES, NOUNS, " ", 2000)),
        ParamDataset::new("tt:message_text", messages),
        ParamDataset::new("tt:caption", captions),
        ParamDataset::new("tt:short_title", cross2(ADJECTIVES, NOUNS, " ", 1200)),
        ParamDataset::new("tt:free_form_text", free_text),
        ParamDataset::new(
            "tt:long_free_text",
            cross3(
                &["note to self:", "draft:", "idea:", "todo:"],
                VERBS,
                &[
                    "the quarterly report before friday",
                    "a surprise party for the team",
                    "the garden fence this weekend",
                    "the slides for monday",
                ],
                " ",
                320,
            ),
        ),
        ParamDataset::new("tt:path_name", path_names),
        ParamDataset::new(
            "tt:folder_name",
            NOUNS.iter().map(|n| format!("{n} documents")).collect(),
        ),
        ParamDataset::new("tt:url", urls),
        ParamDataset::new("tt:picture_url", picture_urls),
        ParamDataset::new(
            "tt:city_name",
            CITIES.iter().map(|s| s.to_string()).collect(),
        ),
        ParamDataset::new(
            "tt:country_name",
            COUNTRIES.iter().map(|s| s.to_string()).collect(),
        ),
        ParamDataset::new(
            "tt:location",
            CITIES.iter().map(|s| s.to_string()).collect(),
        ),
        ParamDataset::new(
            "tt:currency_code",
            CURRENCY_CODES.iter().map(|s| s.to_string()).collect(),
        ),
        ParamDataset::new(
            "tt:language",
            vec![
                "english",
                "spanish",
                "french",
                "german",
                "italian",
                "chinese",
                "japanese",
                "korean",
                "portuguese",
                "russian",
                "arabic",
                "hindi",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        ParamDataset::new(
            "tt:music_genre",
            GENRES.iter().map(|s| s.to_string()).collect(),
        ),
        ParamDataset::new("tt:generic_entity", numbered("item", 500)),
        ParamDataset::new("com.spotify:song", song_titles),
        ParamDataset::new("com.spotify:artist", artists),
        ParamDataset::new("com.spotify:album", albums),
        ParamDataset::new("com.spotify:playlist", playlists),
        ParamDataset::new("com.youtube:video_title", video_titles),
        ParamDataset::new("com.youtube:channel", channels),
        ParamDataset::new(
            "com.twitter:tweet_text",
            cross3(
                &[
                    "just",
                    "finally",
                    "cannot believe",
                    "so excited that",
                    "thrilled that",
                ],
                VERBS,
                &[
                    "the marathon",
                    "my first paper",
                    "the new release",
                    "this view",
                    "the garden",
                ],
                " ",
                1000,
            ),
        ),
        ParamDataset::new(
            "com.instagram:caption",
            cross2(
                ADJECTIVES,
                &["sunset", "brunch", "hike", "skyline", "latte", "beach day"],
                " ",
                240,
            ),
        ),
        ParamDataset::new("com.reddit:subreddit", subreddits),
        ParamDataset::new(
            "com.github:repo_name",
            cross2(
                NOUNS,
                &["rs", "js", "toolkit", "engine", "cli", "lab"],
                "-",
                240,
            ),
        ),
        ParamDataset::new(
            "com.github:issue_title",
            cross3(
                &["fix", "add", "remove", "improve"],
                ADJECTIVES,
                NOUNS,
                " ",
                1600,
            ),
        ),
        ParamDataset::new("com.yahoo.finance:stock", stock_symbols),
        ParamDataset::new("tt:device_name", device_names),
        ParamDataset::new("tt:calendar_event", calendar_events),
        ParamDataset::new("tt:recipe_name", recipes),
        ParamDataset::new("tt:news_title", news_titles),
        ParamDataset::new(
            "tt:book_title",
            cross2(&["the", "a", "beyond the", "under the"], NOUNS, " ", 160),
        ),
        ParamDataset::new(
            "tt:movie_title",
            cross2(
                &["the last", "return of the", "rise of the", "night of the"],
                NOUNS,
                " ",
                160,
            ),
        ),
        ParamDataset::new(
            "tt:podcast_name",
            cross2(&["talking", "hidden", "daily", "radio"], NOUNS, " ", 160),
        ),
        ParamDataset::new(
            "tt:tv_show",
            cross2(
                &["planet", "house of", "tales of", "masters of"],
                NOUNS,
                " ",
                160,
            ),
        ),
        ParamDataset::new(
            "tt:meme_text",
            cross2(
                &[
                    "one does not simply",
                    "shut up and take my",
                    "y u no",
                    "such",
                ],
                NOUNS,
                " ",
                160,
            ),
        ),
        ParamDataset::new(
            "tt:emoji_reaction",
            vec![
                "thumbsup", "heart", "laughing", "tada", "fire", "eyes", "clap", "rocket",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        ParamDataset::new(
            "tt:slack_channel",
            TOPICS.iter().map(|t| format!("#{t}")).collect(),
        ),
        ParamDataset::new(
            "tt:alarm_label",
            cross2(
                &["wake up", "gym", "meeting", "medication", "pick up kids"],
                &["reminder", "alarm", "alert"],
                " ",
                15,
            ),
        ),
        ParamDataset::new(
            "tt:note_title",
            cross2(
                &["shopping", "reading", "packing", "wish", "todo"],
                &["list", "notes", "ideas"],
                " ",
                15,
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_49_datasets() {
        let registry = ParamDatasets::builtin();
        assert_eq!(registry.dataset_count(), 49);
    }

    #[test]
    fn datasets_are_nonempty_and_distinct_valued() {
        let registry = ParamDatasets::builtin();
        for dataset in registry.datasets() {
            assert!(!dataset.is_empty(), "dataset {} is empty", dataset.name);
            let mut values = dataset.values.clone();
            values.sort();
            values.dedup();
            assert_eq!(
                values.len(),
                dataset.values.len(),
                "dataset {} has duplicate values",
                dataset.name
            );
        }
        assert!(
            registry.total_values() > 20_000,
            "expected a large value pool, found {}",
            registry.total_values()
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let registry = ParamDatasets::builtin();
        let dataset = registry.get("tt:person_name").unwrap();
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            assert_eq!(dataset.sample(&mut rng1), dataset.sample(&mut rng2));
        }
    }

    #[test]
    fn routing_by_type_and_name() {
        let registry = ParamDatasets::builtin();
        assert_eq!(
            registry
                .for_param(&Type::Entity("com.spotify:song".into()), "song")
                .unwrap()
                .name,
            "com.spotify:song"
        );
        assert_eq!(
            registry
                .for_param(&Type::String, "search_query")
                .unwrap()
                .name,
            "tt:search_query"
        );
        assert_eq!(
            registry.for_param(&Type::String, "caption").unwrap().name,
            "tt:caption"
        );
        assert_eq!(
            registry
                .for_param(&Type::PathName, "folder_name")
                .unwrap()
                .name,
            "tt:path_name"
        );
        assert_eq!(
            registry.for_param(&Type::EmailAddress, "to").unwrap().name,
            "tt:email_address"
        );
        assert_eq!(
            registry
                .for_param(&Type::String, "mystery_blob")
                .unwrap()
                .name,
            "tt:free_form_text"
        );
        assert_eq!(
            registry
                .for_param(&Type::Entity("com.unknown:thing".into()), "thing")
                .unwrap()
                .name,
            "tt:generic_entity"
        );
    }
}
