//! # Thingpedia — the skill library substrate
//!
//! The Genie paper evaluates on the Thingpedia skill library: 44 skills, 131
//! functions and 178 distinct parameters, each declared with the class
//! grammar of Fig. 3 and accompanied by primitive templates (Table 1) and
//! large parameter-value corpora (§3.3).
//!
//! This crate is a from-scratch reimplementation of that substrate:
//!
//! * [`builtin`] — 45+ skill classes across the same domains the paper draws
//!   on (social networks, cloud storage, news, IoT devices, media, …), each
//!   with primitive templates in the three grammar categories (noun phrase,
//!   verb phrase, when phrase);
//! * [`library`] — the [`Thingpedia`] registry implementing
//!   [`thingtalk::SchemaRegistry`];
//! * [`params`] — 49 parameter-value datasets (person names, song titles,
//!   hashtags, country names, free-form text, …) generated from embedded
//!   word lists and combinatorial generators;
//! * [`simulate`] — a [`thingtalk::runtime::DeviceDelegate`] that produces
//!   deterministic, seeded results for every builtin function so programs
//!   can actually execute.
//!
//! # Example
//!
//! ```
//! use thingpedia::Thingpedia;
//! use thingtalk::SchemaRegistry;
//!
//! let library = Thingpedia::builtin();
//! assert!(library.class("com.dropbox").is_some());
//! assert!(library.function_count() >= 130);
//! ```

pub mod builtin;
pub mod library;
pub mod params;
pub mod simulate;
pub mod templates;

pub use library::Thingpedia;
pub use params::{ParamDataset, ParamDatasets};
pub use simulate::SimulatedDevices;
pub use templates::{PhraseCategory, PrimitiveTemplate};
