//! Dependency-free data-parallel driver for the synthesis engine.
//!
//! The container this repository builds in has no access to crates.io, so
//! this crate is a small stand-in for the `rayon` idioms the synthesis
//! pipeline needs: an order-preserving parallel map over a slice, scheduled
//! dynamically over `std::thread::scope` workers.
//!
//! Determinism is the contract: [`par_map`] returns results **in input
//! order**, and callers derive any randomness from the item index (per-rule
//! RNG streams, `seed ⊕ rule_id`), so output is byte-identical regardless of
//! the worker count — including the sequential `threads = 1` path, which runs
//! inline without spawning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolve a configured thread count: `0` means "use all available cores".
pub fn resolve_threads(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` workers, returning results in
/// input order.
///
/// `f` receives the item index alongside the item so callers can derive
/// per-item deterministic state (e.g. RNG seeds). Items are claimed from a
/// shared atomic cursor, so long and short tasks balance dynamically; the
/// index-addressed result slots make the output order independent of the
/// scheduling order. With `threads <= 1` (or fewer than two items) the map
/// runs inline on the calling thread.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let sender = sender.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    return;
                };
                // The receiver outlives the scope; a send cannot fail unless
                // the main thread already panicked, in which case unwinding
                // here is fine.
                let _ = sender.send((index, f(index, item)));
            });
        }
    });
    drop(sender);

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (index, result) in receiver {
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("worker produced every claimed slot"))
        .collect()
}

/// Map `f` over `items` and concatenate the per-item result vectors in input
/// order — the common shape for "each rule yields a batch of examples".
pub fn par_flat_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Vec<R> + Sync,
{
    par_map(threads, items, f).into_iter().flatten().collect()
}

/// Stream `f` over `items` in bounded windows, handing each result to `sink`
/// in input order.
///
/// This is the memory-bounded driver of the sharded pipeline: at most
/// `window` results are ever in flight, so a caller can process an
/// arbitrarily long work list (synthesis batches, shard writes) without
/// materializing the full output `Vec` that [`par_map`] would build. The
/// window size only bounds memory — it never changes *what* the sink
/// observes or in which order, so output stays byte-identical across thread
/// counts and window sizes.
///
/// `sink` runs on the calling thread, between windows; it receives the item
/// index alongside the result. Windows therefore alternate a parallel
/// compute phase with a serial sink phase — workers are idle while the sink
/// drains. This is deliberate: it keeps ordering and memory bounds trivial,
/// and a heavy sink can (and in the fused pipeline does) parallelize
/// internally with its own [`par_map`], so neither phase is serial in
/// practice. Overlapping the phases would need cross-window reordering with
/// straggler-bounded buffering — not worth the complexity until profiles
/// show the alternation dominating.
pub fn par_stream<T, R, F, S>(threads: usize, items: &[T], window: usize, f: F, mut sink: S)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    let window = window.max(1);
    let mut start = 0;
    while start < items.len() {
        let end = (start + window).min(items.len());
        let results = par_map(threads, &items[start..end], |i, item| f(start + i, item));
        for (offset, result) in results.into_iter().enumerate() {
            sink(start + offset, result);
        }
        start = end;
    }
}

/// The odd multiplier shared by every seed-mixing helper in the workspace
/// (the 64-bit golden-ratio constant of SplitMix64).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derive the RNG seed of one batch of one logical stream:
/// `seed ⊕ stream_id ⊕ mix(batch)`.
///
/// `mix` is an odd-constant multiply, so distinct batch indices map to
/// distinct seeds and batch 0 reduces to the plain per-stream seed
/// `seed ⊕ stream_id`. Consumers seed their RNG through a SplitMix64
/// expansion ([`rand`'s `seed_from_u64`]), which decorrelates the nearby
/// seeds this produces.
pub fn stream_seed(seed: u64, stream_id: u64, batch: u64) -> u64 {
    seed ^ stream_id ^ batch.wrapping_mul(SEED_MIX)
}

/// Derive the RNG seed of one item of an indexed sequence: `seed ⊕
/// mix(index + 1)`.
///
/// This is the per-example counterpart of [`stream_seed`] — the two share
/// the same odd-constant mix — used wherever a pipeline stage needs an
/// independent deterministic RNG stream per item regardless of which worker
/// processes it or in which order (parameter expansion, paraphrase
/// simulation, parser-example conversion). The `+ 1` keeps index 0 from
/// collapsing to the bare `seed`, which is already the identity of the
/// whole sequence.
pub fn item_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64).wrapping_add(1).wrapping_mul(SEED_MIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = par_map(4, &items, |_, &x| x * 2);
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let work = |i: usize, &x: &u64| -> u64 {
            // A little index-dependent mixing to catch order bugs.
            x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64)
        };
        let sequential = par_map(1, &items, work);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map(threads, &items, work), sequential);
        }
    }

    #[test]
    fn flat_map_concatenates_in_order() {
        let items: Vec<usize> = (0..50).collect();
        let flat = par_flat_map(4, &items, |_, &x| vec![x; x % 3]);
        let expected: Vec<usize> = (0..50).flat_map(|x| vec![x; x % 3]).collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[41u8], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn par_stream_preserves_order_for_any_window() {
        let items: Vec<u64> = (0..307).collect();
        let expected: Vec<(usize, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (i, x.wrapping_mul(3) ^ i as u64))
            .collect();
        for (threads, window) in [(1, 1), (1, 64), (4, 1), (4, 7), (8, 1000), (3, 0)] {
            let mut got = Vec::new();
            par_stream(
                threads,
                &items,
                window,
                |i, &x| x.wrapping_mul(3) ^ i as u64,
                |i, r| got.push((i, r)),
            );
            assert_eq!(got, expected, "threads={threads} window={window}");
        }
    }

    #[test]
    fn stream_seeds_are_distinct_across_the_rule_batch_grid() {
        let mut seen = std::collections::HashSet::new();
        let rule_ids = [0x1111u64, 0xABCD_EF01_2345_6789, 0x9_9999];
        for &rule in &rule_ids {
            for batch in 0..64u64 {
                assert!(
                    seen.insert(stream_seed(7, rule, batch)),
                    "seed collision at rule {rule:#x} batch {batch}"
                );
            }
        }
        // Batch 0 is the plain per-stream seed, so single-batch runs keep
        // their historical stream.
        assert_eq!(stream_seed(7, 42, 0), 7 ^ 42);
    }

    #[test]
    fn item_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for index in 0..4096usize {
            assert!(seen.insert(item_seed(9, index)), "collision at {index}");
        }
        // The exact formula is part of the dataset identity (callers bake it
        // into emitted corpora), so pin it.
        assert_eq!(
            item_seed(3, 7),
            3 ^ 8u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        );
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let items: Vec<usize> = (0..64).collect();
        assert_eq!(par_map(0, &items, |_, &x| x), items);
    }
}
