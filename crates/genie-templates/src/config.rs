//! Validated configuration construction.
//!
//! The config structs of this workspace started life as plain
//! `pub`-field structs; any combination of values — a zero sampling
//! target, a derivation depth the grammar cannot reach, an absurd shard
//! count — compiled fine and failed (or spun) deep inside the engine.
//! Serving untrusted inputs needs construction itself to be the
//! checkpoint, so each config now has a builder whose `build()` returns
//! `Result<Config, ConfigError>` and a `validate()` for configs assembled
//! by hand. [`ConfigError`] is shared by every builder in the workspace
//! (`genie` wraps it into `genie::Error::Config`).

use std::fmt;

use crate::generator::GeneratorConfig;

/// Why a configuration was rejected by a validating builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"max_depth"`.
    pub field: &'static str,
    /// What is wrong with its value.
    pub message: String,
}

impl ConfigError {
    /// Construct a rejection for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        ConfigError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Hard ceiling on the derivation depth: the builtin grammar bottoms out
/// well below this, and deeper settings only multiply sampling work.
pub const MAX_DEPTH_LIMIT: usize = 16;

/// Hard ceiling on the dedup shard count: beyond this, per-shard workers
/// cost more than they parallelize.
pub const MAX_SHARDS: usize = 4096;

impl GeneratorConfig {
    /// Start a validating builder seeded with the default configuration.
    pub fn builder() -> GeneratorConfigBuilder {
        GeneratorConfigBuilder {
            config: GeneratorConfig::default(),
        }
    }

    /// Check an already-assembled configuration; [`GeneratorConfigBuilder`]
    /// calls this from `build()`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.target_per_rule == 0 {
            return Err(ConfigError::new(
                "target_per_rule",
                "must be at least 1 (no rule can sample zero derivations)",
            ));
        }
        if self.max_depth == 0 {
            return Err(ConfigError::new(
                "max_depth",
                "must be at least 1 (depth 0 admits no derivation)",
            ));
        }
        if self.max_depth > MAX_DEPTH_LIMIT {
            return Err(ConfigError::new(
                "max_depth",
                format!("must be at most {MAX_DEPTH_LIMIT}, got {}", self.max_depth),
            ));
        }
        if self.instantiations_per_template == 0 {
            return Err(ConfigError::new(
                "instantiations_per_template",
                "must be at least 1",
            ));
        }
        if self.shards > MAX_SHARDS {
            return Err(ConfigError::new(
                "shards",
                format!("must be at most {MAX_SHARDS}, got {}", self.shards),
            ));
        }
        // `batch_size` needs no bound: larger than `target_per_rule` simply
        // collapses to one batch per rule, and `0` is that same sentinel.
        Ok(())
    }
}

/// Validating builder for [`GeneratorConfig`]; see the crate-level docs for
/// the builder-API migration notes.
#[derive(Debug, Clone)]
pub struct GeneratorConfigBuilder {
    config: GeneratorConfig,
}

impl GeneratorConfigBuilder {
    /// Samples per construct rule.
    pub fn target_per_rule(mut self, value: usize) -> Self {
        self.config.target_per_rule = value;
        self
    }

    /// Maximum derivation depth.
    pub fn max_depth(mut self, value: usize) -> Self {
        self.config.max_depth = value;
        self
    }

    /// Instantiations of each primitive template.
    pub fn instantiations_per_template(mut self, value: usize) -> Self {
        self.config.instantiations_per_template = value;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, value: u64) -> Self {
        self.config.seed = value;
        self
    }

    /// Include TT+A aggregation constructs.
    pub fn include_aggregation(mut self, value: bool) -> Self {
        self.config.include_aggregation = value;
        self
    }

    /// Include timer constructs.
    pub fn include_timers(mut self, value: bool) -> Self {
        self.config.include_timers = value;
        self
    }

    /// Worker threads (`0` = all cores; never changes output).
    pub fn threads(mut self, value: usize) -> Self {
        self.config.threads = value;
        self
    }

    /// Streaming batch size (`0` = one batch per rule; part of the dataset
    /// identity).
    pub fn batch_size(mut self, value: usize) -> Self {
        self.config.batch_size = value;
        self
    }

    /// Dedup shards (never changes output).
    pub fn shards(mut self, value: usize) -> Self {
        self.config.shards = value;
        self
    }

    /// Suppress non-fatal diagnostics.
    pub fn quiet(mut self, value: bool) -> Self {
        self.config.quiet = value;
        self
    }

    /// Per-template / per-attempt phrase-pool RNG streams (part of the
    /// dataset identity; required for live incremental re-synthesis).
    pub fn pool_streams(mut self, value: bool) -> Self {
        self.config.pool_streams = value;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<GeneratorConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(GeneratorConfig::default().validate().is_ok());
        let built = GeneratorConfig::builder().build().unwrap();
        assert_eq!(built, GeneratorConfig::default());
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let config = GeneratorConfig::builder()
            .target_per_rule(50)
            .max_depth(4)
            .instantiations_per_template(3)
            .seed(77)
            .include_aggregation(true)
            .include_timers(false)
            .threads(2)
            .batch_size(16)
            .shards(4)
            .quiet(true)
            .build()
            .unwrap();
        assert_eq!(config.target_per_rule, 50);
        assert_eq!(config.max_depth, 4);
        assert_eq!(config.instantiations_per_template, 3);
        assert_eq!(config.seed, 77);
        assert!(config.include_aggregation);
        assert!(!config.include_timers);
        assert_eq!(config.threads, 2);
        assert_eq!(config.batch_size, 16);
        assert_eq!(config.shards, 4);
        assert!(config.quiet);
    }

    #[test]
    fn bad_combinations_are_rejected_with_the_field_named() {
        let zero_target = GeneratorConfig::builder().target_per_rule(0).build();
        assert_eq!(zero_target.unwrap_err().field, "target_per_rule");

        let zero_depth = GeneratorConfig::builder().max_depth(0).build();
        assert_eq!(zero_depth.unwrap_err().field, "max_depth");

        let deep = GeneratorConfig::builder()
            .max_depth(MAX_DEPTH_LIMIT + 1)
            .build();
        assert_eq!(deep.unwrap_err().field, "max_depth");

        let shards = GeneratorConfig::builder().shards(MAX_SHARDS + 1).build();
        assert_eq!(shards.unwrap_err().field, "shards");

        // `0` batch size is the documented "one batch per rule" sentinel,
        // and a batch larger than the target collapses to the same thing.
        assert!(GeneratorConfig::builder()
            .target_per_rule(10)
            .batch_size(0)
            .build()
            .is_ok());
        assert!(GeneratorConfig::builder()
            .target_per_rule(10)
            .batch_size(64)
            .build()
            .is_ok());
    }

    #[test]
    fn error_display_names_field_and_reason() {
        let error = GeneratorConfig::builder().max_depth(0).build().unwrap_err();
        let text = error.to_string();
        assert!(text.contains("max_depth"), "{text}");
        assert!(text.contains("at least 1"), "{text}");
    }
}
