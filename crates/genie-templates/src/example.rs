//! Synthesized (utterance, program) pairs.

use serde::{Deserialize, Serialize};

use thingtalk::Program;

use crate::intern::{Interner, TokenStream};

/// Structural flags of a synthesized example, used to report the dataset
/// characteristics of Fig. 7 and to stratify sampling for paraphrasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExampleFlags {
    /// Uses exactly one skill function.
    pub primitive: bool,
    /// Has at least one filter predicate.
    pub filter: bool,
    /// Passes an output parameter into an input parameter.
    pub param_passing: bool,
    /// Is event driven (stream is not `now`).
    pub event_driven: bool,
    /// Uses a TT+A aggregation.
    pub aggregation: bool,
}

impl ExampleFlags {
    /// Compute the flags of a program.
    pub fn of(program: &Program) -> Self {
        ExampleFlags {
            primitive: !program.is_compound(),
            filter: program.has_filter(),
            param_passing: program.uses_param_passing(),
            event_driven: program.is_event_driven(),
            aggregation: program.has_aggregation(),
        }
    }

    /// The Fig. 7 bucket this example falls into.
    pub fn bucket(&self) -> &'static str {
        if self.primitive {
            if self.filter {
                "primitive + filters"
            } else {
                "primitive commands"
            }
        } else if self.param_passing && self.filter {
            "compound + param passing + filters"
        } else if self.param_passing {
            "compound + parameter passing"
        } else if self.filter {
            "compound + filters"
        } else {
            "compound commands"
        }
    }
}

/// A synthesized sentence with its program, produced by the template engine.
///
/// The utterance is an interned [`TokenStream`]; render it with the arena
/// that produced it ([`SynthesizedExample::utterance_text`]) — by default
/// [`crate::intern::shared`]. The construct label is `&'static str` (labels
/// come from the rule registry), so cloning an example never allocates for
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizedExample {
    /// The natural-language utterance as interned tokens.
    pub utterance: TokenStream,
    /// The corresponding ThingTalk program (already canonicalizable).
    pub program: Program,
    /// The derivation depth at which this example was produced.
    pub depth: usize,
    /// The construct template that produced it (for statistics and
    /// paraphrase sampling).
    pub construct: &'static str,
    /// Structural flags.
    pub flags: ExampleFlags,
}

impl SynthesizedExample {
    /// Create an example, computing its flags from the program.
    pub fn new(
        utterance: TokenStream,
        program: Program,
        depth: usize,
        construct: &'static str,
    ) -> Self {
        let flags = ExampleFlags::of(&program);
        SynthesizedExample {
            utterance,
            program,
            depth,
            construct,
            flags,
        }
    }

    /// Render the utterance through the arena that produced it.
    pub fn utterance_text(&self, interner: &Interner) -> String {
        interner.render(&self.utterance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    #[test]
    fn buckets_match_fig7_categories() {
        let primitive = parse_program("now => @com.gmail.inbox() => notify").unwrap();
        assert_eq!(ExampleFlags::of(&primitive).bucket(), "primitive commands");

        let filtered =
            parse_program("now => @com.gmail.inbox() filter sender == \"alice\" => notify")
                .unwrap();
        assert_eq!(ExampleFlags::of(&filtered).bucket(), "primitive + filters");

        let compound = parse_program(
            "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#general\"^^tt:slack_channel, message = \"mail\")",
        )
        .unwrap();
        assert_eq!(ExampleFlags::of(&compound).bucket(), "compound commands");

        let passing = parse_program(
            "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#general\"^^tt:slack_channel, message = snippet)",
        )
        .unwrap();
        assert_eq!(
            ExampleFlags::of(&passing).bucket(),
            "compound + parameter passing"
        );

        let passing_filtered = parse_program(
            "monitor (@com.gmail.inbox() filter is_unread == true) => @com.slack.send(channel = \"#g\"^^tt:slack_channel, message = snippet)",
        )
        .unwrap();
        assert_eq!(
            ExampleFlags::of(&passing_filtered).bucket(),
            "compound + param passing + filters"
        );
    }

    #[test]
    fn example_construction_computes_flags() {
        let program =
            parse_program("now => agg count of (@com.dropbox.list_folder()) => notify").unwrap();
        let interner = crate::intern::shared();
        let example = SynthesizedExample::new(
            interner.stream_of("how many files are in my dropbox"),
            program,
            2,
            "aggregation",
        );
        assert!(example.flags.aggregation);
        assert!(example.flags.primitive);
        assert_eq!(example.construct, "aggregation");
    }
}
