//! The synthesis-side interning subsystem: the shared pre-seeded arena and
//! the construct-variant compiler.
//!
//! The core types ([`Symbol`], [`TokenStream`], [`Interner`],
//! [`LocalInterner`]) live in [`genie_nlp::intern`] so every layer — NL
//! utilities, synthesis, the pipeline, LUInet — can speak the same
//! representation; this module owns the parts that need the skill library:
//!
//! * [`shared`] — the process-wide arena, deterministically pre-seeded with
//!   the builtin synthesis vocabulary (template words, construct variants,
//!   parameter-dataset values, rendered numerals/times/units) so the
//!   parallel hot path almost never misses;
//! * [`preseed`] — the same seeding for caller-owned arenas (fresh arenas
//!   are what the id-level determinism tests use);
//! * [`SynthVocab`] — the per-generator compiled form of the construct
//!   variants: each `"get $np and then $vp"` pattern becomes a sequence of
//!   [`VariantPiece`]s (interned words and typed slot markers), so
//!   instantiating a rule splices token runs instead of scanning the
//!   pattern text with `str::replace`.
//!
//! # Determinism
//!
//! Pre-seeding happens in one fixed order (variants, templates, canonicals,
//! dataset values, rendered scalars), and everything the parallel engine
//! interns later goes through the ordered-commit protocol
//! ([`Interner::commit`] at the canonical sink). A fresh pre-seeded arena
//! therefore assigns identical symbols for any thread count; the shared
//! arena additionally absorbs interleavings from other pipelines in the
//! same process without ever changing rendered text (symbol *values* never
//! reach the output — only resolved fragments do).

use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

pub use genie_nlp::intern::{
    FnvState, Interner, LocalInterner, PendingSymbols, Remap, Symbol, TokenStream,
};

use thingpedia::{ParamDatasets, Thingpedia};
use thingtalk::units::Unit;
use thingtalk::value::DateEdge;

use crate::constructs::ConstructKind;

/// The process-wide synthesis arena — [`genie_nlp::intern::shared`],
/// pre-seeded with the builtin vocabulary on first use. Every pipeline
/// component defaults to this arena; pass a fresh one (see [`preseed`] /
/// [`fresh`]) where id-level isolation matters.
pub fn shared() -> &'static Arc<Interner> {
    static SEEDED: OnceLock<()> = OnceLock::new();
    let interner = genie_nlp::intern::shared();
    SEEDED.get_or_init(|| {
        preseed(interner, &Thingpedia::builtin(), &ParamDatasets::builtin());
    });
    interner
}

/// One named pre-seeding step: a pure, idempotent walk that interns a slice
/// of the synthesis vocabulary in a fixed order. [`preseed`] runs all of
/// [`PRESEED_STEPS`] in sequence; snapshot builders (the live subsystem)
/// run the same steps against their own per-snapshot arenas, which is what
/// makes symbol assignment snapshot-count- and worker-count-invariant.
pub type PreseedStep = fn(&Interner, &Thingpedia, &ParamDatasets);

/// The pre-seeding pipeline, in its canonical order. Every step is
/// idempotent (interning an existing string is a no-op returning the same
/// symbol), so re-running the pipeline — on the shared arena, on a fresh
/// snapshot arena, or after a skill delta against an already-seeded arena —
/// never reassigns an id.
pub const PRESEED_STEPS: &[(&str, PreseedStep)] = &[
    ("construct-variant-words", seed_construct_variant_words),
    ("primitive-template-words", seed_template_words),
    ("canonical-phrases", seed_canonical_phrases),
    ("parameter-dataset-values", seed_dataset_values),
    ("rendered-scalars", seed_rendered_scalars),
    ("program-vocabulary", seed_program_vocabulary),
    ("connective-words", seed_connective_words),
];

/// Pre-seed an arena with the synthesis vocabulary of a skill library, in a
/// fixed deterministic order (the [`PRESEED_STEPS`] pipeline). Idempotent;
/// single-threaded contexts only.
pub fn preseed(interner: &Interner, library: &Thingpedia, datasets: &ParamDatasets) {
    for (_, step) in PRESEED_STEPS {
        step(interner, library, datasets);
    }
}

/// Construct-variant words (all kinds, fixed enum order).
fn seed_construct_variant_words(interner: &Interner, _: &Thingpedia, _: &ParamDatasets) {
    for kind in ConstructKind::ALL {
        for variant in kind.variants() {
            for word in variant.split_whitespace() {
                if !word.starts_with('$') {
                    interner.intern(word);
                }
            }
        }
    }
}

/// Primitive-template words, library order.
fn seed_template_words(interner: &Interner, library: &Thingpedia, _: &ParamDatasets) {
    for template in library.templates() {
        for word in template.utterance.split_whitespace() {
            if !word.starts_with('$') {
                interner.intern(word);
            }
        }
    }
}

/// Function and parameter canonical phrases (filters, parameter passing,
/// edge predicates all splice them into utterances).
fn seed_canonical_phrases(interner: &Interner, library: &Thingpedia, _: &ParamDatasets) {
    for class in library.classes() {
        for function in class.functions.values() {
            interner.intern_words(&function.canonical, &mut TokenStream::new());
            for param in &function.params {
                interner.intern_words(&param.canonical, &mut TokenStream::new());
                // The boolean-filter rewrite drops a leading "is ".
                let stripped = param.canonical.replace("is ", "");
                interner.intern_words(&stripped, &mut TokenStream::new());
            }
        }
    }
}

/// Parameter-dataset values (sampled into slots and by expansion).
fn seed_dataset_values(interner: &Interner, _: &Thingpedia, datasets: &ParamDatasets) {
    for dataset in datasets.datasets() {
        for value in &dataset.values {
            interner.intern_words(value, &mut TokenStream::new());
        }
    }
}

/// Rendered scalars: the numerals, clock times, unit phrases and date edges
/// `describe_value` can produce for sampled values.
fn seed_rendered_scalars(interner: &Interner, _: &Thingpedia, _: &ParamDatasets) {
    let mut buf = String::new();
    for n in -10i64..=1100 {
        buf.clear();
        let _ = write!(buf, "{n}");
        interner.intern(&buf);
    }
    for hour in 0u8..24 {
        for minute in [0u8, 15, 30, 45] {
            buf.clear();
            let _ = write!(buf, "{hour}:{minute:02}");
            interner.intern(&buf);
        }
    }
    for unit in Unit::ALL {
        interner.intern_words(unit.phrase(), &mut TokenStream::new());
    }
    for edge in [
        DateEdge::StartOfDay,
        DateEdge::EndOfDay,
        DateEdge::StartOfWeek,
        DateEdge::EndOfWeek,
        DateEdge::StartOfMonth,
        DateEdge::EndOfMonth,
        DateEdge::StartOfYear,
        DateEdge::EndOfYear,
        DateEdge::Now,
    ] {
        interner.intern_words(&edge.keyword().replace('_', " "), &mut TokenStream::new());
    }
}

/// The NN-syntax program vocabulary: the model layer (LUInet) interns
/// program tokens into the same arena, so seed the structural tokens and
/// every `@class.function` / `param:name` the library can emit — training
/// then interns (almost) nothing, and fresh arenas assign program-token ids
/// deterministically for the id-level tests.
fn seed_program_vocabulary(interner: &Interner, library: &Thingpedia, _: &ParamDatasets) {
    for token in [
        "<s>",
        "</s>",
        "<unk>",
        "now",
        "=>",
        "notify",
        "monitor",
        "edge",
        "on",
        "timer",
        "attimer",
        "base",
        "interval",
        "filter",
        "join",
        "agg",
        "of",
        "(",
        ")",
        "=",
        "\"",
        "!",
        "&&",
        "||",
        "true",
        "false",
        "time",
        "param:time",
    ] {
        interner.intern(token);
    }
    let mut buf = String::new();
    for class in library.classes() {
        for function in class.functions.values() {
            buf.clear();
            let _ = write!(buf, "@{}.{}", class.name, function.name);
            interner.intern(&buf);
            for param in &function.params {
                buf.clear();
                let _ = write!(buf, "param:{}", param.name);
                interner.intern(&buf);
                buf.clear();
                let _ = write!(buf, "param:{}:{}", param.name, param.ty.annotation_token());
                interner.intern(&buf);
            }
        }
    }
}

/// Fixed connective words of the generated filter / predicate / value
/// phrases and common punctuation fragments.
fn seed_connective_words(interner: &Interner, _: &Thingpedia, _: &ParamDatasets) {
    for word in [
        "the",
        "with",
        "greater",
        "less",
        "than",
        "after",
        "that",
        "are",
        "whose",
        "contains",
        "containing",
        "of",
        "goes",
        "above",
        "drops",
        "below",
        "when",
        "yes",
        "no",
        "something",
        "result",
        "USD",
        ",",
        ".",
        ":",
        "days",
        "before",
    ] {
        interner.intern(word);
    }
}

/// A pre-seeded fresh arena for one library — what the determinism tests
/// construct per run to compare id assignment across worker counts.
pub fn fresh(library: &Thingpedia, datasets: &ParamDatasets) -> Arc<Interner> {
    let interner = Arc::new(Interner::new());
    preseed(&interner, library, datasets);
    interner
}

/// One element of a compiled construct variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantPiece {
    /// A literal interned word.
    Word(Symbol),
    /// `$np` — a query noun phrase.
    Np,
    /// `$vp` — a verb phrase.
    Vp,
    /// `$wp` — a when phrase.
    Wp,
    /// `$wp_bare` — a when phrase with its leading "when" stripped.
    WpBare,
    /// `$time` — a rendered time-of-day value.
    Time,
    /// `$interval` — a rendered interval value.
    Interval,
    /// `$pred` — a rendered edge predicate phrase.
    Pred,
    /// `$field` — a parameter canonical phrase.
    Field,
    /// `$person` — a sampled person name.
    Person,
}

/// A construct variant compiled to interned pieces. Splicing replaces the
/// old `variant.replace("$np", …)` chains: no pattern scan, no intermediate
/// `String`s, one output stream.
#[derive(Debug, Clone)]
pub struct CompiledVariant {
    pieces: Box<[VariantPiece]>,
    has_vp: bool,
}

impl CompiledVariant {
    fn compile(variant: &str, interner: &Interner) -> Self {
        let pieces: Box<[VariantPiece]> = variant
            .split_whitespace()
            .map(|word| match word {
                "$np" => VariantPiece::Np,
                "$vp" => VariantPiece::Vp,
                "$wp" => VariantPiece::Wp,
                "$wp_bare" => VariantPiece::WpBare,
                "$time" => VariantPiece::Time,
                "$interval" => VariantPiece::Interval,
                "$pred" => VariantPiece::Pred,
                "$field" => VariantPiece::Field,
                "$person" => VariantPiece::Person,
                literal => VariantPiece::Word(interner.intern(literal)),
            })
            .collect();
        let has_vp = pieces.contains(&VariantPiece::Vp);
        CompiledVariant { pieces, has_vp }
    }

    /// Whether the pattern contains a `$vp` slot (EdgeCommand uses this to
    /// decide between notify and action forms).
    pub fn has_vp(&self) -> bool {
        self.has_vp
    }

    /// Build the utterance: literal words are pushed as-is, slots are filled
    /// by the callback (which appends the slot's tokens to the stream).
    pub fn splice(
        &self,
        out: &mut TokenStream,
        mut fill: impl FnMut(VariantPiece, &mut TokenStream),
    ) {
        for &piece in self.pieces.iter() {
            match piece {
                VariantPiece::Word(symbol) => out.push(symbol),
                slot => fill(slot, out),
            }
        }
    }
}

/// Interned symbols for the fixed words the construct rules and filter
/// builders splice into utterances on the hot path.
#[derive(Debug, Clone, Copy)]
pub struct CommonSymbols {
    /// "the"
    pub the: Symbol,
    /// "when"
    pub when: Symbol,
    /// "of"
    pub of: Symbol,
    /// "goes"
    pub goes: Symbol,
    /// "above"
    pub above: Symbol,
    /// "drops"
    pub drops: Symbol,
    /// "below"
    pub below: Symbol,
    /// "with"
    pub with: Symbol,
    /// "greater"
    pub greater: Symbol,
    /// "less"
    pub less: Symbol,
    /// "than"
    pub than: Symbol,
    /// "after"
    pub after: Symbol,
    /// "that"
    pub that: Symbol,
    /// "are"
    pub are: Symbol,
    /// "whose"
    pub whose: Symbol,
    /// "contains"
    pub contains: Symbol,
    /// "containing"
    pub containing: Symbol,
}

/// The per-generator synthesis vocabulary: the arena handle, the compiled
/// construct variants, and the common splice symbols. Built once per
/// generator (microseconds), shared read-only by all rule workers.
pub struct SynthVocab {
    interner: Arc<Interner>,
    variants: Vec<Vec<CompiledVariant>>,
    /// Common splice symbols.
    pub sym: CommonSymbols,
}

impl SynthVocab {
    /// Compile the construct variants against an arena.
    pub fn new(interner: Arc<Interner>) -> Self {
        let variants = ConstructKind::ALL
            .iter()
            .map(|kind| {
                kind.variants()
                    .iter()
                    .map(|variant| CompiledVariant::compile(variant, &interner))
                    .collect()
            })
            .collect();
        let sym = CommonSymbols {
            the: interner.intern("the"),
            when: interner.intern("when"),
            of: interner.intern("of"),
            goes: interner.intern("goes"),
            above: interner.intern("above"),
            drops: interner.intern("drops"),
            below: interner.intern("below"),
            with: interner.intern("with"),
            greater: interner.intern("greater"),
            less: interner.intern("less"),
            than: interner.intern("than"),
            after: interner.intern("after"),
            that: interner.intern("that"),
            are: interner.intern("are"),
            whose: interner.intern("whose"),
            contains: interner.intern("contains"),
            containing: interner.intern("containing"),
        };
        SynthVocab {
            interner,
            variants,
            sym,
        }
    }

    /// The arena this vocabulary (and every stream built from it) lives in.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// The compiled variants of a construct kind.
    pub fn variants(&self, kind: ConstructKind) -> &[CompiledVariant] {
        &self.variants[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preseed_is_deterministic_and_idempotent() {
        let library = Thingpedia::builtin();
        let datasets = ParamDatasets::builtin();
        let a = fresh(&library, &datasets);
        let b = fresh(&library, &datasets);
        assert_eq!(a.len(), b.len());
        assert!(a.len() > 2000, "vocabulary too small: {}", a.len());
        for id in 0..a.len() as u32 {
            let symbol = Symbol::from_raw(id);
            assert_eq!(a.resolve(symbol), b.resolve(symbol), "symbol {id}");
        }
        // Idempotent: seeding again adds nothing — neither the whole
        // pipeline nor any individual named step.
        let before = a.len();
        preseed(&a, &library, &datasets);
        assert_eq!(a.len(), before);
        for (name, step) in PRESEED_STEPS {
            step(&a, &library, &datasets);
            assert_eq!(a.len(), before, "step `{name}` is not idempotent");
        }
    }

    #[test]
    fn fresh_arenas_are_snapshot_and_worker_count_invariant() {
        // Two snapshot arenas created in the same process — regardless of
        // how many were made before, and regardless of the worker count of
        // the synthesis run that fills them — assign identical symbol ids.
        // This is the contract the live subsystem's atomic swap rests on:
        // a snapshot built on an 8-core box equals one built single-threaded.
        use crate::generator::{GeneratorConfig, SentenceGenerator};
        let library = Thingpedia::builtin();
        let datasets = ParamDatasets::builtin();
        // Burn a few arenas first: snapshot-count-invariance means earlier
        // snapshots must not perturb later ones.
        for _ in 0..3 {
            let _ = fresh(&library, &datasets);
        }
        let run = |threads: usize| {
            let config = GeneratorConfig {
                target_per_rule: 6,
                max_depth: 4,
                seed: 11,
                threads,
                pool_streams: true,
                quiet: true,
                ..GeneratorConfig::default()
            };
            let arena = fresh(&library, &datasets);
            let generator = SentenceGenerator::with_interner(&library, config, arena.clone());
            let examples = generator.synthesize();
            (arena, examples)
        };
        let (arena_1, examples_1) = run(1);
        let (arena_8, examples_8) = run(8);
        assert_eq!(arena_1.len(), arena_8.len());
        for id in 0..arena_1.len() as u32 {
            let symbol = Symbol::from_raw(id);
            assert_eq!(arena_1.resolve(symbol), arena_8.resolve(symbol), "id {id}");
        }
        // Id-level equality of the synthesized streams, not just text.
        assert_eq!(examples_1, examples_8);
    }

    #[test]
    fn variants_compile_and_splice() {
        let vocab = SynthVocab::new(shared().clone());
        let interner = vocab.interner().clone();
        let get_do = vocab.variants(ConstructKind::GetDo);
        assert_eq!(get_do.len(), ConstructKind::GetDo.variants().len());
        let np = interner.stream_of("my dropbox files");
        let vp = interner.stream_of("post it on twitter");
        let mut out = TokenStream::new();
        get_do[0].splice(&mut out, |piece, out| match piece {
            VariantPiece::Np => out.extend_from_slice(&np),
            VariantPiece::Vp => out.extend_from_slice(&vp),
            other => panic!("unexpected slot {other:?}"),
        });
        assert_eq!(
            interner.render(&out),
            "get my dropbox files and then post it on twitter"
        );
    }

    #[test]
    fn spliced_variants_match_string_replacement() {
        // Every compiled variant must reproduce the exact text the old
        // `replace` chains produced, for every kind.
        let vocab = SynthVocab::new(shared().clone());
        let interner = vocab.interner().clone();
        let fills: &[(&str, &str)] = &[
            ("$np", "my dropbox files"),
            ("$vp", "post the caption on twitter"),
            ("$wp_bare", "i receive an email"),
            ("$wp", "when i receive an email"),
            ("$time", "8:30"),
            ("$interval", "30 minutes"),
            ("$pred", "the low of weather goes above 10"),
            ("$field", "file size"),
            ("$person", "alice"),
        ];
        for kind in ConstructKind::ALL {
            for (index, variant) in kind.variants().iter().enumerate() {
                // Replacement order matters: `$wp_bare` before `$wp`.
                let mut expected = variant.to_string();
                for (slot, text) in fills {
                    expected = expected.replace(slot, text);
                }
                let mut out = TokenStream::new();
                vocab.variants(*kind)[index].splice(&mut out, |piece, out| {
                    let text = match piece {
                        VariantPiece::Np => "my dropbox files",
                        VariantPiece::Vp => "post the caption on twitter",
                        VariantPiece::WpBare => "i receive an email",
                        VariantPiece::Wp => "when i receive an email",
                        VariantPiece::Time => "8:30",
                        VariantPiece::Interval => "30 minutes",
                        VariantPiece::Pred => "the low of weather goes above 10",
                        VariantPiece::Field => "file size",
                        VariantPiece::Person => "alice",
                        VariantPiece::Word(_) => unreachable!(),
                    };
                    interner.intern_words(text, out);
                });
                assert_eq!(interner.render(&out), expected, "{kind:?} #{index}");
            }
        }
    }

    #[test]
    fn variant_choice_draws_match_slice_choose() {
        use rand::seq::SliceRandom;
        let vocab = SynthVocab::new(shared().clone());
        for kind in ConstructKind::ALL {
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            let via_str = kind.variants().choose(&mut a).copied();
            let via_compiled = vocab.variants(*kind).choose(&mut b);
            assert_eq!(via_str.is_some(), via_compiled.is_some());
        }
    }
}
