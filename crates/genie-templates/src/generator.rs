//! Synthesis by sampling (§3.1).
//!
//! The generator instantiates primitive templates into phrase derivations,
//! optionally adds filters, and then samples combinations for each construct
//! template instead of enumerating all derivations: "the number of
//! derivations grows exponentially with increasing depth and library size
//! [...] Genie uses a randomized synthesis algorithm, which considers only a
//! subset of derivations produced by each construct template."

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use thingpedia::{ParamDatasets, Thingpedia};
use thingtalk::ast::{Action, CompareOp, Predicate, Program, Query, Stream};
use thingtalk::class::ParamDef;
use thingtalk::policy::{Policy, PolicyBody};
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::types::Type;
use thingtalk::units::Unit;
use thingtalk::value::Value;

use crate::constructs::ConstructKind;
use crate::example::SynthesizedExample;
use crate::phrases::{add_filter, instantiate, render_value, sample_value, PhraseDerivation, PhraseKind};

/// Configuration of the sampled synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// How many examples to sample per construct kind (the paper uses a
    /// target size of 100,000 per grammar rule at full scale).
    pub target_per_rule: usize,
    /// Maximum derivation depth (the paper uses 5).
    pub max_depth: usize,
    /// How many times each primitive template is instantiated with different
    /// parameter values.
    pub instantiations_per_template: usize,
    /// RNG seed.
    pub seed: u64,
    /// Include TT+A aggregation constructs (§6.3).
    pub include_aggregation: bool,
    /// Include timer constructs.
    pub include_timers: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            target_per_rule: 200,
            max_depth: 5,
            instantiations_per_template: 2,
            seed: 0,
            include_aggregation: false,
            include_timers: true,
        }
    }
}

/// The sampled sentence generator.
pub struct SentenceGenerator<'a> {
    library: &'a Thingpedia,
    datasets: ParamDatasets,
    config: GeneratorConfig,
}

struct PhrasePools {
    nouns: Vec<PhraseDerivation>,
    query_verbs: Vec<PhraseDerivation>,
    action_verbs: Vec<PhraseDerivation>,
    whens: Vec<PhraseDerivation>,
    filtered_nouns: Vec<PhraseDerivation>,
    filtered_whens: Vec<PhraseDerivation>,
}

impl<'a> SentenceGenerator<'a> {
    /// Create a generator over a library.
    pub fn new(library: &'a Thingpedia, config: GeneratorConfig) -> Self {
        SentenceGenerator {
            library,
            datasets: ParamDatasets::builtin(),
            config,
        }
    }

    fn build_pools(&self, rng: &mut StdRng) -> PhrasePools {
        let mut pools = PhrasePools {
            nouns: Vec::new(),
            query_verbs: Vec::new(),
            action_verbs: Vec::new(),
            whens: Vec::new(),
            filtered_nouns: Vec::new(),
            filtered_whens: Vec::new(),
        };
        for template in self.library.templates() {
            for _ in 0..self.config.instantiations_per_template.max(1) {
                let Some(derivation) = instantiate(self.library, &self.datasets, template, rng)
                else {
                    continue;
                };
                match derivation.kind {
                    PhraseKind::QueryNoun => pools.nouns.push(derivation),
                    PhraseKind::QueryVerb => pools.query_verbs.push(derivation),
                    PhraseKind::ActionVerb => pools.action_verbs.push(derivation),
                    PhraseKind::WhenPhrase => pools.whens.push(derivation),
                }
            }
        }
        if self.config.max_depth >= 2 {
            let filter_target = self.config.target_per_rule.max(10);
            for _ in 0..filter_target {
                if let Some(base) = pools.nouns.choose(rng) {
                    if let Some(filtered) = add_filter(self.library, &self.datasets, base, rng) {
                        pools.filtered_nouns.push(filtered);
                    }
                }
                if let Some(base) = pools.whens.choose(rng) {
                    if let Some(filtered) = add_filter(self.library, &self.datasets, base, rng) {
                        pools.filtered_whens.push(filtered);
                    }
                }
            }
        }
        pools
    }

    /// Run the sampled synthesis and return the deduplicated examples.
    pub fn synthesize(&self) -> Vec<SynthesizedExample> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let pools = self.build_pools(&mut rng);
        let mut out: Vec<SynthesizedExample> = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();

        let push = |example: SynthesizedExample, seen: &mut BTreeSet<String>, out: &mut Vec<SynthesizedExample>| {
            let key = format!("{}\t{}", example.utterance, example.program);
            if seen.insert(key) {
                out.push(example);
            }
        };

        let target = self.config.target_per_rule;
        for kind in ConstructKind::MAIN {
            if matches!(kind, ConstructKind::AtTimerDo | ConstructKind::TimerDo)
                && !self.config.include_timers
            {
                continue;
            }
            if matches!(
                kind,
                ConstructKind::WhenDo
                    | ConstructKind::DoWhen
                    | ConstructKind::GetDo
                    | ConstructKind::WhenGetNotify
                    | ConstructKind::EdgeCommand
            ) && self.config.max_depth < 3
            {
                continue;
            }
            for _ in 0..target {
                if let Some(example) = self.sample_construct(*kind, &pools, &mut rng) {
                    push(example, &mut seen, &mut out);
                }
            }
        }
        if self.config.include_aggregation {
            for kind in [ConstructKind::Aggregation, ConstructKind::CountAggregation] {
                for _ in 0..target {
                    if let Some(example) = self.sample_construct(kind, &pools, &mut rng) {
                        push(example, &mut seen, &mut out);
                    }
                }
            }
        }
        out
    }

    /// Synthesize TACL policies (§6.2) with their utterances.
    pub fn synthesize_policies(&self) -> Vec<(String, Policy)> {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(777));
        let pools = self.build_pools(&mut rng);
        let people = self.datasets.get("tt:person_first_name").expect("dataset exists");
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for _ in 0..self.config.target_per_rule {
            // Query policies.
            if let Some(np) = choose_query_phrase(&pools, &mut rng) {
                let person = people.sample(&mut rng).to_owned();
                let variant = ConstructKind::PolicyQuery
                    .variants()
                    .choose(&mut rng)
                    .expect("variants nonempty");
                let utterance = variant
                    .replace("$person", &person)
                    .replace("$np", &np.utterance);
                let predicate = np
                    .query
                    .as_ref()
                    .map(|q| merge_predicates(q))
                    .unwrap_or(Predicate::True);
                let policy = Policy {
                    source: Predicate::atom("source", CompareOp::Eq, Value::string(person)),
                    body: PolicyBody::Query {
                        function: np.function.clone(),
                        predicate,
                    },
                };
                let key = format!("{utterance}\t{policy}");
                if seen.insert(key) {
                    out.push((utterance, policy));
                }
            }
            // Action policies.
            if let Some(vp) = pools.action_verbs.choose(&mut rng) {
                let person = people.sample(&mut rng).to_owned();
                let variant = ConstructKind::PolicyAction
                    .variants()
                    .choose(&mut rng)
                    .expect("variants nonempty");
                let utterance = variant
                    .replace("$person", &person)
                    .replace("$vp", &vp.utterance);
                let action = vp.action.as_ref().expect("action phrase");
                let mut predicate = Predicate::True;
                for param in &action.in_params {
                    if param.value.is_constant() {
                        let atom =
                            Predicate::atom(param.name.clone(), CompareOp::Eq, param.value.clone());
                        predicate = if predicate.is_true() { atom } else { predicate.and(atom) };
                    }
                }
                let policy = Policy {
                    source: Predicate::atom("source", CompareOp::Eq, Value::string(person)),
                    body: PolicyBody::Action {
                        function: vp.function.clone(),
                        predicate,
                    },
                };
                let key = format!("{utterance}\t{policy}");
                if seen.insert(key) {
                    out.push((utterance, policy));
                }
            }
        }
        out
    }

    fn sample_construct(
        &self,
        kind: ConstructKind,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = kind.variants().choose(rng)?.to_string();
        match kind {
            ConstructKind::GetNotify => {
                let np = choose_query_phrase(pools, rng)?;
                let utterance = variant.replace("$np", &np.utterance);
                let program = Program::get_query(np.query.clone()?);
                Some(SynthesizedExample::new(utterance, program, np.depth + 1, kind.label()))
            }
            ConstructKind::DoCommand => {
                // Half of the time, a query verb phrase ("translate hello to
                // french") becomes a `now => query => notify` command.
                if rng.gen_bool(0.4) && !pools.query_verbs.is_empty() {
                    let qvp = pools.query_verbs.choose(rng)?;
                    let utterance = variant.replace("$vp", &qvp.utterance);
                    let program = Program::get_query(qvp.query.clone()?);
                    return Some(SynthesizedExample::new(utterance, program, qvp.depth + 1, kind.label()));
                }
                let vp = pools.action_verbs.choose(rng)?;
                let utterance = variant.replace("$vp", &vp.utterance);
                let program = Program::do_action(vp.action.clone()?);
                Some(SynthesizedExample::new(utterance, program, vp.depth + 1, kind.label()))
            }
            ConstructKind::WhenNotify => {
                let wp = choose_when_phrase(pools, rng)?;
                let utterance = variant.replace("$wp", &wp.utterance);
                let program = Program::when_notify(wp.query.clone()?);
                Some(SynthesizedExample::new(utterance, program, wp.depth + 1, kind.label()))
            }
            ConstructKind::WhenDo | ConstructKind::DoWhen => {
                let wp = choose_when_phrase(pools, rng)?;
                let vp = pools.action_verbs.choose(rng)?;
                let (mut action, mut vp_utterance) = (vp.action.clone()?, vp.utterance.clone());
                self.maybe_pass_parameters(wp, &mut action, &mut vp_utterance, rng);
                let wp_bare = wp
                    .utterance
                    .strip_prefix("when ")
                    .unwrap_or(&wp.utterance)
                    .to_owned();
                let utterance = variant
                    .replace("$wp_bare", &wp_bare)
                    .replace("$wp", &wp.utterance)
                    .replace("$vp", &vp_utterance);
                let program = Program {
                    stream: Stream::Monitor {
                        query: Box::new(wp.query.clone()?),
                        on: Vec::new(),
                    },
                    query: None,
                    action: Action::Invocation(action),
                };
                Some(SynthesizedExample::new(
                    utterance,
                    program,
                    wp.depth + vp.depth + 1,
                    kind.label(),
                ))
            }
            ConstructKind::GetDo => {
                let np = choose_query_phrase(pools, rng)?;
                let vp = pools.action_verbs.choose(rng)?;
                let (mut action, mut vp_utterance) = (vp.action.clone()?, vp.utterance.clone());
                self.maybe_pass_parameters(np, &mut action, &mut vp_utterance, rng);
                let utterance = variant
                    .replace("$np", &np.utterance)
                    .replace("$vp", &vp_utterance);
                let program = Program {
                    stream: Stream::Now,
                    query: Some(np.query.clone()?),
                    action: Action::Invocation(action),
                };
                Some(SynthesizedExample::new(
                    utterance,
                    program,
                    np.depth + vp.depth + 1,
                    kind.label(),
                ))
            }
            ConstructKind::WhenGetNotify => {
                let wp = choose_when_phrase(pools, rng)?;
                let np = choose_query_phrase(pools, rng)?;
                if wp.function == np.function {
                    return None;
                }
                let utterance = variant
                    .replace("$wp", &wp.utterance)
                    .replace("$np", &np.utterance);
                let program = Program {
                    stream: Stream::Monitor {
                        query: Box::new(wp.query.clone()?),
                        on: Vec::new(),
                    },
                    query: Some(np.query.clone()?),
                    action: Action::Notify,
                };
                Some(SynthesizedExample::new(
                    utterance,
                    program,
                    wp.depth + np.depth + 1,
                    kind.label(),
                ))
            }
            ConstructKind::AtTimerDo => {
                let vp = pools.action_verbs.choose(rng)?;
                let time = Value::Time(rng.gen_range(6..23), [0u8, 15, 30, 45][rng.gen_range(0..4)]);
                let utterance = variant
                    .replace("$time", &render_value(&time))
                    .replace("$vp", &vp.utterance);
                let program = Program {
                    stream: Stream::AtTimer { time },
                    query: None,
                    action: Action::Invocation(vp.action.clone()?),
                };
                Some(SynthesizedExample::new(utterance, program, vp.depth + 1, kind.label()))
            }
            ConstructKind::TimerDo => {
                let vp = pools.action_verbs.choose(rng)?;
                let (amount, unit) = [
                    (5.0, Unit::Minute),
                    (30.0, Unit::Minute),
                    (1.0, Unit::Hour),
                    (2.0, Unit::Hour),
                    (1.0, Unit::Day),
                    (1.0, Unit::Week),
                ][rng.gen_range(0..6)];
                let interval = Value::Measure(amount, unit);
                let utterance = variant
                    .replace("$interval", &render_value(&interval))
                    .replace("$vp", &vp.utterance);
                let program = Program {
                    stream: Stream::Timer {
                        base: Value::Date(thingtalk::value::DateValue::Edge(
                            thingtalk::value::DateEdge::Now,
                        )),
                        interval,
                    },
                    query: None,
                    action: Action::Invocation(vp.action.clone()?),
                };
                Some(SynthesizedExample::new(utterance, program, vp.depth + 1, kind.label()))
            }
            ConstructKind::EdgeCommand => {
                let wp = pools.whens.choose(rng)?;
                let function = self
                    .library
                    .function(&wp.function.class, &wp.function.function)?;
                let numeric: Vec<&ParamDef> = function
                    .output_params()
                    .filter(|p| p.ty.is_numeric() && !matches!(p.ty, Type::Date | Type::Time))
                    .collect();
                let param = numeric.choose(rng)?;
                let value = sample_value(&self.datasets, param, rng);
                let above = rng.gen_bool(0.5);
                let op = if above { CompareOp::Gt } else { CompareOp::Lt };
                let direction = if above { "goes above" } else { "drops below" };
                let pred_text = format!(
                    "the {} of {} {} {}",
                    param.canonical,
                    function.canonical,
                    direction,
                    render_value(&value)
                );
                let predicate = Predicate::atom(param.name.clone(), op, value);
                let uses_action = variant.contains("$vp");
                let (action, vp_utterance, extra_depth) = if uses_action {
                    let vp = pools.action_verbs.choose(rng)?;
                    (Action::Invocation(vp.action.clone()?), vp.utterance.clone(), vp.depth)
                } else {
                    (Action::Notify, String::new(), 0)
                };
                let utterance = variant
                    .replace("$pred", &pred_text)
                    .replace("$vp", &vp_utterance);
                let program = Program {
                    stream: Stream::EdgeFilter {
                        stream: Box::new(Stream::Monitor {
                            query: Box::new(wp.query.clone()?),
                            on: Vec::new(),
                        }),
                        predicate,
                    },
                    query: None,
                    action,
                };
                Some(SynthesizedExample::new(
                    utterance,
                    program,
                    wp.depth + extra_depth + 2,
                    kind.label(),
                ))
            }
            ConstructKind::Aggregation => {
                let np = pools.nouns.choose(rng)?;
                if !np.is_list(self.library) {
                    return None;
                }
                let function = self
                    .library
                    .function(&np.function.class, &np.function.function)?;
                let numeric: Vec<&ParamDef> = function
                    .output_params()
                    .filter(|p| matches!(p.ty, Type::Number | Type::Measure(_) | Type::Currency))
                    .collect();
                let param = numeric.choose(rng)?;
                let op = match variant.as_str() {
                    v if v.contains("average") => thingtalk::AggregationOp::Avg,
                    v if v.contains("maximum") => thingtalk::AggregationOp::Max,
                    v if v.contains("minimum") => thingtalk::AggregationOp::Min,
                    _ => thingtalk::AggregationOp::Sum,
                };
                let utterance = variant
                    .replace("$field", &param.canonical)
                    .replace("$np", &np.utterance);
                let program = Program::get_query(Query::Aggregation {
                    op,
                    field: Some(param.name.clone()),
                    query: Box::new(np.query.clone()?),
                });
                Some(SynthesizedExample::new(utterance, program, np.depth + 1, kind.label()))
            }
            ConstructKind::CountAggregation => {
                let np = choose_query_phrase(pools, rng)?;
                if !np.is_list(self.library) {
                    return None;
                }
                let utterance = variant.replace("$np", &np.utterance);
                let program = Program::get_query(Query::Aggregation {
                    op: thingtalk::AggregationOp::Count,
                    field: None,
                    query: Box::new(np.query.clone()?),
                });
                Some(SynthesizedExample::new(utterance, program, np.depth + 1, kind.label()))
            }
            ConstructKind::PolicyQuery | ConstructKind::PolicyAction => None,
        }
    }

    /// With some probability, rewrite constant parameters of the action as
    /// parameter passing from the preceding query clause, adjusting the
    /// utterance ("post funny cat on twitter" → "post the caption on
    /// twitter"), as in Fig. 1.
    fn maybe_pass_parameters(
        &self,
        source: &PhraseDerivation,
        action: &mut thingtalk::ast::Invocation,
        vp_utterance: &mut String,
        rng: &mut StdRng,
    ) {
        let Some(source_def) = self
            .library
            .function(&source.function.class, &source.function.function)
        else {
            return;
        };
        let Some(action_def) = self
            .library
            .function(&action.function.class, &action.function.function)
        else {
            return;
        };
        for param in &mut action.in_params {
            if !param.value.is_constant() || !rng.gen_bool(0.35) {
                continue;
            }
            let Some(decl) = action_def.param(&param.name) else {
                continue;
            };
            let compatible: Vec<&ParamDef> = source_def
                .output_params()
                .filter(|out| decl.ty.assignable_from(&out.ty))
                .collect();
            let Some(chosen) = compatible.choose(rng) else {
                continue;
            };
            let rendered = render_value(&param.value);
            if !rendered.is_empty() && vp_utterance.contains(&rendered) {
                *vp_utterance = vp_utterance.replacen(&rendered, &format!("the {}", chosen.canonical), 1);
                param.value = Value::VarRef(chosen.name.clone());
            }
        }
    }
}

fn choose_query_phrase<'p>(pools: &'p PhrasePools, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
    if !pools.filtered_nouns.is_empty() && rng.gen_bool(0.3) {
        pools.filtered_nouns.choose(rng)
    } else {
        pools.nouns.choose(rng)
    }
}

fn choose_when_phrase<'p>(pools: &'p PhrasePools, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
    if !pools.filtered_whens.is_empty() && rng.gen_bool(0.3) {
        pools.filtered_whens.choose(rng)
    } else {
        pools.whens.choose(rng)
    }
}

fn merge_predicates(query: &Query) -> Predicate {
    let mut merged = Predicate::True;
    for predicate in query.predicates() {
        merged = if merged.is_true() {
            predicate.clone()
        } else {
            merged.and(predicate.clone())
        };
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::canonical::canonicalized;
    use thingtalk::typecheck::typecheck;

    fn generator(library: &Thingpedia, target: usize, seed: u64) -> SentenceGenerator<'_> {
        SentenceGenerator::new(
            library,
            GeneratorConfig {
                target_per_rule: target,
                max_depth: 5,
                instantiations_per_template: 1,
                seed,
                include_aggregation: true,
                include_timers: true,
            },
        )
    }

    #[test]
    fn synthesis_produces_varied_examples() {
        let library = Thingpedia::builtin();
        let examples = generator(&library, 30, 1).synthesize();
        assert!(examples.len() > 150, "only {} examples", examples.len());
        assert!(examples.iter().any(|e| e.flags.primitive));
        assert!(examples.iter().any(|e| !e.flags.primitive));
        assert!(examples.iter().any(|e| e.flags.filter));
        assert!(examples.iter().any(|e| e.flags.param_passing));
        assert!(examples.iter().any(|e| e.flags.event_driven));
        assert!(examples.iter().any(|e| e.flags.aggregation));
    }

    #[test]
    fn synthesized_programs_typecheck_and_canonicalize() {
        let library = Thingpedia::builtin();
        let examples = generator(&library, 15, 2).synthesize();
        for example in &examples {
            typecheck(&library, &example.program).unwrap_or_else(|e| {
                panic!(
                    "synthesized program does not typecheck: `{}` => `{}`: {e}",
                    example.utterance, example.program
                )
            });
            let canonical = canonicalized(&library, &example.program);
            let again = canonicalized(&library, &canonical);
            assert_eq!(canonical, again, "canonicalization not idempotent");
        }
    }

    #[test]
    fn utterances_have_no_placeholders_left() {
        let library = Thingpedia::builtin();
        let examples = generator(&library, 10, 3).synthesize();
        for example in &examples {
            assert!(
                !example.utterance.contains('$'),
                "placeholder left in `{}`",
                example.utterance
            );
            assert!(!example.utterance.trim().is_empty());
        }
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let library = Thingpedia::builtin();
        let a = generator(&library, 10, 7).synthesize();
        let b = generator(&library, 10, 7).synthesize();
        let c = generator(&library, 10, 8).synthesize();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn target_size_controls_output_size() {
        let library = Thingpedia::builtin();
        let small = generator(&library, 5, 1).synthesize();
        let large = generator(&library, 40, 1).synthesize();
        assert!(large.len() > small.len() * 2);
    }

    #[test]
    fn policies_are_synthesized_for_tacl() {
        let library = Thingpedia::builtin();
        let policies = generator(&library, 40, 4).synthesize_policies();
        assert!(policies.len() > 40);
        assert!(policies.iter().any(|(_, p)| p.is_query_policy()));
        assert!(policies.iter().any(|(_, p)| !p.is_query_policy()));
        for (utterance, _) in &policies {
            assert!(!utterance.contains('$'));
        }
    }

    #[test]
    fn low_depth_disables_compound_constructs() {
        let library = Thingpedia::builtin();
        let config = GeneratorConfig {
            target_per_rule: 20,
            max_depth: 2,
            instantiations_per_template: 1,
            seed: 5,
            include_aggregation: false,
            include_timers: false,
        };
        let examples = SentenceGenerator::new(&library, config).synthesize();
        assert!(examples.iter().all(|e| e.flags.primitive || !e.flags.param_passing));
        assert!(examples.iter().all(|e| e.program.invocations().len() <= 1));
    }
}
