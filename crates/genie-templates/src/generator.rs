//! Synthesis by sampling (§3.1), driven by the construct-rule registry.
//!
//! The generator instantiates primitive templates into phrase derivations,
//! optionally adds filters, and then samples combinations for each construct
//! rule instead of enumerating all derivations: "the number of derivations
//! grows exponentially with increasing depth and library size [...] Genie
//! uses a randomized synthesis algorithm, which considers only a subset of
//! derivations produced by each construct template."
//!
//! # Parallelism, sharding and determinism
//!
//! Synthesis is *streamed*, not collected: each rule's sampling target is
//! split into bounded batches, and the `(rule, batch)` work items run in
//! parallel over a [`genie_parallel::par_stream`] window. Each batch draws
//! from its own RNG stream (`seed ⊕ rule_id ⊕ mix(batch)`, see
//! [`genie_parallel::stream_seed`]), batches arrive at the sink in canonical
//! `(registry order, batch index)` order, and deduplication runs through a
//! [`ShardedDedup`] set (`shard = fingerprint % shards`) whose keep/drop
//! decisions equal a sequential first-wins scan. The emitted dataset is
//! therefore **byte-identical for a fixed seed regardless of
//! [`GeneratorConfig::threads`] and [`GeneratorConfig::shards`]**, and peak
//! memory is bounded by the in-flight window instead of the full dataset.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use std::sync::Arc;

use thingpedia::{ParamDatasets, Thingpedia};
use thingtalk::ast::{CompareOp, Predicate, Query};
use thingtalk::policy::{Policy, PolicyBody};
use thingtalk::value::Value;

use std::collections::HashSet;

use crate::constructs::ConstructKind;
use crate::dedup::{example_stream_key, program_fingerprints};
use crate::example::SynthesizedExample;
use crate::intern::{Interner, LocalInterner, PendingSymbols, SynthVocab, TokenStream};
use crate::pools::{PhrasePools, PoolDraw, PoolSampler};
use crate::registry::{ConstructRule, RuleCtx, RuleRegistry};
use crate::shards::ShardedDedup;

/// Configuration of the sampled synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// How many examples to sample per construct rule (the paper uses a
    /// target size of 100,000 per grammar rule at full scale).
    pub target_per_rule: usize,
    /// Maximum derivation depth (the paper uses 5).
    pub max_depth: usize,
    /// How many times each primitive template is instantiated with different
    /// parameter values.
    pub instantiations_per_template: usize,
    /// RNG seed.
    pub seed: u64,
    /// Include TT+A aggregation constructs (§6.3).
    pub include_aggregation: bool,
    /// Include timer constructs.
    pub include_timers: bool,
    /// Worker threads for rule-parallel synthesis: `0` uses all available
    /// cores, `1` runs inline on the calling thread. Output is identical for
    /// any value.
    pub threads: usize,
    /// Samples per `(rule, batch)` work item of the streaming engine; `0`
    /// keeps each rule in a single batch. The batch size selects the
    /// per-batch RNG streams, so it is part of the dataset identity (unlike
    /// `threads` and `shards`, which never change the output).
    pub batch_size: usize,
    /// Dedup shards (`0` is treated as 1). Sharding parallelizes
    /// deduplication; the emitted dataset is identical for any shard count.
    pub shards: usize,
    /// Suppress non-fatal diagnostics (e.g. phrase-pool shortfall logging)
    /// so benchmark and machine-readable runs stay clean.
    pub quiet: bool,
    /// Build phrase pools from per-template / per-attempt RNG streams
    /// instead of one sequential RNG, so a skill delta leaves other
    /// classes' pool entries byte-identical (required for the incremental
    /// re-synthesis of `genie::live`). Like `batch_size`, this knob is part
    /// of the dataset identity: flipping it changes the emitted dataset.
    pub pool_streams: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            target_per_rule: 200,
            max_depth: 5,
            instantiations_per_template: 2,
            seed: 0,
            include_aggregation: false,
            include_timers: true,
            threads: 0,
            batch_size: 64,
            shards: 8,
            quiet: false,
            pool_streams: false,
        }
    }
}

/// Counters reported by one streaming synthesis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthesisStats {
    /// Candidate derivations instantiated before deduplication.
    pub generated: usize,
    /// Examples emitted to the sink (post-dedup).
    pub emitted: usize,
    /// Candidates dropped as duplicates.
    pub duplicates: usize,
    /// `(rule, batch)` work items processed.
    pub batches: usize,
}

/// One unit of streamed synthesis work: a bounded slice of a rule's
/// sampling target, with its own RNG stream.
struct WorkItem<'r> {
    rule: &'r dyn ConstructRule,
    batch: u64,
    count: usize,
}

/// A cached `(rule, batch)` result a [`BatchProvider`] substitutes for live
/// instantiation during incremental re-synthesis. The provider re-interns
/// the candidates' utterances through the worker's [`LocalInterner`], so
/// novel symbols still commit at the canonical sink in stream order.
pub struct ProvidedBatch {
    /// The candidates, pre-dedup, with utterances interned through the
    /// worker's overlay.
    pub candidates: Vec<SynthesizedExample>,
    /// The candidates' program fingerprints (arena-independent, so cached
    /// values stay valid across snapshot versions).
    pub fingerprints: Vec<(u64, u64)>,
    /// The pool draws recorded when the batch was first instantiated.
    pub draws: Vec<PoolDraw>,
}

/// One completed `(rule, batch)` work item, observed at the canonical sink
/// after symbol commit — the raw material of a synthesis memo.
pub struct BatchRecord {
    /// The rule's stable id ([`ConstructRule::rule_id`]).
    pub rule_id: u64,
    /// The batch index within the rule.
    pub batch: u64,
    /// All candidates, pre-dedup, with globally committed symbols.
    pub candidates: Vec<SynthesizedExample>,
    /// The candidates' program fingerprints.
    pub fingerprints: Vec<(u64, u64)>,
    /// The pool draws the batch made (including rejected draws).
    pub draws: Vec<PoolDraw>,
    /// Whether the batch was substituted by a provider instead of being
    /// instantiated live.
    pub provided: bool,
}

/// Substitutes cached results for `(rule_id, batch)` work items; return
/// `None` to instantiate the batch live.
pub type BatchProvider<'f> =
    &'f (dyn Fn(u64, u64, &mut LocalInterner<'_>) -> Option<ProvidedBatch> + Sync);

/// Receives every completed batch at the canonical sink, in stream order.
pub type BatchObserver<'f> = &'f mut dyn FnMut(BatchRecord);

/// The sampled sentence generator.
pub struct SentenceGenerator<'a> {
    library: &'a Thingpedia,
    datasets: ParamDatasets,
    config: GeneratorConfig,
    vocab: SynthVocab,
    /// The phrase pools, built once per generator: they are a pure function
    /// of `(library, config.seed)` — the build consumes a fresh
    /// seed-derived RNG and nothing else — so repeated synthesis runs reuse
    /// them with byte-identical output.
    pools: std::sync::OnceLock<PhrasePools>,
}

impl<'a> SentenceGenerator<'a> {
    /// Create a generator over a library, interning into the shared
    /// process-wide arena ([`crate::intern::shared`]) — which is already
    /// pre-seeded, so construction skips the vocabulary walk.
    pub fn new(library: &'a Thingpedia, config: GeneratorConfig) -> Self {
        Self::assemble(library, crate::intern::shared().clone(), config)
    }

    /// Create a generator interning into a caller-owned arena (pre-seeded
    /// here, so a fresh arena assigns ids deterministically for any worker
    /// count — what the interner-determinism tests rely on).
    pub fn with_interner(
        library: &'a Thingpedia,
        config: GeneratorConfig,
        interner: Arc<Interner>,
    ) -> Self {
        crate::intern::preseed(&interner, library, &ParamDatasets::builtin());
        Self::assemble(library, interner, config)
    }

    fn assemble(library: &'a Thingpedia, interner: Arc<Interner>, config: GeneratorConfig) -> Self {
        SentenceGenerator {
            library,
            datasets: ParamDatasets::builtin(),
            config,
            vocab: SynthVocab::new(interner),
            pools: std::sync::OnceLock::new(),
        }
    }

    /// The arena utterances of this generator intern into.
    pub fn interner(&self) -> &Arc<Interner> {
        self.vocab.interner()
    }

    /// The phrase pools (built on first use, cached for the generator's
    /// lifetime).
    pub fn pools(&self) -> &PhrasePools {
        self.pools.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(self.config.seed);
            PhrasePools::build(
                &self.vocab,
                self.library,
                &self.datasets,
                &self.config,
                &mut rng,
            )
        })
    }

    /// Run the sampled synthesis with the builtin rule registry and return
    /// the deduplicated examples.
    pub fn synthesize(&self) -> Vec<SynthesizedExample> {
        self.synthesize_with(&RuleRegistry::builtin())
    }

    /// Run the sampled synthesis with a caller-provided rule registry,
    /// collecting the streamed examples into a `Vec`.
    ///
    /// This is [`SentenceGenerator::synthesize_streaming_with`] with a
    /// collecting sink; callers that can consume examples incrementally
    /// (sharded writers, fused pipeline stages) should use the streaming
    /// form directly so the full dataset is never resident.
    pub fn synthesize_with(&self, registry: &RuleRegistry) -> Vec<SynthesizedExample> {
        let mut out = Vec::new();
        self.synthesize_streaming_with(registry, |example| out.push(example));
        out
    }

    /// Stream the sampled synthesis of the builtin registry into `sink`.
    pub fn synthesize_streaming(&self, sink: impl FnMut(SynthesizedExample)) -> SynthesisStats {
        self.synthesize_streaming_with(&RuleRegistry::builtin(), sink)
    }

    /// Stream the sampled synthesis into `sink`, memory-bounded.
    ///
    /// Each enabled rule's `target_per_rule` samples are split into batches
    /// of [`GeneratorConfig::batch_size`]; every `(rule, batch)` work item
    /// draws from its own deterministic RNG stream
    /// (`seed ⊕ rule_id ⊕ mix(batch)`) and the items run in parallel across
    /// [`GeneratorConfig::threads`] workers inside a bounded
    /// [`genie_parallel::par_stream`] window. The workers also fingerprint
    /// their candidates — the expensive half of dedup runs in parallel with
    /// synthesis — and batches reach the sink in canonical `(registry
    /// order, batch index)` order, where the [`ShardedDedup`] set
    /// ([`GeneratorConfig::shards`]) absorbs the precomputed keys (one
    /// worker per shard for large batches, inline otherwise), preserving
    /// first-wins semantics. The emitted sequence is therefore
    /// byte-identical for any thread count and any shard count. Peak memory
    /// is the in-flight window plus the dedup keys — never the full
    /// dataset.
    pub fn synthesize_streaming_with(
        &self,
        registry: &RuleRegistry,
        sink: impl FnMut(SynthesizedExample),
    ) -> SynthesisStats {
        self.synthesize_streaming_observed(registry, None, None, sink)
    }

    /// [`SentenceGenerator::synthesize_streaming_with`], with two optional
    /// hooks for incremental re-synthesis:
    ///
    /// * `provider` — consulted per `(rule, batch)` work item inside the
    ///   worker; a `Some` return substitutes cached candidates for live
    ///   instantiation (their utterances re-interned through the worker's
    ///   overlay, so symbol commit order stays canonical);
    /// * `observer` — called at the canonical sink for every completed
    ///   batch, in stream order, with the post-commit candidates, their
    ///   fingerprints and the recorded pool draws. This is how
    ///   `genie::live` builds its synthesis memo.
    ///
    /// With both hooks `None` this is exactly the plain streaming run.
    pub fn synthesize_streaming_observed(
        &self,
        registry: &RuleRegistry,
        provider: Option<BatchProvider<'_>>,
        mut observer: Option<BatchObserver<'_>>,
        mut sink: impl FnMut(SynthesizedExample),
    ) -> SynthesisStats {
        let pools = self.pools();
        let ctx = RuleCtx {
            library: self.library,
            datasets: &self.datasets,
            config: &self.config,
            vocab: &self.vocab,
        };
        let rules = registry.enabled_rules(&self.config);
        let target = self.config.target_per_rule;
        let batch_size = if self.config.batch_size == 0 {
            target.max(1)
        } else {
            self.config.batch_size
        };
        let seed = self.config.seed;
        let threads = self.config.threads;

        let mut items: Vec<WorkItem<'_>> = Vec::new();
        for rule in &rules {
            let mut remaining = target;
            let mut batch = 0u64;
            while remaining > 0 {
                let count = remaining.min(batch_size);
                items.push(WorkItem {
                    rule: *rule,
                    batch,
                    count,
                });
                remaining -= count;
                batch += 1;
            }
        }

        let dedup = ShardedDedup::new(self.config.shards);
        let mut stats = SynthesisStats::default();
        let interner = self.vocab.interner();
        // Keep enough windows in flight to feed every worker without ever
        // materializing more than `window` batches of candidates.
        let window = genie_parallel::resolve_threads(threads)
            .saturating_mul(4)
            .max(1);
        type WorkerBatch = (
            Vec<SynthesizedExample>,
            Vec<(u64, u64)>,
            PendingSymbols,
            Vec<PoolDraw>,
            bool,
        );
        genie_parallel::par_stream(
            threads,
            &items,
            window,
            |_, item| -> WorkerBatch {
                // Fresh text the rules render (timer values, predicates)
                // interns into this per-batch overlay; the sink commits the
                // pending fragments in canonical order.
                let mut local = LocalInterner::new(interner);
                if let Some(provide) = provider {
                    if let Some(cached) = provide(item.rule.rule_id(), item.batch, &mut local) {
                        return (
                            cached.candidates,
                            cached.fingerprints,
                            local.take_pending(),
                            cached.draws,
                            true,
                        );
                    }
                }
                let mut batch_rng = StdRng::seed_from_u64(genie_parallel::stream_seed(
                    seed,
                    item.rule.rule_id(),
                    item.batch,
                ));
                let mut sampler = PoolSampler::new(pools);
                let candidates: Vec<SynthesizedExample> = (0..item.count)
                    .filter_map(|_| {
                        item.rule
                            .instantiate(&ctx, &mut sampler, &mut local, &mut batch_rng)
                    })
                    .collect();
                // Fingerprinting the program is the O(program size) half of
                // dedup; doing it here means it parallelizes with synthesis,
                // leaving the sink O(utterance length) symbol hashing.
                let fingerprints: Vec<(u64, u64)> = candidates
                    .iter()
                    .map(|e| program_fingerprints(&e.program))
                    .collect();
                (
                    candidates,
                    fingerprints,
                    local.take_pending(),
                    sampler.take_draws(),
                    false,
                )
            },
            |index, (candidates, fingerprints, pending, draws, provided): WorkerBatch| {
                stats.batches += 1;
                stats.generated += candidates.len();
                // Ordered merge of the worker arena: global ids depend only
                // on the canonical stream order, never on scheduling.
                let remap = interner.commit(&pending);
                let mut candidates = candidates;
                let keys: Vec<u128> = candidates
                    .iter_mut()
                    .zip(&fingerprints)
                    .map(|(example, &fp)| {
                        remap.apply(&mut example.utterance);
                        example_stream_key(&example.utterance, fp)
                    })
                    .collect();
                if let Some(observe) = observer.as_deref_mut() {
                    let item = &items[index];
                    observe(BatchRecord {
                        rule_id: item.rule.rule_id(),
                        batch: item.batch,
                        candidates: candidates.clone(),
                        fingerprints,
                        draws,
                        provided,
                    });
                }
                let fresh = dedup.insert_batch(threads, &keys);
                for (example, fresh) in candidates.into_iter().zip(fresh) {
                    if fresh {
                        stats.emitted += 1;
                        sink(example);
                    } else {
                        stats.duplicates += 1;
                    }
                }
            },
        );
        stats
    }

    /// Synthesize TACL policies (§6.2) with their utterances.
    pub fn synthesize_policies(&self) -> Vec<(String, Policy)> {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(777));
        let pools = PhrasePools::build(
            &self.vocab,
            self.library,
            &self.datasets,
            &self.config,
            &mut rng,
        );
        let interner = self.vocab.interner();
        let people = self
            .datasets
            .get("tt:person_first_name")
            .expect("dataset exists");
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        // Single-threaded path: splice into a reused stream, render once per
        // accepted policy.
        let mut stream = TokenStream::new();
        for _ in 0..self.config.target_per_rule {
            // Query policies.
            if let Some(np) = pools.choose_query_phrase(&mut rng) {
                let person = people.sample(&mut rng).to_owned();
                let variant = self
                    .vocab
                    .variants(ConstructKind::PolicyQuery)
                    .choose(&mut rng)
                    .expect("variants nonempty");
                stream.clear();
                variant.splice(&mut stream, |piece, out| match piece {
                    crate::intern::VariantPiece::Person => interner.intern_words(&person, out),
                    _ => out.extend_from_slice(&np.utterance),
                });
                let utterance = interner.render(&stream);
                let predicate = np
                    .query
                    .as_ref()
                    .map(|q| merge_predicates(q))
                    .unwrap_or(Predicate::True);
                let policy = Policy {
                    source: Predicate::atom("source", CompareOp::Eq, Value::string(person)),
                    body: PolicyBody::Query {
                        function: np.function.clone(),
                        predicate,
                    },
                };
                let key = format!("{utterance}\t{policy}");
                if seen.insert(key) {
                    out.push((utterance, policy));
                }
            }
            // Action policies.
            if let Some(vp) = pools.action_verbs.choose(&mut rng) {
                let person = people.sample(&mut rng).to_owned();
                let variant = self
                    .vocab
                    .variants(ConstructKind::PolicyAction)
                    .choose(&mut rng)
                    .expect("variants nonempty");
                stream.clear();
                variant.splice(&mut stream, |piece, out| match piece {
                    crate::intern::VariantPiece::Person => interner.intern_words(&person, out),
                    _ => out.extend_from_slice(&vp.utterance),
                });
                let utterance = interner.render(&stream);
                let action = vp.action.as_ref().expect("action phrase");
                let mut predicate = Predicate::True;
                for param in &action.in_params {
                    if param.value.is_constant() {
                        let atom =
                            Predicate::atom(param.name.clone(), CompareOp::Eq, param.value.clone());
                        predicate = if predicate.is_true() {
                            atom
                        } else {
                            predicate.and(atom)
                        };
                    }
                }
                let policy = Policy {
                    source: Predicate::atom("source", CompareOp::Eq, Value::string(person)),
                    body: PolicyBody::Action {
                        function: vp.function.clone(),
                        predicate,
                    },
                };
                let key = format!("{utterance}\t{policy}");
                if seen.insert(key) {
                    out.push((utterance, policy));
                }
            }
        }
        out
    }
}

fn merge_predicates(query: &Query) -> Predicate {
    let mut merged = Predicate::True;
    for predicate in query.predicates() {
        merged = if merged.is_true() {
            predicate.clone()
        } else {
            merged.and(predicate.clone())
        };
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::canonical::canonicalized;
    use thingtalk::typecheck::typecheck;

    fn generator(library: &Thingpedia, target: usize, seed: u64) -> SentenceGenerator<'_> {
        SentenceGenerator::new(
            library,
            GeneratorConfig {
                target_per_rule: target,
                max_depth: 5,
                instantiations_per_template: 1,
                seed,
                include_aggregation: true,
                include_timers: true,
                threads: 0,
                ..GeneratorConfig::default()
            },
        )
    }

    #[test]
    fn synthesis_produces_varied_examples() {
        let library = Thingpedia::builtin();
        let examples = generator(&library, 30, 1).synthesize();
        assert!(examples.len() > 150, "only {} examples", examples.len());
        assert!(examples.iter().any(|e| e.flags.primitive));
        assert!(examples.iter().any(|e| !e.flags.primitive));
        assert!(examples.iter().any(|e| e.flags.filter));
        assert!(examples.iter().any(|e| e.flags.param_passing));
        assert!(examples.iter().any(|e| e.flags.event_driven));
        assert!(examples.iter().any(|e| e.flags.aggregation));
    }

    #[test]
    fn synthesized_programs_typecheck_and_canonicalize() {
        let library = Thingpedia::builtin();
        let gen = generator(&library, 15, 2);
        let examples = gen.synthesize();
        for example in &examples {
            typecheck(&library, &example.program).unwrap_or_else(|e| {
                panic!(
                    "synthesized program does not typecheck: `{}` => `{}`: {e}",
                    example.utterance_text(gen.interner()),
                    example.program
                )
            });
            let canonical = canonicalized(&library, &example.program);
            let again = canonicalized(&library, &canonical);
            assert_eq!(canonical, again, "canonicalization not idempotent");
        }
    }

    #[test]
    fn utterances_have_no_placeholders_left() {
        let library = Thingpedia::builtin();
        let gen = generator(&library, 10, 3);
        let examples = gen.synthesize();
        for example in &examples {
            let text = example.utterance_text(gen.interner());
            assert!(!text.contains('$'), "placeholder left in `{text}`");
            assert!(!text.trim().is_empty());
            assert!(!example.utterance.is_empty());
        }
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let library = Thingpedia::builtin();
        let a = generator(&library, 10, 7).synthesize();
        let b = generator(&library, 10, 7).synthesize();
        let c = generator(&library, 10, 8).synthesize();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn output_is_identical_across_thread_and_shard_counts() {
        let library = Thingpedia::builtin();
        let run = |threads: usize, shards: usize| {
            SentenceGenerator::new(
                &library,
                GeneratorConfig {
                    target_per_rule: 25,
                    seed: 9,
                    instantiations_per_template: 1,
                    include_aggregation: true,
                    threads,
                    shards,
                    batch_size: 8,
                    ..GeneratorConfig::default()
                },
            )
            .synthesize()
        };
        let sequential = run(1, 1);
        for threads in [2, 4, 0] {
            for shards in [1, 4, 16] {
                assert_eq!(
                    run(threads, shards),
                    sequential,
                    "threads = {threads} shards = {shards}"
                );
            }
        }
    }

    #[test]
    fn streaming_and_collecting_agree() {
        let library = Thingpedia::builtin();
        let generator = generator(&library, 20, 12);
        let collected = generator.synthesize();
        let mut streamed = Vec::new();
        let stats = generator.synthesize_streaming(|example| streamed.push(example));
        assert_eq!(streamed, collected);
        assert_eq!(stats.emitted, collected.len());
        assert_eq!(stats.generated, stats.emitted + stats.duplicates);
        assert!(stats.batches > 0);
    }

    #[test]
    fn batch_streams_are_independent() {
        // Distinct batches of one rule must not replay each other's samples:
        // with a batch size smaller than the target, the per-batch streams
        // produce a more varied candidate set than one long stream would if
        // the seeds collided. Concretely, the first example of batch 1 must
        // not equal the first example of batch 0.
        let library = Thingpedia::builtin();
        let run = |batch_size: usize| {
            SentenceGenerator::new(
                &library,
                GeneratorConfig {
                    target_per_rule: 16,
                    instantiations_per_template: 1,
                    seed: 3,
                    batch_size,
                    include_aggregation: false,
                    include_timers: false,
                    ..GeneratorConfig::default()
                },
            )
            .synthesize()
        };
        // Sanity: batch size participates in dataset identity...
        assert_ne!(run(4), run(16));
        // ...while repeated runs at a fixed batch size are stable.
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn target_size_controls_output_size() {
        let library = Thingpedia::builtin();
        let small = generator(&library, 5, 1).synthesize();
        let large = generator(&library, 40, 1).synthesize();
        assert!(large.len() > small.len() * 2);
    }

    #[test]
    fn policies_are_synthesized_for_tacl() {
        let library = Thingpedia::builtin();
        let policies = generator(&library, 40, 4).synthesize_policies();
        assert!(policies.len() > 40);
        assert!(policies.iter().any(|(_, p)| p.is_query_policy()));
        assert!(policies.iter().any(|(_, p)| !p.is_query_policy()));
        for (utterance, _) in &policies {
            assert!(!utterance.contains('$'));
        }
    }

    #[test]
    fn low_depth_disables_compound_constructs() {
        let library = Thingpedia::builtin();
        let config = GeneratorConfig {
            target_per_rule: 20,
            max_depth: 2,
            instantiations_per_template: 1,
            seed: 5,
            include_aggregation: false,
            include_timers: false,
            threads: 0,
            ..GeneratorConfig::default()
        };
        let examples = SentenceGenerator::new(&library, config).synthesize();
        assert!(examples
            .iter()
            .all(|e| e.flags.primitive || !e.flags.param_passing));
        assert!(examples.iter().all(|e| e.program.invocations().len() <= 1));
    }

    #[test]
    fn custom_rules_extend_the_registry() {
        use crate::phrases::PhraseKind;
        use crate::pools::PoolId;
        use crate::registry::ConstructRule;

        /// A toy scenario rule: negated commands ("do not $vp").
        struct RefuseRule;

        impl ConstructRule for RefuseRule {
            fn kind(&self) -> ConstructKind {
                ConstructKind::DoCommand
            }

            fn label(&self) -> &'static str {
                "refuse"
            }

            fn inputs(&self) -> &'static [PhraseKind] {
                &[PhraseKind::ActionVerb]
            }

            fn instantiate(
                &self,
                _ctx: &RuleCtx<'_>,
                pools: &mut PoolSampler<'_>,
                local: &mut LocalInterner<'_>,
                rng: &mut StdRng,
            ) -> Option<SynthesizedExample> {
                let vp = pools.choose(PoolId::ActionVerbs, rng)?;
                let program = thingtalk::Program::do_action(vp.action.clone()?);
                let mut utterance = TokenStream::new();
                local.intern_words("do not", &mut utterance);
                utterance.extend_from_slice(&vp.utterance);
                Some(SynthesizedExample::new(
                    utterance,
                    program,
                    vp.depth + 1,
                    self.label(),
                ))
            }
        }

        let library = Thingpedia::builtin();
        let mut registry = RuleRegistry::builtin();
        registry.register(Box::new(RefuseRule));
        let examples = generator(&library, 10, 6).synthesize_with(&registry);
        assert!(examples.iter().any(|e| e.construct == "refuse"));
        // Registry order is output order: the custom rule's examples come
        // after the builtin ones, so builtin output is unperturbed.
        let builtin_only = generator(&library, 10, 6).synthesize();
        let prefix: Vec<_> = examples
            .iter()
            .filter(|e| e.construct != "refuse")
            .cloned()
            .collect();
        assert_eq!(prefix, builtin_only);
    }
}
