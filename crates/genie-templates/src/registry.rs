//! The construct-rule registry: the extension point of the synthesis engine.
//!
//! Each construct template of §3.1 is a [`ConstructRule`]: a small object
//! that declares which phrase categories it consumes, at which derivation
//! depth it becomes available, and how to instantiate one sampled derivation
//! into a [`SynthesizedExample`]. The [`RuleRegistry`] collects the rules;
//! the generator drives every enabled rule with its own deterministic RNG
//! stream (`seed ⊕ rule_id`), which is what makes rule-level parallelism
//! byte-identical to the sequential engine.
//!
//! New constructs — aggregation variants, timers, policies, future
//! scenario-diversity rules — plug in by implementing the trait and calling
//! [`RuleRegistry::register`]; nothing in the generator is hand-wired to a
//! construct list anymore.

use rand::rngs::StdRng;

use thingpedia::{ParamDatasets, Thingpedia};

use crate::constructs::ConstructKind;
use crate::dedup::fingerprint;
use crate::example::SynthesizedExample;
use crate::generator::GeneratorConfig;
use crate::intern::{LocalInterner, SynthVocab};
use crate::phrases::PhraseKind;
use crate::pools::PoolSampler;
use crate::rules::builtin_rules;

/// Shared read-only context handed to rules during instantiation.
pub struct RuleCtx<'a> {
    /// The skill library.
    pub library: &'a Thingpedia,
    /// The parameter datasets.
    pub datasets: &'a ParamDatasets,
    /// The generator configuration.
    pub config: &'a GeneratorConfig,
    /// The compiled synthesis vocabulary (arena handle, compiled construct
    /// variants, common splice symbols).
    pub vocab: &'a SynthVocab,
}

/// One construct template: a grammar rule combining phrase derivations into
/// a full command.
///
/// Rules must be `Send + Sync`: the generator instantiates them from worker
/// threads, each with its own RNG stream.
pub trait ConstructRule: Send + Sync {
    /// The construct kind this rule implements.
    fn kind(&self) -> ConstructKind;

    /// A stable label, used in dataset statistics and as the basis of the
    /// rule's RNG stream.
    fn label(&self) -> &'static str {
        self.kind().label()
    }

    /// The phrase categories this rule consumes from the pools.
    fn inputs(&self) -> &'static [PhraseKind];

    /// The minimum `max_depth` at which this rule participates (compound
    /// constructs need depth ≥ 3: two phrases plus the combining rule).
    fn min_depth(&self) -> usize {
        1
    }

    /// Whether the rule participates under the given configuration.
    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.max_depth >= self.min_depth()
    }

    /// A stable 64-bit id derived from the label; XORed into the master
    /// seed to give each rule an independent deterministic RNG stream.
    fn rule_id(&self) -> u64 {
        fingerprint(self.label())
    }

    /// Sample one derivation. `None` rejects the combination (the
    /// semantic-function rejection of §3.1).
    ///
    /// `pools` is a recording [`PoolSampler`]: every phrase the rule draws
    /// is logged, which is how the live delta closure decides whether a
    /// skill update invalidates this batch. `local` is the worker's
    /// interning overlay: text the rule renders fresh (timer values, edge
    /// predicates) interns through it, and the engine commits the overlay's
    /// pending fragments at the canonical sink so symbol assignment stays
    /// worker-count-invariant.
    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample>;
}

/// An ordered collection of construct rules. Registry order is output
/// order: results are concatenated rule by rule, so adding a rule at the end
/// never perturbs the output of existing rules.
pub struct RuleRegistry {
    rules: Vec<Box<dyn ConstructRule>>,
}

impl RuleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        RuleRegistry { rules: Vec::new() }
    }

    /// The builtin dataset rules, in canonical order: the ten main ThingTalk
    /// constructs, then the TT+A aggregation constructs.
    pub fn builtin() -> Self {
        let mut registry = RuleRegistry::new();
        for rule in builtin_rules() {
            registry.register(rule);
        }
        registry
    }

    /// Append a rule. Duplicate labels are rejected: the label determines
    /// the rule's RNG stream, so two rules sharing one would be correlated.
    ///
    /// # Panics
    /// Panics when a rule with the same label is already registered.
    pub fn register(&mut self, rule: Box<dyn ConstructRule>) {
        assert!(
            self.rules.iter().all(|r| r.label() != rule.label()),
            "duplicate construct rule label `{}`",
            rule.label()
        );
        self.rules.push(rule);
    }

    /// All registered rules, in registration order.
    pub fn rules(&self) -> &[Box<dyn ConstructRule>] {
        &self.rules
    }

    /// The rules enabled under a configuration, in registration order.
    pub fn enabled_rules(&self, config: &GeneratorConfig) -> Vec<&dyn ConstructRule> {
        self.rules
            .iter()
            .filter(|rule| rule.enabled(config))
            .map(|rule| rule.as_ref())
            .collect()
    }
}

impl Default for RuleRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_covers_the_main_constructs() {
        let registry = RuleRegistry::builtin();
        let labels: Vec<&str> = registry.rules().iter().map(|r| r.label()).collect();
        for kind in ConstructKind::MAIN {
            assert!(labels.contains(&kind.label()), "missing rule {kind:?}");
        }
        assert!(labels.contains(&ConstructKind::Aggregation.label()));
        assert!(labels.contains(&ConstructKind::CountAggregation.label()));
    }

    #[test]
    fn rule_ids_are_distinct_and_stable() {
        let registry = RuleRegistry::builtin();
        let mut ids: Vec<u64> = registry.rules().iter().map(|r| r.rule_id()).collect();
        let count = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), count, "rule ids collide");
        // Stability: the id is a pure function of the label.
        let registry2 = RuleRegistry::builtin();
        assert_eq!(
            registry.rules()[0].rule_id(),
            registry2.rules()[0].rule_id()
        );
    }

    #[test]
    fn depth_gates_compound_rules() {
        let registry = RuleRegistry::builtin();
        let shallow = GeneratorConfig {
            max_depth: 2,
            ..GeneratorConfig::default()
        };
        let deep = GeneratorConfig {
            max_depth: 5,
            ..GeneratorConfig::default()
        };
        assert!(registry.enabled_rules(&shallow).len() < registry.enabled_rules(&deep).len());
    }

    #[test]
    #[should_panic(expected = "duplicate construct rule label")]
    fn duplicate_labels_are_rejected() {
        let mut registry = RuleRegistry::builtin();
        for rule in builtin_rules() {
            registry.register(rule);
        }
    }
}
