//! Deduplication keys for synthesized examples.
//!
//! The old engine deduplicated by rendering every program to its full
//! surface-syntax string and storing `utterance\tprogram` in a `BTreeSet` —
//! an allocation and a O(program size) render per candidate. The engine now
//! fingerprints the structural [`Hash`] of the program together with the
//! utterance into a 128-bit key using a fixed-key FNV-1a hasher, so dedup
//! needs no rendering and the keys are stable across runs, platforms, and
//! thread counts (unlike `std`'s `RandomState`).

use std::hash::{Hash, Hasher};

use thingtalk::Program;

/// FNV-1a, 64-bit, with a configurable offset basis so two independent
/// streams can be combined into a 128-bit fingerprint.
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher with the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// A hasher seeded with an alternate basis (for the second key half).
    pub fn with_basis(basis: u64) -> Self {
        Fnv64 { state: basis }
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The 64-bit FNV-1a fingerprint of any hashable value.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv64::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// The 128-bit dedup key of an (utterance, program) pair: two independent
/// FNV streams over the structural hash, so collisions are negligible at
/// dataset scale.
pub fn example_key(utterance: &str, program: &Program) -> u128 {
    let mut lo = Fnv64::new();
    utterance.hash(&mut lo);
    program.hash(&mut lo);
    let mut hi = Fnv64::with_basis(0x9ae1_6a3b_2f90_404f);
    utterance.hash(&mut hi);
    program.hash(&mut hi);
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    #[test]
    fn keys_separate_distinct_examples() {
        let a = parse_program("now => @com.gmail.inbox() => notify").unwrap();
        let b = parse_program("now => @com.dropbox.list_folder() => notify").unwrap();
        assert_ne!(
            example_key("show my email", &a),
            example_key("show my files", &a)
        );
        assert_ne!(
            example_key("show my email", &a),
            example_key("show my email", &b)
        );
        assert_eq!(
            example_key("show my email", &a),
            example_key("show my email", &a)
        );
    }

    #[test]
    fn keys_are_stable_values() {
        // Fixed-key hashing: the fingerprint of a known string must never
        // change across runs (this would silently change dedup decisions).
        assert_eq!(fingerprint("genie"), {
            let mut h = Fnv64::new();
            "genie".hash(&mut h);
            h.finish()
        });
        let again = fingerprint("genie");
        assert_eq!(fingerprint("genie"), again);
    }

    #[test]
    fn structurally_equal_programs_share_a_key() {
        let a = parse_program("now => @com.gmail.inbox() filter sender == \"alice\" => notify")
            .unwrap();
        let b = parse_program("now => @com.gmail.inbox() filter sender == \"alice\" => notify")
            .unwrap();
        assert_eq!(example_key("u", &a), example_key("u", &b));
    }
}
