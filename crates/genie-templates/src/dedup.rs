//! Deduplication keys for synthesized examples.
//!
//! The old engine deduplicated by rendering every program to its full
//! surface-syntax string and storing `utterance\tprogram` in a `BTreeSet` —
//! an allocation and a O(program size) render per candidate. The engine now
//! fingerprints the structural [`Hash`] of the program together with the
//! utterance into a 128-bit key using a fixed-key FNV-1a hasher, so dedup
//! needs no rendering and the keys are stable across runs, platforms, and
//! thread counts (unlike `std`'s `RandomState`).

use std::hash::{Hash, Hasher};

use thingtalk::Program;

use crate::intern::Symbol;

/// FNV-1a, 64-bit, with a configurable offset basis so two independent
/// streams can be combined into a 128-bit fingerprint.
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher with the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// A hasher seeded with an alternate basis (for the second key half).
    pub fn with_basis(basis: u64) -> Self {
        Fnv64 { state: basis }
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The 64-bit FNV-1a fingerprint of any hashable value.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv64::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// The alternate offset basis of the high key half.
const HI_BASIS: u64 = 0x9ae1_6a3b_2f90_404f;

/// The 128-bit dedup key of an (utterance, program) pair: two independent
/// FNV streams over the structural hash, so collisions are negligible at
/// dataset scale.
pub fn example_key(utterance: &str, program: &Program) -> u128 {
    let mut lo = Fnv64::new();
    utterance.hash(&mut lo);
    program.hash(&mut lo);
    let mut hi = Fnv64::with_basis(HI_BASIS);
    utterance.hash(&mut hi);
    program.hash(&mut hi);
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

/// Two independent FNV streams over one traversal — the same 128 bits of
/// key material as hashing twice, at half the hashing cost. Workers use it
/// to fingerprint the program (the expensive structural half of the dedup
/// key) in parallel with synthesis.
pub struct Fnv128 {
    lo: Fnv64,
    hi: Fnv64,
}

impl Fnv128 {
    /// A paired hasher with the standard and alternate bases.
    pub fn new() -> Self {
        Fnv128 {
            lo: Fnv64::new(),
            hi: Fnv64::with_basis(HI_BASIS),
        }
    }

    /// The two stream states.
    pub fn finish128(&self) -> (u64, u64) {
        (self.lo.finish(), self.hi.finish())
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv128 {
    fn finish(&self) -> u64 {
        self.lo.finish()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.lo.write(bytes);
        self.hi.write(bytes);
    }
}

/// The structural fingerprint pair of a program — computed worker-side, in
/// parallel with synthesis; combined with the utterance symbols at the
/// canonical sink ([`example_stream_key`]).
pub fn program_fingerprints(program: &Program) -> (u64, u64) {
    let mut hasher = Fnv128::new();
    program.hash(&mut hasher);
    hasher.finish128()
}

/// The 128-bit dedup key of an interned utterance and a program
/// fingerprint pair. The interner is injective (symbol equality ⇔ fragment
/// equality ⇔ rendered-text equality), so keying on the 4-byte symbol ids
/// preserves exactly the keep/drop decisions of [`example_key`] over
/// rendered text — without touching a single utterance byte.
pub fn example_stream_key(utterance: &[Symbol], program_fp: (u64, u64)) -> u128 {
    let mut lo = Fnv64::new();
    let mut hi = Fnv64::with_basis(HI_BASIS);
    for &symbol in utterance {
        let bytes = symbol.raw().to_le_bytes();
        lo.write(&bytes);
        hi.write(&bytes);
    }
    // Length then the program halves: keeps (utterance, program) injective
    // in the hashed byte stream.
    let len = (utterance.len() as u64).to_le_bytes();
    lo.write(&len);
    hi.write(&len);
    lo.write(&program_fp.0.to_le_bytes());
    hi.write(&program_fp.1.to_le_bytes());
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    #[test]
    fn keys_separate_distinct_examples() {
        let a = parse_program("now => @com.gmail.inbox() => notify").unwrap();
        let b = parse_program("now => @com.dropbox.list_folder() => notify").unwrap();
        assert_ne!(
            example_key("show my email", &a),
            example_key("show my files", &a)
        );
        assert_ne!(
            example_key("show my email", &a),
            example_key("show my email", &b)
        );
        assert_eq!(
            example_key("show my email", &a),
            example_key("show my email", &a)
        );
    }

    #[test]
    fn keys_are_stable_values() {
        // Fixed-key hashing: the fingerprint of a known string must never
        // change across runs (this would silently change dedup decisions).
        assert_eq!(fingerprint("genie"), {
            let mut h = Fnv64::new();
            "genie".hash(&mut h);
            h.finish()
        });
        let again = fingerprint("genie");
        assert_eq!(fingerprint("genie"), again);
    }

    #[test]
    fn structurally_equal_programs_share_a_key() {
        let a = parse_program("now => @com.gmail.inbox() filter sender == \"alice\" => notify")
            .unwrap();
        let b = parse_program("now => @com.gmail.inbox() filter sender == \"alice\" => notify")
            .unwrap();
        assert_eq!(example_key("u", &a), example_key("u", &b));
    }
}
