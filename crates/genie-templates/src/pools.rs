//! Phrase-derivation pools: the sampled building blocks construct rules
//! combine into programs.
//!
//! Pools are built once per synthesis run (sequentially, from the master
//! seed) and then shared read-only across all rule workers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use thingpedia::{ParamDatasets, Thingpedia};

use crate::generator::GeneratorConfig;
use crate::intern::SynthVocab;
use crate::phrases::{add_filter, instantiate, PhraseDerivation, PhraseKind};

/// How many times the filter loop retries per missing filtered phrase before
/// recording a shortfall.
const FILTER_RETRY_FACTOR: usize = 4;

/// The instantiated phrase pools, indexed by [`PhraseKind`], plus filtered
/// variants of the noun and when pools.
#[derive(Debug, Default)]
pub struct PhrasePools {
    /// Noun phrases denoting queries.
    pub nouns: Vec<PhraseDerivation>,
    /// Verb phrases denoting queries.
    pub query_verbs: Vec<PhraseDerivation>,
    /// Verb phrases denoting actions.
    pub action_verbs: Vec<PhraseDerivation>,
    /// When phrases denoting monitored queries.
    pub whens: Vec<PhraseDerivation>,
    /// Noun phrases with one filter predicate added (depth 2).
    pub filtered_nouns: Vec<PhraseDerivation>,
    /// When phrases with one filter predicate added (depth 2).
    pub filtered_whens: Vec<PhraseDerivation>,
    /// How far the filtered pools fell short of their target after retries
    /// (0 when the target was met).
    pub filter_shortfall: usize,
}

impl PhrasePools {
    /// Instantiate the pools from the library's primitive templates.
    ///
    /// The filtered pools aim for `config.target_per_rule` entries each.
    /// `add_filter` can reject a candidate (e.g. a function without output
    /// parameters), so the loop retries with fresh base phrases — up to
    /// `FILTER_RETRY_FACTOR`× the target — instead of silently dropping the
    /// failed iterations; a remaining shortfall is recorded and logged
    /// (unless [`GeneratorConfig::quiet`] is set).
    pub fn build(
        vocab: &SynthVocab,
        library: &Thingpedia,
        datasets: &ParamDatasets,
        config: &GeneratorConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut pools = PhrasePools::default();
        for template in library.templates() {
            for _ in 0..config.instantiations_per_template.max(1) {
                let Some(derivation) = instantiate(vocab, library, datasets, template, rng) else {
                    continue;
                };
                match derivation.kind {
                    PhraseKind::QueryNoun => pools.nouns.push(derivation),
                    PhraseKind::QueryVerb => pools.query_verbs.push(derivation),
                    PhraseKind::ActionVerb => pools.action_verbs.push(derivation),
                    PhraseKind::WhenPhrase => pools.whens.push(derivation),
                }
            }
        }
        if config.max_depth >= 2 {
            let target = config.target_per_rule.max(10);
            let shortfall_nouns = fill_filtered(
                &pools.nouns,
                &mut pools.filtered_nouns,
                target,
                vocab,
                library,
                datasets,
                rng,
            );
            let shortfall_whens = fill_filtered(
                &pools.whens,
                &mut pools.filtered_whens,
                target,
                vocab,
                library,
                datasets,
                rng,
            );
            pools.filter_shortfall = shortfall_nouns + shortfall_whens;
            // The shortfall is recorded unconditionally; the diagnostic is
            // gated so bench runs and machine-readable output stay clean.
            if pools.filter_shortfall > 0 && !config.quiet {
                eprintln!(
                    "genie-templates: filtered phrase pools fell {} short of the target of {} after {}x retries",
                    pools.filter_shortfall,
                    target,
                    FILTER_RETRY_FACTOR,
                );
            }
        }
        pools
    }

    /// A query noun phrase, preferring a filtered one 30% of the time.
    pub fn choose_query_phrase<'p>(&'p self, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
        if !self.filtered_nouns.is_empty() && rng.gen_bool(0.3) {
            self.filtered_nouns.choose(rng)
        } else {
            self.nouns.choose(rng)
        }
    }

    /// A when phrase, preferring a filtered one 30% of the time.
    pub fn choose_when_phrase<'p>(&'p self, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
        if !self.filtered_whens.is_empty() && rng.gen_bool(0.3) {
            self.filtered_whens.choose(rng)
        } else {
            self.whens.choose(rng)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fill_filtered(
    base: &[PhraseDerivation],
    out: &mut Vec<PhraseDerivation>,
    target: usize,
    vocab: &SynthVocab,
    library: &Thingpedia,
    datasets: &ParamDatasets,
    rng: &mut StdRng,
) -> usize {
    if base.is_empty() {
        return target;
    }
    let max_attempts = target * FILTER_RETRY_FACTOR;
    let mut attempts = 0;
    while out.len() < target && attempts < max_attempts {
        attempts += 1;
        let Some(candidate) = base.choose(rng) else {
            break;
        };
        if let Some(filtered) = add_filter(vocab, library, datasets, candidate, rng) {
            out.push(filtered);
        }
    }
    target.saturating_sub(out.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn filtered_pools_reach_their_target() {
        let library = Thingpedia::builtin();
        let datasets = ParamDatasets::builtin();
        let config = GeneratorConfig {
            target_per_rule: 50,
            ..GeneratorConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let vocab = SynthVocab::new(crate::intern::shared().clone());
        let pools = PhrasePools::build(&vocab, &library, &datasets, &config, &mut rng);
        // add_filter only rejects functions without output parameters; with
        // retries the pools must reach the sampling target.
        assert_eq!(pools.filtered_nouns.len(), 50);
        assert_eq!(pools.filtered_whens.len(), 50);
        assert_eq!(pools.filter_shortfall, 0);
    }

    #[test]
    fn shallow_synthesis_skips_filtered_pools() {
        let library = Thingpedia::builtin();
        let datasets = ParamDatasets::builtin();
        let config = GeneratorConfig {
            max_depth: 1,
            ..GeneratorConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let vocab = SynthVocab::new(crate::intern::shared().clone());
        let pools = PhrasePools::build(&vocab, &library, &datasets, &config, &mut rng);
        assert!(pools.filtered_nouns.is_empty());
        assert!(pools.filtered_whens.is_empty());
        assert!(!pools.nouns.is_empty());
    }
}
