//! Phrase-derivation pools: the sampled building blocks construct rules
//! combine into programs.
//!
//! Pools are built once per synthesis run (sequentially, from the master
//! seed) and then shared read-only across all rule workers. Two build
//! modes exist:
//!
//! * the legacy sequential mode threads **one** RNG through every template
//!   instantiation, so any library edit perturbs every later pool entry;
//! * the *pool-stream* mode ([`GeneratorConfig::pool_streams`]) derives an
//!   independent RNG stream per `(template identity, instantiation)` and
//!   per filtered-fill attempt, so a skill delta leaves the pool entries of
//!   untouched classes byte-identical — the property the live incremental
//!   re-synthesis of `genie::live` is built on. The mode is part of the
//!   dataset identity (like [`GeneratorConfig::batch_size`]).
//!
//! Construct rules draw entries through a recording [`PoolSampler`], so the
//! delta closure knows the exact `(pool, index)` pairs each `(rule, batch)`
//! work item touched — including draws the rule later rejected.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use thingpedia::{ParamDatasets, PrimitiveTemplate, Thingpedia};

use crate::dedup::fingerprint;
use crate::generator::GeneratorConfig;
use crate::intern::{Interner, SynthVocab};
use crate::phrases::{add_filter, instantiate, PhraseDerivation, PhraseKind};

/// How many times the filter loop retries per missing filtered phrase before
/// recording a shortfall.
const FILTER_RETRY_FACTOR: usize = 4;

/// The instantiated phrase pools, indexed by [`PhraseKind`], plus filtered
/// variants of the noun and when pools.
#[derive(Debug, Default)]
pub struct PhrasePools {
    /// Noun phrases denoting queries.
    pub nouns: Vec<PhraseDerivation>,
    /// Verb phrases denoting queries.
    pub query_verbs: Vec<PhraseDerivation>,
    /// Verb phrases denoting actions.
    pub action_verbs: Vec<PhraseDerivation>,
    /// When phrases denoting monitored queries.
    pub whens: Vec<PhraseDerivation>,
    /// Noun phrases with one filter predicate added (depth 2).
    pub filtered_nouns: Vec<PhraseDerivation>,
    /// When phrases with one filter predicate added (depth 2).
    pub filtered_whens: Vec<PhraseDerivation>,
    /// How far the filtered pools fell short of their target after retries
    /// (0 when the target was met).
    pub filter_shortfall: usize,
}

impl PhrasePools {
    /// Instantiate the pools from the library's primitive templates.
    ///
    /// The filtered pools aim for `config.target_per_rule` entries each.
    /// `add_filter` can reject a candidate (e.g. a function without output
    /// parameters), so the loop retries with fresh base phrases — up to
    /// `FILTER_RETRY_FACTOR`× the target — instead of silently dropping the
    /// failed iterations; a remaining shortfall is recorded and logged
    /// (unless [`GeneratorConfig::quiet`] is set).
    pub fn build(
        vocab: &SynthVocab,
        library: &Thingpedia,
        datasets: &ParamDatasets,
        config: &GeneratorConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut pools = PhrasePools::default();
        if config.pool_streams {
            // Per-template streams: the RNG of each instantiation is a pure
            // function of (seed, template identity, occurrence, index), so a
            // library delta only perturbs the entries of the edited class.
            let mut occurrences: HashMap<u64, u64> = HashMap::new();
            for template in library.templates() {
                let tid = template_identity(template);
                let slot = occurrences.entry(tid).or_insert(0);
                let occurrence = *slot;
                *slot += 1;
                for inst in 0..config.instantiations_per_template.max(1) {
                    let mut trng = StdRng::seed_from_u64(genie_parallel::stream_seed(
                        config.seed ^ POOL_TEMPLATE_TAG,
                        tid.wrapping_add(occurrence.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        inst as u64,
                    ));
                    let Some(derivation) =
                        instantiate(vocab, library, datasets, template, &mut trng)
                    else {
                        continue;
                    };
                    pools.push(derivation);
                }
            }
        } else {
            for template in library.templates() {
                for _ in 0..config.instantiations_per_template.max(1) {
                    let Some(derivation) = instantiate(vocab, library, datasets, template, rng)
                    else {
                        continue;
                    };
                    pools.push(derivation);
                }
            }
        }
        if config.max_depth >= 2 {
            let target = config.target_per_rule.max(10);
            let shortfall_nouns = fill_filtered(
                &pools.nouns,
                &mut pools.filtered_nouns,
                target,
                vocab,
                library,
                datasets,
                config.pool_streams.then_some((config.seed, 1)),
                rng,
            );
            let shortfall_whens = fill_filtered(
                &pools.whens,
                &mut pools.filtered_whens,
                target,
                vocab,
                library,
                datasets,
                config.pool_streams.then_some((config.seed, 2)),
                rng,
            );
            pools.filter_shortfall = shortfall_nouns + shortfall_whens;
            // The shortfall is recorded unconditionally; the diagnostic is
            // gated so bench runs and machine-readable output stay clean.
            if pools.filter_shortfall > 0 && !config.quiet {
                eprintln!(
                    "genie-templates: filtered phrase pools fell {} short of the target of {} after {}x retries",
                    pools.filter_shortfall,
                    target,
                    FILTER_RETRY_FACTOR,
                );
            }
        }
        pools
    }

    fn push(&mut self, derivation: PhraseDerivation) {
        match derivation.kind {
            PhraseKind::QueryNoun => self.nouns.push(derivation),
            PhraseKind::QueryVerb => self.query_verbs.push(derivation),
            PhraseKind::ActionVerb => self.action_verbs.push(derivation),
            PhraseKind::WhenPhrase => self.whens.push(derivation),
        }
    }

    /// The entries of one pool.
    pub fn slice(&self, pool: PoolId) -> &[PhraseDerivation] {
        match pool {
            PoolId::Nouns => &self.nouns,
            PoolId::QueryVerbs => &self.query_verbs,
            PoolId::ActionVerbs => &self.action_verbs,
            PoolId::Whens => &self.whens,
            PoolId::FilteredNouns => &self.filtered_nouns,
            PoolId::FilteredWhens => &self.filtered_whens,
        }
    }

    /// Per-entry content digests, computed at the *rendered text* level so
    /// pools built in different arenas (two snapshot versions) compare
    /// correctly. This is what the live delta closure diffs.
    pub fn content_digests(&self, interner: &Interner) -> PoolDigests {
        let digest_pool = |entries: &[PhraseDerivation]| {
            entries
                .iter()
                .map(|entry| entry_digest(interner, entry))
                .collect()
        };
        PoolDigests {
            entries: PoolId::ALL.map(|pool| digest_pool(self.slice(pool))),
        }
    }

    /// A query noun phrase, preferring a filtered one 30% of the time.
    pub fn choose_query_phrase<'p>(&'p self, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
        if !self.filtered_nouns.is_empty() && rng.gen_bool(0.3) {
            self.filtered_nouns.choose(rng)
        } else {
            self.nouns.choose(rng)
        }
    }

    /// A when phrase, preferring a filtered one 30% of the time.
    pub fn choose_when_phrase<'p>(&'p self, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
        if !self.filtered_whens.is_empty() && rng.gen_bool(0.3) {
            self.filtered_whens.choose(rng)
        } else {
            self.whens.choose(rng)
        }
    }
}

/// RNG-stream domain tag for per-template pool instantiation.
const POOL_TEMPLATE_TAG: u64 = 0x504f_4f4c_5354_524d;
/// RNG-stream domain tag for per-attempt filtered-pool fills.
const POOL_FILTER_TAG: u64 = 0x504f_4f4c_4649_4c54;

/// The stable identity of a primitive template: everything instantiation
/// reads off it, but **not** its position in the library — so inserting or
/// removing another class's templates never re-keys this one's RNG stream.
fn template_identity(template: &PrimitiveTemplate) -> u64 {
    fingerprint(&(
        template.class.as_str(),
        template.function.as_str(),
        template.category.label(),
        template.utterance.as_str(),
        format!("{:?}", template.preset_params),
    ))
}

/// Content digest of one pool entry, over rendered text and the program
/// fragments — arena-independent, so digests from two snapshot versions
/// are comparable.
fn entry_digest(interner: &Interner, entry: &PhraseDerivation) -> u64 {
    fingerprint(&(
        format!("{:?}", entry.kind),
        entry.depth,
        format!("{:?}", entry.function),
        interner.render(&entry.utterance),
        format!("{:?}", entry.query),
        format!("{:?}", entry.action),
    ))
}

#[allow(clippy::too_many_arguments)]
fn fill_filtered(
    base: &[PhraseDerivation],
    out: &mut Vec<PhraseDerivation>,
    target: usize,
    vocab: &SynthVocab,
    library: &Thingpedia,
    datasets: &ParamDatasets,
    streams: Option<(u64, u64)>,
    rng: &mut StdRng,
) -> usize {
    if base.is_empty() {
        return target;
    }
    let max_attempts = target * FILTER_RETRY_FACTOR;
    let mut attempts = 0;
    while out.len() < target && attempts < max_attempts {
        match streams {
            // Pool-stream mode: every attempt draws from its own RNG stream,
            // so an attempt's randomness never depends on how much earlier
            // attempts consumed.
            Some((seed, kind_tag)) => {
                let mut arng = StdRng::seed_from_u64(genie_parallel::stream_seed(
                    seed ^ POOL_FILTER_TAG,
                    kind_tag,
                    attempts as u64,
                ));
                attempts += 1;
                let index = arng.gen_range(0..base.len());
                if let Some(filtered) =
                    add_filter(vocab, library, datasets, &base[index], &mut arng)
                {
                    out.push(filtered);
                }
            }
            None => {
                attempts += 1;
                let Some(candidate) = base.choose(rng) else {
                    break;
                };
                if let Some(filtered) = add_filter(vocab, library, datasets, candidate, rng) {
                    out.push(filtered);
                }
            }
        }
    }
    target.saturating_sub(out.len())
}

/// Names one of the six phrase pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolId {
    /// [`PhrasePools::nouns`].
    Nouns,
    /// [`PhrasePools::query_verbs`].
    QueryVerbs,
    /// [`PhrasePools::action_verbs`].
    ActionVerbs,
    /// [`PhrasePools::whens`].
    Whens,
    /// [`PhrasePools::filtered_nouns`].
    FilteredNouns,
    /// [`PhrasePools::filtered_whens`].
    FilteredWhens,
}

impl PoolId {
    /// All pools, in digest/diff order.
    pub const ALL: [PoolId; 6] = [
        PoolId::Nouns,
        PoolId::QueryVerbs,
        PoolId::ActionVerbs,
        PoolId::Whens,
        PoolId::FilteredNouns,
        PoolId::FilteredWhens,
    ];

    /// Index into per-pool arrays ([`PoolId::ALL`] order).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One recorded pool access: which pool, which entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolDraw {
    /// The pool drawn from.
    pub pool: PoolId,
    /// The entry index.
    pub index: u32,
}

/// A recording facade over [`PhrasePools`]: rules draw entries through it,
/// and the draws — including ones the rule later rejects — are recorded so
/// the live delta closure knows exactly which entries a `(rule, batch)`
/// work item depends on.
///
/// The draw itself replicates the vendored `SliceRandom::choose`
/// (`gen_range(0..len)`), so routing rules through the sampler does not
/// change the emitted dataset.
pub struct PoolSampler<'p> {
    pools: &'p PhrasePools,
    draws: Vec<PoolDraw>,
}

impl<'p> PoolSampler<'p> {
    /// A fresh sampler over `pools` with an empty draw log.
    pub fn new(pools: &'p PhrasePools) -> Self {
        PoolSampler {
            pools,
            draws: Vec::new(),
        }
    }

    /// The underlying pools, for length-only checks (`is_empty`). Content
    /// reads must go through [`PoolSampler::choose`] so they are recorded;
    /// length changes are caught wholesale by the diff's length check.
    pub fn pools(&self) -> &'p PhrasePools {
        self.pools
    }

    /// Take the accumulated draw log, resetting it.
    pub fn take_draws(&mut self) -> Vec<PoolDraw> {
        std::mem::take(&mut self.draws)
    }

    /// A uniformly chosen entry of `pool`, recorded. RNG-compatible with
    /// `pools.slice(pool).choose(rng)`.
    pub fn choose(&mut self, pool: PoolId, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
        let entries = self.pools.slice(pool);
        if entries.is_empty() {
            return None;
        }
        let index = rng.gen_range(0..entries.len());
        self.draws.push(PoolDraw {
            pool,
            index: index as u32,
        });
        entries.get(index)
    }

    /// A query noun phrase, preferring a filtered one 30% of the time
    /// (RNG-compatible with [`PhrasePools::choose_query_phrase`]).
    pub fn choose_query_phrase(&mut self, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
        if !self.pools.filtered_nouns.is_empty() && rng.gen_bool(0.3) {
            self.choose(PoolId::FilteredNouns, rng)
        } else {
            self.choose(PoolId::Nouns, rng)
        }
    }

    /// A when phrase, preferring a filtered one 30% of the time
    /// (RNG-compatible with [`PhrasePools::choose_when_phrase`]).
    pub fn choose_when_phrase(&mut self, rng: &mut StdRng) -> Option<&'p PhraseDerivation> {
        if !self.pools.filtered_whens.is_empty() && rng.gen_bool(0.3) {
            self.choose(PoolId::FilteredWhens, rng)
        } else {
            self.choose(PoolId::Whens, rng)
        }
    }
}

/// Per-entry content digests of all six pools (see
/// [`PhrasePools::content_digests`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolDigests {
    entries: [Vec<u64>; 6],
}

impl PoolDigests {
    /// The per-entry digests of each pool, in [`PoolId::ALL`] order — the
    /// serializable face of the digests (the world-bundle codec persists
    /// them so a recovered world can diff future deltas).
    pub fn entries(&self) -> &[Vec<u64>; 6] {
        &self.entries
    }

    /// Rebuild digests from serialized entries ([`PoolId::ALL`] order).
    pub fn from_entries(entries: [Vec<u64>; 6]) -> Self {
        PoolDigests { entries }
    }

    /// Entry-wise diff against the digests of a newer pool build.
    pub fn diff(&self, new: &PoolDigests) -> PoolsDelta {
        let lengths_changed = PoolId::ALL
            .iter()
            .any(|p| self.entries[p.index()].len() != new.entries[p.index()].len());
        let mut changed_entries = 0;
        let changed = PoolId::ALL.map(|p| {
            let old = &self.entries[p.index()];
            let fresh = &new.entries[p.index()];
            let flags: Vec<bool> = (0..old.len().max(fresh.len()))
                .map(|i| old.get(i) != fresh.get(i))
                .collect();
            changed_entries += flags.iter().filter(|&&c| c).count();
            flags
        });
        PoolsDelta {
            lengths_changed,
            changed,
            changed_entries,
        }
    }
}

/// The entry-wise difference between two pool builds, used to decide which
/// `(rule, batch)` work items a skill delta invalidates.
#[derive(Debug)]
pub struct PoolsDelta {
    lengths_changed: bool,
    changed: [Vec<bool>; 6],
    /// Total changed entries across all pools.
    pub changed_entries: usize,
}

impl PoolsDelta {
    /// Whether any pool changed length. Index-based draws are then
    /// incomparable across the delta, so callers must fall back to a full
    /// rebuild (which is still byte-identical, trivially).
    pub fn lengths_changed(&self) -> bool {
        self.lengths_changed
    }

    /// Whether the delta changed nothing at all.
    pub fn is_empty(&self) -> bool {
        !self.lengths_changed && self.changed_entries == 0
    }

    /// Whether a work item that made `draws` would observe the delta. Sound
    /// because a batch's control flow depends on pool *content* only at its
    /// drawn indices (lengths are handled by
    /// [`PoolsDelta::lengths_changed`]).
    pub fn affects(&self, draws: &[PoolDraw]) -> bool {
        if self.lengths_changed {
            return true;
        }
        draws
            .iter()
            .any(|draw| self.changed[draw.pool.index()][draw.index as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn filtered_pools_reach_their_target() {
        let library = Thingpedia::builtin();
        let datasets = ParamDatasets::builtin();
        let config = GeneratorConfig {
            target_per_rule: 50,
            ..GeneratorConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let vocab = SynthVocab::new(crate::intern::shared().clone());
        let pools = PhrasePools::build(&vocab, &library, &datasets, &config, &mut rng);
        // add_filter only rejects functions without output parameters; with
        // retries the pools must reach the sampling target.
        assert_eq!(pools.filtered_nouns.len(), 50);
        assert_eq!(pools.filtered_whens.len(), 50);
        assert_eq!(pools.filter_shortfall, 0);
    }

    #[test]
    fn shallow_synthesis_skips_filtered_pools() {
        let library = Thingpedia::builtin();
        let datasets = ParamDatasets::builtin();
        let config = GeneratorConfig {
            max_depth: 1,
            ..GeneratorConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let vocab = SynthVocab::new(crate::intern::shared().clone());
        let pools = PhrasePools::build(&vocab, &library, &datasets, &config, &mut rng);
        assert!(pools.filtered_nouns.is_empty());
        assert!(pools.filtered_whens.is_empty());
        assert!(!pools.nouns.is_empty());
    }
}
