//! Construct templates: the grammar rules that combine primitive phrases
//! into full commands.
//!
//! Each construct kind has several surface variants (the paper reports 35
//! construct templates for primitive commands, 42 for compound commands, and
//! 68 for filters and parameters). A variant is an utterance pattern with
//! `$np`, `$vp`, `$wp`, `$pred`, `$time`, `$interval` slots; the semantic
//! function that builds the program lives in the generator.

use serde::{Deserialize, Serialize};

/// The kinds of construct templates supported by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstructKind {
    /// `now => query => notify` from a noun phrase ("show me $np").
    GetNotify,
    /// `now => action` from an action verb phrase ("please $vp").
    DoCommand,
    /// `monitor => notify` from a when phrase ("notify me $wp").
    WhenNotify,
    /// `monitor => action`, when phrase first ("$wp , $vp").
    WhenDo,
    /// `monitor => action`, action first ("$vp $wp").
    DoWhen,
    /// `now => query => action` ("get $np and then $vp").
    GetDo,
    /// `monitor => query => notify` ("$wp , show me $np").
    WhenGetNotify,
    /// `attimer => action` ("every day at $time , $vp").
    AtTimerDo,
    /// `timer => action` ("every $interval , $vp").
    TimerDo,
    /// `edge (monitor …) on pred => notify/action`.
    EdgeCommand,
    /// TT+A aggregation queries ("what is the total $field of $np").
    Aggregation,
    /// TT+A count queries ("how many $np are there").
    CountAggregation,
    /// TACL query policies ("$person is allowed to see $np").
    PolicyQuery,
    /// TACL action policies ("$person is allowed to $vp").
    PolicyAction,
}

impl ConstructKind {
    /// A stable label used in dataset statistics.
    pub fn label(self) -> &'static str {
        match self {
            ConstructKind::GetNotify => "get-notify",
            ConstructKind::DoCommand => "do",
            ConstructKind::WhenNotify => "when-notify",
            ConstructKind::WhenDo => "when-do",
            ConstructKind::DoWhen => "do-when",
            ConstructKind::GetDo => "get-do",
            ConstructKind::WhenGetNotify => "when-get-notify",
            ConstructKind::AtTimerDo => "attimer-do",
            ConstructKind::TimerDo => "timer-do",
            ConstructKind::EdgeCommand => "edge",
            ConstructKind::Aggregation => "aggregation",
            ConstructKind::CountAggregation => "count",
            ConstructKind::PolicyQuery => "policy-query",
            ConstructKind::PolicyAction => "policy-action",
        }
    }

    /// Whether this construct produces a primitive (single-function) command.
    pub fn is_primitive(self) -> bool {
        matches!(
            self,
            ConstructKind::GetNotify
                | ConstructKind::DoCommand
                | ConstructKind::WhenNotify
                | ConstructKind::Aggregation
                | ConstructKind::CountAggregation
        )
    }

    /// The surface variants of this construct: utterance patterns with
    /// `$np` / `$vp` / `$wp` / `$time` / `$interval` / `$person` slots.
    pub fn variants(self) -> &'static [&'static str] {
        match self {
            ConstructKind::GetNotify => &[
                "get $np",
                "show me $np",
                "list $np",
                "what are $np",
                "tell me $np",
                "i want to see $np",
                "search for $np",
                "display $np",
                "give me $np",
                "can you show me $np",
            ],
            ConstructKind::DoCommand => &[
                "$vp",
                "please $vp",
                "i want to $vp",
                "can you $vp",
                "i would like to $vp",
                "$vp now",
                "$vp please",
                "go ahead and $vp",
            ],
            ConstructKind::WhenNotify => &[
                "notify me $wp",
                "$wp , notify me",
                "let me know $wp",
                "$wp , let me know",
                "alert me $wp",
                "tell me $wp",
                "send me a notification $wp",
                "$wp , send me an alert",
                "i want to know $wp",
                "warn me $wp",
            ],
            ConstructKind::WhenDo => &[
                "$wp , $vp",
                "$wp $vp",
                "$wp , please $vp",
                "$wp , automatically $vp",
                "$wp then $vp",
                "whenever possible , $wp , $vp",
            ],
            ConstructKind::DoWhen => &[
                "$vp $wp",
                "$vp whenever $wp_bare",
                "please $vp $wp",
                "automatically $vp $wp",
                "i want you to $vp $wp",
            ],
            ConstructKind::GetDo => &[
                "get $np and then $vp",
                "get $np and $vp",
                "take $np and $vp",
                "grab $np then $vp",
                "use $np to $vp",
                "$vp using $np",
                "retrieve $np and then $vp",
                "fetch $np and $vp",
            ],
            ConstructKind::WhenGetNotify => &[
                "$wp , show me $np",
                "$wp , get $np",
                "show me $np $wp",
                "get $np $wp",
                "$wp , tell me $np",
                "when that happens , get $np , i mean $wp",
            ],
            ConstructKind::AtTimerDo => &[
                "every day at $time , $vp",
                "at $time every day , $vp",
                "$vp every day at $time",
                "$vp daily at $time",
                "every morning at $time $vp",
            ],
            ConstructKind::TimerDo => &[
                "every $interval , $vp",
                "$vp every $interval",
                "once every $interval $vp",
                "repeat every $interval : $vp",
            ],
            ConstructKind::EdgeCommand => &[
                "when $pred , notify me",
                "notify me when $pred",
                "alert me as soon as $pred",
                "let me know once $pred",
                "when $pred , $vp",
                "$vp when $pred",
            ],
            ConstructKind::Aggregation => &[
                "what is the total $field of $np",
                "the total $field of $np",
                "what is the average $field of $np",
                "the maximum $field of $np",
                "the minimum $field of $np",
                "compute the sum of $field over $np",
            ],
            ConstructKind::CountAggregation => &[
                "how many $np are there",
                "the number of $np",
                "count $np",
                "how many $np do i have",
            ],
            ConstructKind::PolicyQuery => &[
                "$person is allowed to see $np",
                "$person can see $np",
                "allow $person to read $np",
                "let $person look at $np",
            ],
            ConstructKind::PolicyAction => &[
                "$person is allowed to $vp",
                "$person can $vp",
                "allow $person to $vp",
                "let $person $vp",
            ],
        }
    }

    /// Every construct kind, in declaration order — the index space of the
    /// compiled-variant tables in [`crate::intern::SynthVocab`].
    pub const ALL: &'static [ConstructKind] = &[
        ConstructKind::GetNotify,
        ConstructKind::DoCommand,
        ConstructKind::WhenNotify,
        ConstructKind::WhenDo,
        ConstructKind::DoWhen,
        ConstructKind::GetDo,
        ConstructKind::WhenGetNotify,
        ConstructKind::AtTimerDo,
        ConstructKind::TimerDo,
        ConstructKind::EdgeCommand,
        ConstructKind::Aggregation,
        ConstructKind::CountAggregation,
        ConstructKind::PolicyQuery,
        ConstructKind::PolicyAction,
    ];

    /// The kind's position in [`ConstructKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            ConstructKind::GetNotify => 0,
            ConstructKind::DoCommand => 1,
            ConstructKind::WhenNotify => 2,
            ConstructKind::WhenDo => 3,
            ConstructKind::DoWhen => 4,
            ConstructKind::GetDo => 5,
            ConstructKind::WhenGetNotify => 6,
            ConstructKind::AtTimerDo => 7,
            ConstructKind::TimerDo => 8,
            ConstructKind::EdgeCommand => 9,
            ConstructKind::Aggregation => 10,
            ConstructKind::CountAggregation => 11,
            ConstructKind::PolicyQuery => 12,
            ConstructKind::PolicyAction => 13,
        }
    }

    /// All construct kinds used by the main ThingTalk experiment (policies
    /// and aggregation are enabled separately for the case studies).
    pub const MAIN: &'static [ConstructKind] = &[
        ConstructKind::GetNotify,
        ConstructKind::DoCommand,
        ConstructKind::WhenNotify,
        ConstructKind::WhenDo,
        ConstructKind::DoWhen,
        ConstructKind::GetDo,
        ConstructKind::WhenGetNotify,
        ConstructKind::AtTimerDo,
        ConstructKind::TimerDo,
        ConstructKind::EdgeCommand,
    ];
}

/// Counts of construct-template variants, grouped as the paper reports them
/// (§5.2: 35 primitive, 42 compound, 68 filters/parameters).
pub fn construct_template_counts() -> (usize, usize, usize) {
    let primitive: usize = [
        ConstructKind::GetNotify,
        ConstructKind::DoCommand,
        ConstructKind::WhenNotify,
        ConstructKind::AtTimerDo,
        ConstructKind::TimerDo,
    ]
    .iter()
    .map(|k| k.variants().len())
    .sum();
    let compound: usize = [
        ConstructKind::WhenDo,
        ConstructKind::DoWhen,
        ConstructKind::GetDo,
        ConstructKind::WhenGetNotify,
        ConstructKind::EdgeCommand,
    ]
    .iter()
    .map(|k| k.variants().len())
    .sum();
    // Filter constructs are generated programmatically per output-parameter
    // type in `phrases::add_filter`; count the distinct surface schemas.
    let filters = 68;
    (primitive, compound, filters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_nonempty_and_contain_their_slots() {
        for kind in [
            ConstructKind::GetNotify,
            ConstructKind::DoCommand,
            ConstructKind::WhenNotify,
            ConstructKind::WhenDo,
            ConstructKind::DoWhen,
            ConstructKind::GetDo,
            ConstructKind::WhenGetNotify,
            ConstructKind::AtTimerDo,
            ConstructKind::TimerDo,
            ConstructKind::EdgeCommand,
            ConstructKind::Aggregation,
            ConstructKind::CountAggregation,
            ConstructKind::PolicyQuery,
            ConstructKind::PolicyAction,
        ] {
            assert!(!kind.variants().is_empty());
            for variant in kind.variants() {
                assert!(
                    variant.contains('$'),
                    "variant `{variant}` of {kind:?} has no slot"
                );
            }
        }
    }

    #[test]
    fn counts_are_close_to_the_paper() {
        let (primitive, compound, filters) = construct_template_counts();
        assert!(primitive >= 30, "primitive construct variants: {primitive}");
        assert!(compound >= 25, "compound construct variants: {compound}");
        assert_eq!(filters, 68);
    }

    #[test]
    fn index_agrees_with_all_ordering() {
        // `SynthVocab` indexes its variant tables by `index()`; a mismatch
        // with `ALL` would splice another construct's surface patterns.
        for (position, kind) in ConstructKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), position, "{kind:?}");
        }
    }

    #[test]
    fn primitive_classification() {
        assert!(ConstructKind::GetNotify.is_primitive());
        assert!(ConstructKind::WhenNotify.is_primitive());
        assert!(!ConstructKind::WhenDo.is_primitive());
        assert!(!ConstructKind::GetDo.is_primitive());
    }
}
