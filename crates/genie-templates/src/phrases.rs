//! Phrase derivations: primitive templates instantiated with sampled
//! parameter values.
//!
//! A phrase derivation is the depth-1 building block of synthesis: a natural
//! language fragment (noun/verb/when phrase) paired with the code fragment
//! it denotes — a query, an action invocation, or a monitored stream.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use thingpedia::{ParamDatasets, PhraseCategory, PrimitiveTemplate, Thingpedia};
use thingtalk::ast::{FunctionRef, Invocation, Query};
use thingtalk::class::{FunctionDef, ParamDef};
use thingtalk::describe::{describe_value, describe_value_into};
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::types::Type;
use thingtalk::units::{BaseUnit, Unit};
use thingtalk::value::{DateEdge, DateValue, Value};

use crate::intern::{Interner, SynthVocab, TokenStream};

/// What code fragment a phrase denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhraseKind {
    /// A noun phrase denoting a query ("my dropbox files").
    QueryNoun,
    /// A verb phrase denoting a query ("translate $text").
    QueryVerb,
    /// A verb phrase denoting an action ("post $status on twitter").
    ActionVerb,
    /// A when phrase denoting an event ("when i receive an email").
    WhenPhrase,
}

/// A primitive phrase instantiated with concrete parameter values.
///
/// The denoted code fragments are [`Arc`]-shared: construct rules compose
/// them into programs by bumping a reference count, not by deep-cloning
/// (§3.1 calls for sampling thousands of combinations per construct).
#[derive(Debug, Clone, PartialEq)]
pub struct PhraseDerivation {
    /// The natural-language fragment, as interned tokens. Construct rules
    /// compose phrases by splicing these token runs — never by scanning or
    /// re-allocating text.
    pub utterance: TokenStream,
    /// What the phrase denotes.
    pub kind: PhraseKind,
    /// The denoted query (for query and when phrases).
    pub query: Option<Arc<Query>>,
    /// The denoted action invocation (for action verb phrases).
    pub action: Option<Arc<Invocation>>,
    /// The function the phrase uses.
    pub function: FunctionRef,
    /// Derivation depth (1 for plain primitives, 2 for filtered phrases).
    pub depth: usize,
}

impl PhraseDerivation {
    /// Whether the underlying function is monitorable (so the phrase can be
    /// turned into a stream).
    pub fn is_monitorable(&self, library: &Thingpedia) -> bool {
        library
            .function(&self.function.class, &self.function.function)
            .map(|f| f.kind.is_monitorable())
            .unwrap_or(false)
    }

    /// Whether the underlying function returns a list (so TT+A aggregation
    /// applies).
    pub fn is_list(&self, library: &Thingpedia) -> bool {
        library
            .function(&self.function.class, &self.function.function)
            .map(|f| f.kind.is_list())
            .unwrap_or(false)
    }
}

/// Instantiate a primitive template with sampled parameter values.
///
/// Returns `None` when the template's category is inconsistent with the
/// function kind (e.g. a when phrase for a non-monitorable query), mirroring
/// the semantic-function rejection of §3.1. Runs at pool-build time (single
/// threaded), so sampled values intern directly into the global arena.
pub fn instantiate(
    vocab: &SynthVocab,
    library: &Thingpedia,
    datasets: &ParamDatasets,
    template: &PrimitiveTemplate,
    rng: &mut StdRng,
) -> Option<PhraseDerivation> {
    let interner = vocab.interner();
    let function = library.function(&template.class, &template.function)?;
    let kind = match (template.category, function.kind.is_query()) {
        (PhraseCategory::NounPhrase, true) => PhraseKind::QueryNoun,
        (PhraseCategory::VerbPhrase, true) => PhraseKind::QueryVerb,
        (PhraseCategory::VerbPhrase, false) => PhraseKind::ActionVerb,
        (PhraseCategory::WhenPhrase, true) if function.kind.is_monitorable() => {
            PhraseKind::WhenPhrase
        }
        _ => return None,
    };

    let mut invocation = Invocation::new(template.class.clone(), template.function.clone());
    let mut substitutions: Vec<(String, TokenStream)> = Vec::new();

    // Preset parameters (constant bindings that are part of the meaning of
    // the utterance, e.g. order_by for "that changed most recently").
    for (name, value) in &template.preset_params {
        invocation = invocation.with_param(name.clone(), value.clone());
    }

    // Placeholder parameters: sample a value and render it into tokens.
    for placeholder in template.placeholders() {
        let param = function.param(&placeholder)?;
        let value = sample_value(datasets, param, rng);
        substitutions.push((placeholder.clone(), value_tokens(interner, &value)));
        invocation = invocation.with_param(placeholder, value);
    }

    // Remaining required inputs are filled silently so the program is
    // executable; templates are expected to cover them (checked by the
    // thingpedia test suite for the builtin library).
    for param in function.required_params() {
        if invocation.param(&param.name).is_none() {
            let value = sample_value(datasets, param, rng);
            invocation = invocation.with_param(param.name.clone(), value);
        }
    }

    let utterance = instantiate_template(interner, template, &substitutions);
    let function_ref = invocation.function.clone();
    let (query, action) = if function.kind.is_query() {
        (Some(Arc::new(Query::Invocation(invocation))), None)
    } else {
        (None, Some(Arc::new(invocation)))
    };
    Some(PhraseDerivation {
        utterance,
        kind,
        query,
        action,
        function: function_ref,
        depth: 1,
    })
}

/// Sample a concrete value for a parameter, using the parameter datasets for
/// strings and entities and type-appropriate generators otherwise.
pub fn sample_value(datasets: &ParamDatasets, param: &ParamDef, rng: &mut StdRng) -> Value {
    match &param.ty {
        Type::Boolean => Value::Boolean(rng.gen_bool(0.5)),
        Type::Number => Value::Number(rng.gen_range(1..100) as f64),
        Type::Enum(variants) => {
            let idx = rng.gen_range(0..variants.len().max(1));
            Value::Enum(variants.get(idx).cloned().unwrap_or_default())
        }
        Type::Measure(base) => {
            let (amount, unit): (f64, Unit) = match base {
                BaseUnit::Byte => (rng.gen_range(1..500) as f64, Unit::Megabyte),
                BaseUnit::Millisecond => (rng.gen_range(1..60) as f64, Unit::Minute),
                BaseUnit::Meter => (rng.gen_range(1..50) as f64, Unit::Kilometer),
                BaseUnit::Celsius => (rng.gen_range(-5..40) as f64, Unit::Celsius),
                BaseUnit::Gram => (rng.gen_range(50..100) as f64, Unit::Kilogram),
                BaseUnit::MeterPerSecond => (rng.gen_range(1..35) as f64, Unit::MeterPerSecond),
                BaseUnit::Calorie => (rng.gen_range(100..900) as f64, Unit::Kilocalorie),
                BaseUnit::BeatPerMinute => (rng.gen_range(60..180) as f64, Unit::BeatPerMinute),
                BaseUnit::Pascal => (rng.gen_range(980..1040) as f64, Unit::Hectopascal),
                BaseUnit::Milliliter => (rng.gen_range(1..3) as f64, Unit::Liter),
            };
            Value::Measure(amount, unit)
        }
        Type::Date => {
            let edges = [
                DateEdge::Now,
                DateEdge::StartOfDay,
                DateEdge::StartOfWeek,
                DateEdge::StartOfMonth,
                DateEdge::EndOfWeek,
            ];
            Value::Date(DateValue::Edge(edges[rng.gen_range(0..edges.len())]))
        }
        Type::Time => Value::Time(
            rng.gen_range(0..24),
            [0, 15, 30, 45][rng.gen_range(0..4usize)],
        ),
        Type::Currency => Value::Currency(rng.gen_range(1..200) as f64, "USD".to_owned()),
        Type::Location => Value::Location(thingtalk::value::LocationValue::Named(
            datasets.sample_for_param(&Type::Location, &param.name, rng),
        )),
        Type::Entity(kind) => {
            let text = datasets.sample_for_param(&param.ty, &param.name, rng);
            Value::Entity {
                value: text.clone(),
                kind: kind.clone(),
                display: Some(text),
            }
        }
        _ => Value::String(datasets.sample_for_param(&param.ty, &param.name, rng)),
    }
}

/// Render a sampled value as it should appear inside an utterance.
pub fn render_value(value: &Value) -> String {
    describe_value(value)
}

/// Render a sampled value into interned tokens (global arena; pool-build
/// and other single-threaded paths).
pub fn value_tokens(interner: &Interner, value: &Value) -> TokenStream {
    let mut buf = String::new();
    describe_value_into(value, &mut buf);
    interner.stream_of(&buf)
}

/// Substitute the placeholders of a template utterance with rendered value
/// tokens — the token-stream counterpart of `PrimitiveTemplate::instantiate`,
/// producing exactly the same rendered text (placeholder suffixes such as
/// `$name's` merge into the last value token, unbound placeholders stay
/// literal).
fn instantiate_template(
    interner: &Interner,
    template: &PrimitiveTemplate,
    values: &[(String, TokenStream)],
) -> TokenStream {
    let mut out = TokenStream::new();
    for word in template.utterance.split_whitespace() {
        let Some(name) = word.strip_prefix('$') else {
            out.push(interner.intern(word));
            continue;
        };
        let clean: String = name
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let suffix: String = name.chars().skip(clean.len()).collect();
        match values.iter().find(|(n, _)| *n == clean) {
            Some((_, rendered)) => {
                if suffix.is_empty() {
                    out.extend_from_slice(rendered);
                } else if let Some((&last, head)) = rendered.as_slice().split_last() {
                    out.extend_from_slice(head);
                    let merged = format!("{}{suffix}", interner.resolve(last));
                    out.push(interner.intern(&merged));
                } else {
                    out.push(interner.intern(&suffix));
                }
            }
            None => out.push(interner.intern(word)),
        }
    }
    out
}

/// Build one filtered variant of a query noun phrase: adds a type-appropriate
/// predicate over a random output parameter of the function, with a natural
/// rendering ("having modified time after start of week").
pub fn add_filter(
    vocab: &SynthVocab,
    library: &Thingpedia,
    datasets: &ParamDatasets,
    phrase: &PhraseDerivation,
    rng: &mut StdRng,
) -> Option<PhraseDerivation> {
    use thingtalk::ast::{CompareOp, Predicate};

    if !matches!(phrase.kind, PhraseKind::QueryNoun | PhraseKind::WhenPhrase) {
        return None;
    }
    let interner = vocab.interner();
    let sym = &vocab.sym;
    let function: &FunctionDef =
        library.function(&phrase.function.class, &phrase.function.function)?;
    let outputs: Vec<&ParamDef> = function.output_params().collect();
    if outputs.is_empty() {
        return None;
    }
    let param = outputs[rng.gen_range(0..outputs.len())];
    // The filter phrase is spliced from interned runs: connective symbols,
    // the parameter's canonical words, and the rendered value tokens.
    let mut text = TokenStream::new();
    let (op, value): (CompareOp, Value) = match &param.ty {
        Type::Number | Type::Measure(_) | Type::Currency => {
            let value = sample_value(datasets, param, rng);
            let op = if rng.gen_bool(0.5) {
                text.push(sym.with);
                interner.intern_words(&param.canonical, &mut text);
                text.push(sym.greater);
                text.push(sym.than);
                CompareOp::Gt
            } else {
                text.push(sym.with);
                interner.intern_words(&param.canonical, &mut text);
                text.push(sym.less);
                text.push(sym.than);
                CompareOp::Lt
            };
            text.extend_from_slice(&value_tokens(interner, &value));
            (op, value)
        }
        Type::Date => {
            let value = sample_value(datasets, param, rng);
            text.push(sym.with);
            interner.intern_words(&param.canonical, &mut text);
            text.push(sym.after);
            text.extend_from_slice(&value_tokens(interner, &value));
            (CompareOp::Gt, value)
        }
        Type::Boolean => {
            text.push(sym.that);
            text.push(sym.are);
            interner.intern_words(&param.canonical.replace("is ", ""), &mut text);
            (CompareOp::Eq, Value::Boolean(true))
        }
        Type::Enum(_) => {
            let value = sample_value(datasets, param, rng);
            text.push(sym.with);
            interner.intern_words(&param.canonical, &mut text);
            text.extend_from_slice(&value_tokens(interner, &value));
            (CompareOp::Eq, value)
        }
        Type::Array(_) => {
            let inner = ParamDef::new(
                param.name.clone(),
                param.ty.element_type().clone(),
                param.direction,
            );
            let value = sample_value(datasets, &inner, rng);
            text.push(sym.containing);
            interner.intern_words(&param.canonical, &mut text);
            text.extend_from_slice(&value_tokens(interner, &value));
            (CompareOp::Contains, value)
        }
        _ => {
            let value = sample_value(datasets, param, rng);
            // `substr` only typechecks on string-like parameters; anything
            // else (locations, entities without text, …) gets equality.
            let op = if param.ty.is_string_like() && !rng.gen_bool(0.5) {
                text.push(sym.whose);
                interner.intern_words(&param.canonical, &mut text);
                text.push(sym.contains);
                CompareOp::Substr
            } else {
                text.push(sym.with);
                interner.intern_words(&param.canonical, &mut text);
                CompareOp::Eq
            };
            text.extend_from_slice(&value_tokens(interner, &value));
            (op, value)
        }
    };
    let predicate = Predicate::atom(param.name.clone(), op, value);
    // Share the unfiltered subtree: the filter node wraps the pooled query
    // without cloning it.
    let query = Query::shared_filtered(phrase.query.as_ref()?, predicate);
    let mut utterance = phrase.utterance.clone();
    utterance.extend_from_slice(&text);
    Some(PhraseDerivation {
        utterance,
        kind: phrase.kind,
        query: Some(Arc::new(query)),
        action: None,
        function: phrase.function.clone(),
        depth: phrase.depth + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (SynthVocab, Thingpedia, ParamDatasets, StdRng) {
        (
            SynthVocab::new(crate::intern::shared().clone()),
            Thingpedia::builtin(),
            ParamDatasets::builtin(),
            StdRng::seed_from_u64(42),
        )
    }

    #[test]
    fn instantiates_all_builtin_templates() {
        let (vocab, library, datasets, mut rng) = setup();
        let mut count = 0;
        for template in library.templates() {
            let derivation = instantiate(&vocab, &library, &datasets, template, &mut rng)
                .unwrap_or_else(|| panic!("failed to instantiate `{}`", template.utterance));
            let text = vocab.interner().render(&derivation.utterance);
            assert!(!text.contains('$'), "placeholder left in `{text}`");
            count += 1;
        }
        assert!(count > 250);
    }

    #[test]
    fn instantiated_streams_render_like_string_instantiation() {
        // The token-stream instantiation must reproduce the exact text of
        // `PrimitiveTemplate::instantiate` — rendered text is the dataset
        // identity and must not shift under the interned representation.
        let (vocab, library, datasets, _) = setup();
        for (i, template) in library.templates().iter().enumerate() {
            let mut rng_a = StdRng::seed_from_u64(1000 + i as u64);
            let mut rng_b = StdRng::seed_from_u64(1000 + i as u64);
            let Some(derivation) = instantiate(&vocab, &library, &datasets, template, &mut rng_a)
            else {
                continue;
            };
            // Replay the sampling with the legacy string path.
            let function = library
                .function(&template.class, &template.function)
                .unwrap();
            let mut substitutions: Vec<(String, String)> = Vec::new();
            for placeholder in template.placeholders() {
                let param = function.param(&placeholder).unwrap();
                let value = sample_value(&datasets, param, &mut rng_b);
                substitutions.push((placeholder.clone(), render_value(&value)));
            }
            let expected = template.instantiate(&substitutions);
            assert_eq!(
                vocab.interner().render(&derivation.utterance),
                expected,
                "template `{}`",
                template.utterance
            );
        }
    }

    #[test]
    fn query_phrases_carry_queries_and_actions_carry_invocations() {
        let (vocab, library, datasets, mut rng) = setup();
        for template in library.templates() {
            let derivation = instantiate(&vocab, &library, &datasets, template, &mut rng).unwrap();
            match derivation.kind {
                PhraseKind::ActionVerb => {
                    assert!(derivation.action.is_some());
                    assert!(derivation.query.is_none());
                }
                _ => {
                    assert!(derivation.query.is_some());
                    assert!(derivation.action.is_none());
                }
            }
        }
    }

    #[test]
    fn sampled_values_typecheck() {
        let (vocab, library, datasets, mut rng) = setup();
        for template in library.templates().iter().take(100) {
            let derivation = instantiate(&vocab, &library, &datasets, template, &mut rng).unwrap();
            let program = match (&derivation.query, &derivation.action) {
                (Some(query), _) => thingtalk::Program::get_query(query.clone()),
                (_, Some(action)) => thingtalk::Program::do_action(action.clone()),
                _ => unreachable!(),
            };
            thingtalk::typecheck::typecheck(&library, &program).unwrap_or_else(|e| {
                panic!(
                    "`{}` does not typecheck: {e}",
                    vocab.interner().render(&derivation.utterance)
                )
            });
        }
    }

    #[test]
    fn filtered_phrases_add_one_predicate() {
        let (vocab, library, datasets, mut rng) = setup();
        let template = library.templates_for("com.dropbox", "list_folder")[0].clone();
        let base = instantiate(&vocab, &library, &datasets, &template, &mut rng).unwrap();
        let filtered = add_filter(&vocab, &library, &datasets, &base, &mut rng).unwrap();
        assert_eq!(filtered.depth, base.depth + 1);
        assert!(filtered.utterance.len() > base.utterance.len());
        let query = filtered.query.unwrap();
        assert!(query.has_filter());
    }

    #[test]
    fn action_phrases_cannot_be_filtered() {
        let (vocab, library, datasets, mut rng) = setup();
        let template = library.templates_for("com.twitter", "post")[0].clone();
        let base = instantiate(&vocab, &library, &datasets, &template, &mut rng).unwrap();
        assert!(add_filter(&vocab, &library, &datasets, &base, &mut rng).is_none());
    }
}
