//! Phrase derivations: primitive templates instantiated with sampled
//! parameter values.
//!
//! A phrase derivation is the depth-1 building block of synthesis: a natural
//! language fragment (noun/verb/when phrase) paired with the code fragment
//! it denotes — a query, an action invocation, or a monitored stream.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use thingpedia::{ParamDatasets, PhraseCategory, PrimitiveTemplate, Thingpedia};
use thingtalk::ast::{FunctionRef, Invocation, Query};
use thingtalk::class::{FunctionDef, ParamDef};
use thingtalk::describe::describe_value;
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::types::Type;
use thingtalk::units::{BaseUnit, Unit};
use thingtalk::value::{DateEdge, DateValue, Value};

/// What code fragment a phrase denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhraseKind {
    /// A noun phrase denoting a query ("my dropbox files").
    QueryNoun,
    /// A verb phrase denoting a query ("translate $text").
    QueryVerb,
    /// A verb phrase denoting an action ("post $status on twitter").
    ActionVerb,
    /// A when phrase denoting an event ("when i receive an email").
    WhenPhrase,
}

/// A primitive phrase instantiated with concrete parameter values.
///
/// The denoted code fragments are [`Arc`]-shared: construct rules compose
/// them into programs by bumping a reference count, not by deep-cloning
/// (§3.1 calls for sampling thousands of combinations per construct).
#[derive(Debug, Clone, PartialEq)]
pub struct PhraseDerivation {
    /// The natural-language fragment.
    pub utterance: String,
    /// What the phrase denotes.
    pub kind: PhraseKind,
    /// The denoted query (for query and when phrases).
    pub query: Option<Arc<Query>>,
    /// The denoted action invocation (for action verb phrases).
    pub action: Option<Arc<Invocation>>,
    /// The function the phrase uses.
    pub function: FunctionRef,
    /// Derivation depth (1 for plain primitives, 2 for filtered phrases).
    pub depth: usize,
}

impl PhraseDerivation {
    /// Whether the underlying function is monitorable (so the phrase can be
    /// turned into a stream).
    pub fn is_monitorable(&self, library: &Thingpedia) -> bool {
        library
            .function(&self.function.class, &self.function.function)
            .map(|f| f.kind.is_monitorable())
            .unwrap_or(false)
    }

    /// Whether the underlying function returns a list (so TT+A aggregation
    /// applies).
    pub fn is_list(&self, library: &Thingpedia) -> bool {
        library
            .function(&self.function.class, &self.function.function)
            .map(|f| f.kind.is_list())
            .unwrap_or(false)
    }
}

/// Instantiate a primitive template with sampled parameter values.
///
/// Returns `None` when the template's category is inconsistent with the
/// function kind (e.g. a when phrase for a non-monitorable query), mirroring
/// the semantic-function rejection of §3.1.
pub fn instantiate(
    library: &Thingpedia,
    datasets: &ParamDatasets,
    template: &PrimitiveTemplate,
    rng: &mut StdRng,
) -> Option<PhraseDerivation> {
    let function = library.function(&template.class, &template.function)?;
    let kind = match (template.category, function.kind.is_query()) {
        (PhraseCategory::NounPhrase, true) => PhraseKind::QueryNoun,
        (PhraseCategory::VerbPhrase, true) => PhraseKind::QueryVerb,
        (PhraseCategory::VerbPhrase, false) => PhraseKind::ActionVerb,
        (PhraseCategory::WhenPhrase, true) if function.kind.is_monitorable() => {
            PhraseKind::WhenPhrase
        }
        _ => return None,
    };

    let mut invocation = Invocation::new(template.class.clone(), template.function.clone());
    let mut substitutions: Vec<(String, String)> = Vec::new();

    // Preset parameters (constant bindings that are part of the meaning of
    // the utterance, e.g. order_by for "that changed most recently").
    for (name, value) in &template.preset_params {
        invocation = invocation.with_param(name.clone(), value.clone());
    }

    // Placeholder parameters: sample a value and render it.
    for placeholder in template.placeholders() {
        let param = function.param(&placeholder)?;
        let value = sample_value(datasets, param, rng);
        substitutions.push((placeholder.clone(), render_value(&value)));
        invocation = invocation.with_param(placeholder, value);
    }

    // Remaining required inputs are filled silently so the program is
    // executable; templates are expected to cover them (checked by the
    // thingpedia test suite for the builtin library).
    for param in function.required_params() {
        if invocation.param(&param.name).is_none() {
            let value = sample_value(datasets, param, rng);
            invocation = invocation.with_param(param.name.clone(), value);
        }
    }

    let utterance = template.instantiate(&substitutions);
    let function_ref = invocation.function.clone();
    let (query, action) = if function.kind.is_query() {
        (Some(Arc::new(Query::Invocation(invocation))), None)
    } else {
        (None, Some(Arc::new(invocation)))
    };
    Some(PhraseDerivation {
        utterance,
        kind,
        query,
        action,
        function: function_ref,
        depth: 1,
    })
}

/// Sample a concrete value for a parameter, using the parameter datasets for
/// strings and entities and type-appropriate generators otherwise.
pub fn sample_value(datasets: &ParamDatasets, param: &ParamDef, rng: &mut StdRng) -> Value {
    match &param.ty {
        Type::Boolean => Value::Boolean(rng.gen_bool(0.5)),
        Type::Number => Value::Number(rng.gen_range(1..100) as f64),
        Type::Enum(variants) => {
            let idx = rng.gen_range(0..variants.len().max(1));
            Value::Enum(variants.get(idx).cloned().unwrap_or_default())
        }
        Type::Measure(base) => {
            let (amount, unit): (f64, Unit) = match base {
                BaseUnit::Byte => (rng.gen_range(1..500) as f64, Unit::Megabyte),
                BaseUnit::Millisecond => (rng.gen_range(1..60) as f64, Unit::Minute),
                BaseUnit::Meter => (rng.gen_range(1..50) as f64, Unit::Kilometer),
                BaseUnit::Celsius => (rng.gen_range(-5..40) as f64, Unit::Celsius),
                BaseUnit::Gram => (rng.gen_range(50..100) as f64, Unit::Kilogram),
                BaseUnit::MeterPerSecond => (rng.gen_range(1..35) as f64, Unit::MeterPerSecond),
                BaseUnit::Calorie => (rng.gen_range(100..900) as f64, Unit::Kilocalorie),
                BaseUnit::BeatPerMinute => (rng.gen_range(60..180) as f64, Unit::BeatPerMinute),
                BaseUnit::Pascal => (rng.gen_range(980..1040) as f64, Unit::Hectopascal),
                BaseUnit::Milliliter => (rng.gen_range(1..3) as f64, Unit::Liter),
            };
            Value::Measure(amount, unit)
        }
        Type::Date => {
            let edges = [
                DateEdge::Now,
                DateEdge::StartOfDay,
                DateEdge::StartOfWeek,
                DateEdge::StartOfMonth,
                DateEdge::EndOfWeek,
            ];
            Value::Date(DateValue::Edge(edges[rng.gen_range(0..edges.len())]))
        }
        Type::Time => Value::Time(
            rng.gen_range(0..24),
            [0, 15, 30, 45][rng.gen_range(0..4usize)],
        ),
        Type::Currency => Value::Currency(rng.gen_range(1..200) as f64, "USD".to_owned()),
        Type::Location => Value::Location(thingtalk::value::LocationValue::Named(
            datasets.sample_for_param(&Type::Location, &param.name, rng),
        )),
        Type::Entity(kind) => {
            let text = datasets.sample_for_param(&param.ty, &param.name, rng);
            Value::Entity {
                value: text.clone(),
                kind: kind.clone(),
                display: Some(text),
            }
        }
        _ => Value::String(datasets.sample_for_param(&param.ty, &param.name, rng)),
    }
}

/// Render a sampled value as it should appear inside an utterance.
pub fn render_value(value: &Value) -> String {
    describe_value(value)
}

/// Build one filtered variant of a query noun phrase: adds a type-appropriate
/// predicate over a random output parameter of the function, with a natural
/// rendering ("having modified time after start of week").
pub fn add_filter(
    library: &Thingpedia,
    datasets: &ParamDatasets,
    phrase: &PhraseDerivation,
    rng: &mut StdRng,
) -> Option<PhraseDerivation> {
    use thingtalk::ast::{CompareOp, Predicate};

    if !matches!(phrase.kind, PhraseKind::QueryNoun | PhraseKind::WhenPhrase) {
        return None;
    }
    let function: &FunctionDef =
        library.function(&phrase.function.class, &phrase.function.function)?;
    let outputs: Vec<&ParamDef> = function.output_params().collect();
    if outputs.is_empty() {
        return None;
    }
    let param = outputs[rng.gen_range(0..outputs.len())];
    let (op, value, phrase_text): (CompareOp, Value, String) = match &param.ty {
        Type::Number | Type::Measure(_) | Type::Currency => {
            let value = sample_value(datasets, param, rng);
            if rng.gen_bool(0.5) {
                (
                    CompareOp::Gt,
                    value.clone(),
                    format!(
                        "with {} greater than {}",
                        param.canonical,
                        render_value(&value)
                    ),
                )
            } else {
                (
                    CompareOp::Lt,
                    value.clone(),
                    format!(
                        "with {} less than {}",
                        param.canonical,
                        render_value(&value)
                    ),
                )
            }
        }
        Type::Date => {
            let value = sample_value(datasets, param, rng);
            (
                CompareOp::Gt,
                value.clone(),
                format!("with {} after {}", param.canonical, render_value(&value)),
            )
        }
        Type::Boolean => {
            let value = Value::Boolean(true);
            (
                CompareOp::Eq,
                value,
                format!("that are {}", param.canonical.replace("is ", "")),
            )
        }
        Type::Enum(_) => {
            let value = sample_value(datasets, param, rng);
            (
                CompareOp::Eq,
                value.clone(),
                format!("with {} {}", param.canonical, render_value(&value)),
            )
        }
        Type::Array(_) => {
            let inner = ParamDef::new(
                param.name.clone(),
                param.ty.element_type().clone(),
                param.direction,
            );
            let value = sample_value(datasets, &inner, rng);
            (
                CompareOp::Contains,
                value.clone(),
                format!("containing {} {}", param.canonical, render_value(&value)),
            )
        }
        _ => {
            let value = sample_value(datasets, param, rng);
            // `substr` only typechecks on string-like parameters; anything
            // else (locations, entities without text, …) gets equality.
            if param.ty.is_string_like() && !rng.gen_bool(0.5) {
                (
                    CompareOp::Substr,
                    value.clone(),
                    format!(
                        "whose {} contains {}",
                        param.canonical,
                        render_value(&value)
                    ),
                )
            } else {
                (
                    CompareOp::Eq,
                    value.clone(),
                    format!("with {} {}", param.canonical, render_value(&value)),
                )
            }
        }
    };
    let predicate = Predicate::atom(param.name.clone(), op, value);
    // Share the unfiltered subtree: the filter node wraps the pooled query
    // without cloning it.
    let query = Query::shared_filtered(phrase.query.as_ref()?, predicate);
    Some(PhraseDerivation {
        utterance: format!("{} {}", phrase.utterance, phrase_text),
        kind: phrase.kind,
        query: Some(Arc::new(query)),
        action: None,
        function: phrase.function.clone(),
        depth: phrase.depth + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (Thingpedia, ParamDatasets, StdRng) {
        (
            Thingpedia::builtin(),
            ParamDatasets::builtin(),
            StdRng::seed_from_u64(42),
        )
    }

    #[test]
    fn instantiates_all_builtin_templates() {
        let (library, datasets, mut rng) = setup();
        let mut count = 0;
        for template in library.templates() {
            let derivation = instantiate(&library, &datasets, template, &mut rng)
                .unwrap_or_else(|| panic!("failed to instantiate `{}`", template.utterance));
            assert!(
                !derivation.utterance.contains('$'),
                "placeholder left in `{}`",
                derivation.utterance
            );
            count += 1;
        }
        assert!(count > 250);
    }

    #[test]
    fn query_phrases_carry_queries_and_actions_carry_invocations() {
        let (library, datasets, mut rng) = setup();
        for template in library.templates() {
            let derivation = instantiate(&library, &datasets, template, &mut rng).unwrap();
            match derivation.kind {
                PhraseKind::ActionVerb => {
                    assert!(derivation.action.is_some());
                    assert!(derivation.query.is_none());
                }
                _ => {
                    assert!(derivation.query.is_some());
                    assert!(derivation.action.is_none());
                }
            }
        }
    }

    #[test]
    fn sampled_values_typecheck() {
        let (library, datasets, mut rng) = setup();
        for template in library.templates().iter().take(100) {
            let derivation = instantiate(&library, &datasets, template, &mut rng).unwrap();
            let program = match (&derivation.query, &derivation.action) {
                (Some(query), _) => thingtalk::Program::get_query(query.clone()),
                (_, Some(action)) => thingtalk::Program::do_action(action.clone()),
                _ => unreachable!(),
            };
            thingtalk::typecheck::typecheck(&library, &program)
                .unwrap_or_else(|e| panic!("`{}` does not typecheck: {e}", derivation.utterance));
        }
    }

    #[test]
    fn filtered_phrases_add_one_predicate() {
        let (library, datasets, mut rng) = setup();
        let template = library.templates_for("com.dropbox", "list_folder")[0].clone();
        let base = instantiate(&library, &datasets, &template, &mut rng).unwrap();
        let filtered = add_filter(&library, &datasets, &base, &mut rng).unwrap();
        assert_eq!(filtered.depth, base.depth + 1);
        assert!(filtered.utterance.len() > base.utterance.len());
        let query = filtered.query.unwrap();
        assert!(query.has_filter());
    }

    #[test]
    fn action_phrases_cannot_be_filtered() {
        let (library, datasets, mut rng) = setup();
        let template = library.templates_for("com.twitter", "post")[0].clone();
        let base = instantiate(&library, &datasets, &template, &mut rng).unwrap();
        assert!(add_filter(&library, &datasets, &base, &mut rng).is_none());
    }
}
