//! The builtin construct rules: one [`ConstructRule`] per construct
//! template, ported from the old monolithic per-kind `match` in the
//! generator.
//!
//! Every rule follows the same shape: pick a compiled surface variant, draw
//! phrase derivations from the pools, optionally rewrite parameters, and
//! assemble the program by sharing the phrase fragments (`Arc` bumps, no
//! deep clones). Utterances are assembled by **splicing interned token
//! runs** into the variant ([`CompiledVariant::splice`]) — the old
//! `variant.replace("$np", …)` chains allocated two to three `String`s per
//! candidate and re-scanned the pattern text every time. Rules reject
//! combinations by returning `None` — the semantic-function rejection of
//! §3.1.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use thingtalk::ast::{Action, CompareOp, Invocation, Predicate, Program, Query, Stream};
use thingtalk::class::ParamDef;
use thingtalk::describe::describe_value_into;
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::types::Type;
use thingtalk::units::Unit;
use thingtalk::value::Value;

use crate::constructs::ConstructKind;
use crate::example::SynthesizedExample;
use crate::generator::GeneratorConfig;
use crate::intern::{CompiledVariant, LocalInterner, SynthVocab, TokenStream, VariantPiece};
use crate::phrases::{sample_value, PhraseDerivation, PhraseKind};
use crate::pools::{PoolId, PoolSampler};
use crate::registry::{ConstructRule, RuleCtx};

/// All builtin dataset rules, in canonical registry order.
pub fn builtin_rules() -> Vec<Box<dyn ConstructRule>> {
    vec![
        Box::new(GetNotifyRule),
        Box::new(DoCommandRule),
        Box::new(WhenNotifyRule),
        Box::new(WhenDoRule {
            action_first: false,
        }),
        Box::new(WhenDoRule { action_first: true }),
        Box::new(GetDoRule),
        Box::new(WhenGetNotifyRule),
        Box::new(AtTimerDoRule),
        Box::new(TimerDoRule),
        Box::new(EdgeCommandRule),
        Box::new(AggregationRule),
        Box::new(CountAggregationRule),
    ]
}

/// Pick a compiled surface variant of the rule's construct kind (the same
/// uniform draw `kind.variants().choose(rng)` made over the pattern texts).
fn pick_variant<'v>(
    vocab: &'v SynthVocab,
    kind: ConstructKind,
    rng: &mut StdRng,
) -> Option<&'v CompiledVariant> {
    let variants = vocab.variants(kind);
    if variants.is_empty() {
        None
    } else {
        Some(&variants[rng.gen_range(0..variants.len())])
    }
}

/// Render a value into interned tokens through the worker-local overlay
/// (reuses the overlay's scratch buffer — no per-value `String`).
fn value_tokens_local(local: &mut LocalInterner<'_>, value: &Value) -> TokenStream {
    let mut out = TokenStream::new();
    local.intern_rendered(&mut out, |buf| describe_value_into(value, buf));
    out
}

/// With some probability, rewrite constant parameters of the action as
/// parameter passing from the preceding query clause, adjusting the
/// utterance ("post funny cat on twitter" → "post the caption on twitter"),
/// as in Fig. 1. Mutation is copy-on-write: the shared invocation is cloned
/// only when a parameter is actually rewritten.
///
/// The rewrite substitutes the slot directly in the token stream
/// ([`TokenStream::replacen_seq`]): the old implementation re-rendered the
/// value, re-scanned the utterance bytes with `contains`, and paid two
/// allocations per match in `replacen`/`format!`.
fn pass_parameters(
    ctx: &RuleCtx<'_>,
    source: &PhraseDerivation,
    action: &mut Arc<Invocation>,
    vp_utterance: &mut TokenStream,
    local: &mut LocalInterner<'_>,
    rng: &mut StdRng,
) {
    let Some(source_def) = ctx
        .library
        .function(&source.function.class, &source.function.function)
    else {
        return;
    };
    let Some(action_def) = ctx
        .library
        .function(&action.function.class, &action.function.function)
    else {
        return;
    };
    for index in 0..action.in_params.len() {
        let param = &action.in_params[index];
        if !param.value.is_constant() || !rng.gen_bool(0.35) {
            continue;
        }
        let Some(decl) = action_def.param(&param.name) else {
            continue;
        };
        let compatible: Vec<&ParamDef> = source_def
            .output_params()
            .filter(|out| decl.ty.assignable_from(&out.ty))
            .collect();
        let Some(chosen) = compatible.choose(rng) else {
            continue;
        };
        let rendered = value_tokens_local(local, &param.value);
        if rendered.is_empty() {
            continue;
        }
        let mut replacement = TokenStream::new();
        replacement.push(ctx.vocab.sym.the);
        local.intern_words(&chosen.canonical, &mut replacement);
        if let Some(rewritten) = vp_utterance.replacen_seq(&rendered, &replacement) {
            *vp_utterance = rewritten;
            Arc::make_mut(action).in_params[index].value = Value::VarRef(chosen.name.clone());
        }
    }
}

/// `now => query => notify` from a noun phrase ("show me $np").
struct GetNotifyRule;

impl ConstructRule for GetNotifyRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::GetNotify
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::QueryNoun]
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        _local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let np = pools.choose_query_phrase(rng)?;
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |_, out| {
            out.extend_from_slice(&np.utterance)
        });
        let program = Program::get_query(np.query.clone()?);
        Some(SynthesizedExample::new(
            utterance,
            program,
            np.depth + 1,
            self.label(),
        ))
    }
}

/// `now => action` (or a query verb phrase turned into `now => query =>
/// notify`) from a verb phrase ("please $vp").
struct DoCommandRule;

impl ConstructRule for DoCommandRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::DoCommand
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::ActionVerb, PhraseKind::QueryVerb]
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        _local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        // Some of the time, a query verb phrase ("translate hello to
        // french") becomes a `now => query => notify` command.
        if rng.gen_bool(0.4) && !pools.pools().query_verbs.is_empty() {
            let qvp = pools.choose(PoolId::QueryVerbs, rng)?;
            let mut utterance = TokenStream::new();
            variant.splice(&mut utterance, |_, out| {
                out.extend_from_slice(&qvp.utterance)
            });
            let program = Program::get_query(qvp.query.clone()?);
            return Some(SynthesizedExample::new(
                utterance,
                program,
                qvp.depth + 1,
                self.label(),
            ));
        }
        let vp = pools.choose(PoolId::ActionVerbs, rng)?;
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |_, out| {
            out.extend_from_slice(&vp.utterance)
        });
        let program = Program::do_action(vp.action.clone()?);
        Some(SynthesizedExample::new(
            utterance,
            program,
            vp.depth + 1,
            self.label(),
        ))
    }
}

/// `monitor => notify` from a when phrase ("notify me $wp").
struct WhenNotifyRule;

impl ConstructRule for WhenNotifyRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::WhenNotify
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::WhenPhrase]
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        _local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let wp = pools.choose_when_phrase(rng)?;
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |_, out| {
            out.extend_from_slice(&wp.utterance)
        });
        let program = Program::when_notify(wp.query.clone()?);
        Some(SynthesizedExample::new(
            utterance,
            program,
            wp.depth + 1,
            self.label(),
        ))
    }
}

/// The when phrase without its leading "when" (for "$vp whenever $wp_bare"
/// surfaces) — the token counterpart of `strip_prefix("when ")`.
fn wp_bare<'p>(vocab: &SynthVocab, wp: &'p PhraseDerivation) -> &'p [crate::intern::Symbol] {
    match wp.utterance.as_slice() {
        [first, rest @ ..] if *first == vocab.sym.when && !rest.is_empty() => rest,
        whole => whole,
    }
}

/// `monitor => action`, in both surface orders (`"$wp , $vp"` and
/// `"$vp $wp"`), with optional parameter passing.
struct WhenDoRule {
    action_first: bool,
}

impl ConstructRule for WhenDoRule {
    fn kind(&self) -> ConstructKind {
        if self.action_first {
            ConstructKind::DoWhen
        } else {
            ConstructKind::WhenDo
        }
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::WhenPhrase, PhraseKind::ActionVerb]
    }

    fn min_depth(&self) -> usize {
        3
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let wp = pools.choose_when_phrase(rng)?;
        let vp = pools.choose(PoolId::ActionVerbs, rng)?;
        let mut action = vp.action.clone()?;
        let mut vp_utterance = vp.utterance.clone();
        pass_parameters(ctx, wp, &mut action, &mut vp_utterance, local, rng);
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |piece, out| match piece {
            VariantPiece::WpBare => out.extend_from_slice(wp_bare(ctx.vocab, wp)),
            VariantPiece::Wp => out.extend_from_slice(&wp.utterance),
            _ => out.extend_from_slice(&vp_utterance),
        });
        let program = Program {
            stream: Stream::Monitor {
                query: wp.query.clone()?,
                on: Vec::new(),
            },
            query: None,
            action: Action::Invocation(action),
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            wp.depth + vp.depth + 1,
            self.label(),
        ))
    }
}

/// `now => query => action` ("get $np and then $vp"), with optional
/// parameter passing.
struct GetDoRule;

impl ConstructRule for GetDoRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::GetDo
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::QueryNoun, PhraseKind::ActionVerb]
    }

    fn min_depth(&self) -> usize {
        3
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let np = pools.choose_query_phrase(rng)?;
        let vp = pools.choose(PoolId::ActionVerbs, rng)?;
        let mut action = vp.action.clone()?;
        let mut vp_utterance = vp.utterance.clone();
        pass_parameters(ctx, np, &mut action, &mut vp_utterance, local, rng);
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |piece, out| match piece {
            VariantPiece::Np => out.extend_from_slice(&np.utterance),
            _ => out.extend_from_slice(&vp_utterance),
        });
        let program = Program {
            stream: Stream::Now,
            query: Some(np.query.clone()?),
            action: Action::Invocation(action),
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            np.depth + vp.depth + 1,
            self.label(),
        ))
    }
}

/// `monitor => query => notify` ("$wp , show me $np").
struct WhenGetNotifyRule;

impl ConstructRule for WhenGetNotifyRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::WhenGetNotify
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::WhenPhrase, PhraseKind::QueryNoun]
    }

    fn min_depth(&self) -> usize {
        3
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        _local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let wp = pools.choose_when_phrase(rng)?;
        let np = pools.choose_query_phrase(rng)?;
        if wp.function == np.function {
            return None;
        }
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |piece, out| match piece {
            VariantPiece::Wp => out.extend_from_slice(&wp.utterance),
            _ => out.extend_from_slice(&np.utterance),
        });
        let program = Program {
            stream: Stream::Monitor {
                query: wp.query.clone()?,
                on: Vec::new(),
            },
            query: Some(np.query.clone()?),
            action: Action::Notify,
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            wp.depth + np.depth + 1,
            self.label(),
        ))
    }
}

/// `attimer => action` ("every day at $time , $vp").
struct AtTimerDoRule;

impl ConstructRule for AtTimerDoRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::AtTimerDo
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::ActionVerb]
    }

    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.include_timers && config.max_depth >= self.min_depth()
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let vp = pools.choose(PoolId::ActionVerbs, rng)?;
        let time = Value::Time(
            rng.gen_range(6..23),
            [0u8, 15, 30, 45][rng.gen_range(0..4usize)],
        );
        let time_tokens = value_tokens_local(local, &time);
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |piece, out| match piece {
            VariantPiece::Time => out.extend_from_slice(&time_tokens),
            _ => out.extend_from_slice(&vp.utterance),
        });
        let program = Program {
            stream: Stream::AtTimer { time },
            query: None,
            action: Action::Invocation(vp.action.clone()?),
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            vp.depth + 1,
            self.label(),
        ))
    }
}

/// `timer => action` ("every $interval , $vp").
struct TimerDoRule;

impl ConstructRule for TimerDoRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::TimerDo
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::ActionVerb]
    }

    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.include_timers && config.max_depth >= self.min_depth()
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let vp = pools.choose(PoolId::ActionVerbs, rng)?;
        let (amount, unit) = [
            (5.0, Unit::Minute),
            (30.0, Unit::Minute),
            (1.0, Unit::Hour),
            (2.0, Unit::Hour),
            (1.0, Unit::Day),
            (1.0, Unit::Week),
        ][rng.gen_range(0..6usize)];
        let interval = Value::Measure(amount, unit);
        let interval_tokens = value_tokens_local(local, &interval);
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |piece, out| match piece {
            VariantPiece::Interval => out.extend_from_slice(&interval_tokens),
            _ => out.extend_from_slice(&vp.utterance),
        });
        let program = Program {
            stream: Stream::Timer {
                base: Value::Date(thingtalk::value::DateValue::Edge(
                    thingtalk::value::DateEdge::Now,
                )),
                interval,
            },
            query: None,
            action: Action::Invocation(vp.action.clone()?),
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            vp.depth + 1,
            self.label(),
        ))
    }
}

/// `edge (monitor …) on pred => notify/action` ("when $pred , $vp").
struct EdgeCommandRule;

impl ConstructRule for EdgeCommandRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::EdgeCommand
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::WhenPhrase, PhraseKind::ActionVerb]
    }

    fn min_depth(&self) -> usize {
        3
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let wp = pools.choose(PoolId::Whens, rng)?;
        let function = ctx
            .library
            .function(&wp.function.class, &wp.function.function)?;
        let numeric: Vec<&ParamDef> = function
            .output_params()
            .filter(|p| p.ty.is_numeric() && !matches!(p.ty, Type::Date | Type::Time))
            .collect();
        let param = numeric.choose(rng)?;
        let value = sample_value(ctx.datasets, param, rng);
        let above = rng.gen_bool(0.5);
        let op = if above { CompareOp::Gt } else { CompareOp::Lt };
        // "the {param} of {function} goes above {value}" as spliced runs.
        let sym = &ctx.vocab.sym;
        let mut pred_tokens = TokenStream::new();
        pred_tokens.push(sym.the);
        local.intern_words(&param.canonical, &mut pred_tokens);
        pred_tokens.push(sym.of);
        local.intern_words(&function.canonical, &mut pred_tokens);
        if above {
            pred_tokens.push(sym.goes);
            pred_tokens.push(sym.above);
        } else {
            pred_tokens.push(sym.drops);
            pred_tokens.push(sym.below);
        }
        let value_run = value_tokens_local(local, &value);
        pred_tokens.extend_from_slice(&value_run);
        let predicate = Predicate::atom(param.name.clone(), op, value);
        let uses_action = variant.has_vp();
        let (action, vp_utterance, extra_depth) = if uses_action {
            let vp = pools.choose(PoolId::ActionVerbs, rng)?;
            (
                Action::Invocation(vp.action.clone()?),
                vp.utterance.clone(),
                vp.depth,
            )
        } else {
            (Action::Notify, TokenStream::new(), 0)
        };
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |piece, out| match piece {
            VariantPiece::Pred => out.extend_from_slice(&pred_tokens),
            _ => out.extend_from_slice(&vp_utterance),
        });
        let program = Program {
            stream: Stream::EdgeFilter {
                stream: Arc::new(Stream::Monitor {
                    query: wp.query.clone()?,
                    on: Vec::new(),
                }),
                predicate,
            },
            query: None,
            action,
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            wp.depth + extra_depth + 2,
            self.label(),
        ))
    }
}

/// TT+A aggregation queries ("what is the total $field of $np", §6.3).
struct AggregationRule;

impl ConstructRule for AggregationRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::Aggregation
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::QueryNoun]
    }

    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.include_aggregation && config.max_depth >= self.min_depth()
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        // The aggregation op is read off the chosen pattern text, so draw
        // the index and look at both the compiled and the text form.
        let variants = ctx.vocab.variants(self.kind());
        if variants.is_empty() {
            return None;
        }
        let index = rng.gen_range(0..variants.len());
        let variant = &variants[index];
        let variant_text = self.kind().variants()[index];
        let np = pools.choose(PoolId::Nouns, rng)?;
        if !np.is_list(ctx.library) {
            return None;
        }
        let function = ctx
            .library
            .function(&np.function.class, &np.function.function)?;
        let numeric: Vec<&ParamDef> = function
            .output_params()
            .filter(|p| matches!(p.ty, Type::Number | Type::Measure(_) | Type::Currency))
            .collect();
        let param = numeric.choose(rng)?;
        let op = match variant_text {
            v if v.contains("average") => thingtalk::AggregationOp::Avg,
            v if v.contains("maximum") => thingtalk::AggregationOp::Max,
            v if v.contains("minimum") => thingtalk::AggregationOp::Min,
            _ => thingtalk::AggregationOp::Sum,
        };
        let mut field_tokens = TokenStream::new();
        local.intern_words(&param.canonical, &mut field_tokens);
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |piece, out| match piece {
            VariantPiece::Field => out.extend_from_slice(&field_tokens),
            _ => out.extend_from_slice(&np.utterance),
        });
        let program = Program::get_query(Query::Aggregation {
            op,
            field: Some(param.name.clone()),
            query: np.query.clone()?,
        });
        Some(SynthesizedExample::new(
            utterance,
            program,
            np.depth + 1,
            self.label(),
        ))
    }
}

/// TT+A count queries ("how many $np are there").
struct CountAggregationRule;

impl ConstructRule for CountAggregationRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::CountAggregation
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::QueryNoun]
    }

    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.include_aggregation && config.max_depth >= self.min_depth()
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &mut PoolSampler<'_>,
        _local: &mut LocalInterner<'_>,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(ctx.vocab, self.kind(), rng)?;
        let np = pools.choose_query_phrase(rng)?;
        if !np.is_list(ctx.library) {
            return None;
        }
        let mut utterance = TokenStream::new();
        variant.splice(&mut utterance, |_, out| {
            out.extend_from_slice(&np.utterance)
        });
        let program = Program::get_query(Query::Aggregation {
            op: thingtalk::AggregationOp::Count,
            field: None,
            query: np.query.clone()?,
        });
        Some(SynthesizedExample::new(
            utterance,
            program,
            np.depth + 1,
            self.label(),
        ))
    }
}
