//! The builtin construct rules: one [`ConstructRule`] per construct
//! template, ported from the old monolithic per-kind `match` in the
//! generator.
//!
//! Every rule follows the same shape: pick a surface variant, draw phrase
//! derivations from the pools, optionally rewrite parameters, and assemble
//! the program by sharing the phrase fragments (`Arc` bumps, no deep
//! clones). Rules reject combinations by returning `None` — the
//! semantic-function rejection of §3.1.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use thingtalk::ast::{Action, CompareOp, Invocation, Predicate, Program, Query, Stream};
use thingtalk::class::ParamDef;
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::types::Type;
use thingtalk::units::Unit;
use thingtalk::value::Value;

use crate::constructs::ConstructKind;
use crate::example::SynthesizedExample;
use crate::generator::GeneratorConfig;
use crate::phrases::{render_value, sample_value, PhraseDerivation, PhraseKind};
use crate::pools::PhrasePools;
use crate::registry::{ConstructRule, RuleCtx};

/// All builtin dataset rules, in canonical registry order.
pub fn builtin_rules() -> Vec<Box<dyn ConstructRule>> {
    vec![
        Box::new(GetNotifyRule),
        Box::new(DoCommandRule),
        Box::new(WhenNotifyRule),
        Box::new(WhenDoRule {
            action_first: false,
        }),
        Box::new(WhenDoRule { action_first: true }),
        Box::new(GetDoRule),
        Box::new(WhenGetNotifyRule),
        Box::new(AtTimerDoRule),
        Box::new(TimerDoRule),
        Box::new(EdgeCommandRule),
        Box::new(AggregationRule),
        Box::new(CountAggregationRule),
    ]
}

/// Pick a surface variant of the rule's construct kind.
fn pick_variant(kind: ConstructKind, rng: &mut StdRng) -> Option<&'static str> {
    kind.variants().choose(rng).copied()
}

/// With some probability, rewrite constant parameters of the action as
/// parameter passing from the preceding query clause, adjusting the
/// utterance ("post funny cat on twitter" → "post the caption on twitter"),
/// as in Fig. 1. Mutation is copy-on-write: the shared invocation is cloned
/// only when a parameter is actually rewritten.
fn pass_parameters(
    ctx: &RuleCtx<'_>,
    source: &PhraseDerivation,
    action: &mut Arc<Invocation>,
    vp_utterance: &mut String,
    rng: &mut StdRng,
) {
    let Some(source_def) = ctx
        .library
        .function(&source.function.class, &source.function.function)
    else {
        return;
    };
    let Some(action_def) = ctx
        .library
        .function(&action.function.class, &action.function.function)
    else {
        return;
    };
    for index in 0..action.in_params.len() {
        let param = &action.in_params[index];
        if !param.value.is_constant() || !rng.gen_bool(0.35) {
            continue;
        }
        let Some(decl) = action_def.param(&param.name) else {
            continue;
        };
        let compatible: Vec<&ParamDef> = source_def
            .output_params()
            .filter(|out| decl.ty.assignable_from(&out.ty))
            .collect();
        let Some(chosen) = compatible.choose(rng) else {
            continue;
        };
        let rendered = render_value(&param.value);
        if !rendered.is_empty() && vp_utterance.contains(&rendered) {
            *vp_utterance =
                vp_utterance.replacen(&rendered, &format!("the {}", chosen.canonical), 1);
            Arc::make_mut(action).in_params[index].value = Value::VarRef(chosen.name.clone());
        }
    }
}

/// `now => query => notify` from a noun phrase ("show me $np").
struct GetNotifyRule;

impl ConstructRule for GetNotifyRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::GetNotify
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::QueryNoun]
    }

    fn instantiate(
        &self,
        _ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let np = pools.choose_query_phrase(rng)?;
        let utterance = variant.replace("$np", &np.utterance);
        let program = Program::get_query(np.query.clone()?);
        Some(SynthesizedExample::new(
            utterance,
            program,
            np.depth + 1,
            self.label(),
        ))
    }
}

/// `now => action` (or a query verb phrase turned into `now => query =>
/// notify`) from a verb phrase ("please $vp").
struct DoCommandRule;

impl ConstructRule for DoCommandRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::DoCommand
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::ActionVerb, PhraseKind::QueryVerb]
    }

    fn instantiate(
        &self,
        _ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        // Some of the time, a query verb phrase ("translate hello to
        // french") becomes a `now => query => notify` command.
        if rng.gen_bool(0.4) && !pools.query_verbs.is_empty() {
            let qvp = pools.query_verbs.choose(rng)?;
            let utterance = variant.replace("$vp", &qvp.utterance);
            let program = Program::get_query(qvp.query.clone()?);
            return Some(SynthesizedExample::new(
                utterance,
                program,
                qvp.depth + 1,
                self.label(),
            ));
        }
        let vp = pools.action_verbs.choose(rng)?;
        let utterance = variant.replace("$vp", &vp.utterance);
        let program = Program::do_action(vp.action.clone()?);
        Some(SynthesizedExample::new(
            utterance,
            program,
            vp.depth + 1,
            self.label(),
        ))
    }
}

/// `monitor => notify` from a when phrase ("notify me $wp").
struct WhenNotifyRule;

impl ConstructRule for WhenNotifyRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::WhenNotify
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::WhenPhrase]
    }

    fn instantiate(
        &self,
        _ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let wp = pools.choose_when_phrase(rng)?;
        let utterance = variant.replace("$wp", &wp.utterance);
        let program = Program::when_notify(wp.query.clone()?);
        Some(SynthesizedExample::new(
            utterance,
            program,
            wp.depth + 1,
            self.label(),
        ))
    }
}

/// `monitor => action`, in both surface orders (`"$wp , $vp"` and
/// `"$vp $wp"`), with optional parameter passing.
struct WhenDoRule {
    action_first: bool,
}

impl ConstructRule for WhenDoRule {
    fn kind(&self) -> ConstructKind {
        if self.action_first {
            ConstructKind::DoWhen
        } else {
            ConstructKind::WhenDo
        }
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::WhenPhrase, PhraseKind::ActionVerb]
    }

    fn min_depth(&self) -> usize {
        3
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let wp = pools.choose_when_phrase(rng)?;
        let vp = pools.action_verbs.choose(rng)?;
        let mut action = vp.action.clone()?;
        let mut vp_utterance = vp.utterance.clone();
        pass_parameters(ctx, wp, &mut action, &mut vp_utterance, rng);
        let wp_bare = wp
            .utterance
            .strip_prefix("when ")
            .unwrap_or(&wp.utterance)
            .to_owned();
        let utterance = variant
            .replace("$wp_bare", &wp_bare)
            .replace("$wp", &wp.utterance)
            .replace("$vp", &vp_utterance);
        let program = Program {
            stream: Stream::Monitor {
                query: wp.query.clone()?,
                on: Vec::new(),
            },
            query: None,
            action: Action::Invocation(action),
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            wp.depth + vp.depth + 1,
            self.label(),
        ))
    }
}

/// `now => query => action` ("get $np and then $vp"), with optional
/// parameter passing.
struct GetDoRule;

impl ConstructRule for GetDoRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::GetDo
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::QueryNoun, PhraseKind::ActionVerb]
    }

    fn min_depth(&self) -> usize {
        3
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let np = pools.choose_query_phrase(rng)?;
        let vp = pools.action_verbs.choose(rng)?;
        let mut action = vp.action.clone()?;
        let mut vp_utterance = vp.utterance.clone();
        pass_parameters(ctx, np, &mut action, &mut vp_utterance, rng);
        let utterance = variant
            .replace("$np", &np.utterance)
            .replace("$vp", &vp_utterance);
        let program = Program {
            stream: Stream::Now,
            query: Some(np.query.clone()?),
            action: Action::Invocation(action),
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            np.depth + vp.depth + 1,
            self.label(),
        ))
    }
}

/// `monitor => query => notify` ("$wp , show me $np").
struct WhenGetNotifyRule;

impl ConstructRule for WhenGetNotifyRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::WhenGetNotify
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::WhenPhrase, PhraseKind::QueryNoun]
    }

    fn min_depth(&self) -> usize {
        3
    }

    fn instantiate(
        &self,
        _ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let wp = pools.choose_when_phrase(rng)?;
        let np = pools.choose_query_phrase(rng)?;
        if wp.function == np.function {
            return None;
        }
        let utterance = variant
            .replace("$wp", &wp.utterance)
            .replace("$np", &np.utterance);
        let program = Program {
            stream: Stream::Monitor {
                query: wp.query.clone()?,
                on: Vec::new(),
            },
            query: Some(np.query.clone()?),
            action: Action::Notify,
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            wp.depth + np.depth + 1,
            self.label(),
        ))
    }
}

/// `attimer => action` ("every day at $time , $vp").
struct AtTimerDoRule;

impl ConstructRule for AtTimerDoRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::AtTimerDo
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::ActionVerb]
    }

    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.include_timers && config.max_depth >= self.min_depth()
    }

    fn instantiate(
        &self,
        _ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let vp = pools.action_verbs.choose(rng)?;
        let time = Value::Time(
            rng.gen_range(6..23),
            [0u8, 15, 30, 45][rng.gen_range(0..4usize)],
        );
        let utterance = variant
            .replace("$time", &render_value(&time))
            .replace("$vp", &vp.utterance);
        let program = Program {
            stream: Stream::AtTimer { time },
            query: None,
            action: Action::Invocation(vp.action.clone()?),
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            vp.depth + 1,
            self.label(),
        ))
    }
}

/// `timer => action` ("every $interval , $vp").
struct TimerDoRule;

impl ConstructRule for TimerDoRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::TimerDo
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::ActionVerb]
    }

    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.include_timers && config.max_depth >= self.min_depth()
    }

    fn instantiate(
        &self,
        _ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let vp = pools.action_verbs.choose(rng)?;
        let (amount, unit) = [
            (5.0, Unit::Minute),
            (30.0, Unit::Minute),
            (1.0, Unit::Hour),
            (2.0, Unit::Hour),
            (1.0, Unit::Day),
            (1.0, Unit::Week),
        ][rng.gen_range(0..6usize)];
        let interval = Value::Measure(amount, unit);
        let utterance = variant
            .replace("$interval", &render_value(&interval))
            .replace("$vp", &vp.utterance);
        let program = Program {
            stream: Stream::Timer {
                base: Value::Date(thingtalk::value::DateValue::Edge(
                    thingtalk::value::DateEdge::Now,
                )),
                interval,
            },
            query: None,
            action: Action::Invocation(vp.action.clone()?),
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            vp.depth + 1,
            self.label(),
        ))
    }
}

/// `edge (monitor …) on pred => notify/action` ("when $pred , $vp").
struct EdgeCommandRule;

impl ConstructRule for EdgeCommandRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::EdgeCommand
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::WhenPhrase, PhraseKind::ActionVerb]
    }

    fn min_depth(&self) -> usize {
        3
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let wp = pools.whens.choose(rng)?;
        let function = ctx
            .library
            .function(&wp.function.class, &wp.function.function)?;
        let numeric: Vec<&ParamDef> = function
            .output_params()
            .filter(|p| p.ty.is_numeric() && !matches!(p.ty, Type::Date | Type::Time))
            .collect();
        let param = numeric.choose(rng)?;
        let value = sample_value(ctx.datasets, param, rng);
        let above = rng.gen_bool(0.5);
        let op = if above { CompareOp::Gt } else { CompareOp::Lt };
        let direction = if above { "goes above" } else { "drops below" };
        let pred_text = format!(
            "the {} of {} {} {}",
            param.canonical,
            function.canonical,
            direction,
            render_value(&value)
        );
        let predicate = Predicate::atom(param.name.clone(), op, value);
        let uses_action = variant.contains("$vp");
        let (action, vp_utterance, extra_depth) = if uses_action {
            let vp = pools.action_verbs.choose(rng)?;
            (
                Action::Invocation(vp.action.clone()?),
                vp.utterance.clone(),
                vp.depth,
            )
        } else {
            (Action::Notify, String::new(), 0)
        };
        let utterance = variant
            .replace("$pred", &pred_text)
            .replace("$vp", &vp_utterance);
        let program = Program {
            stream: Stream::EdgeFilter {
                stream: Arc::new(Stream::Monitor {
                    query: wp.query.clone()?,
                    on: Vec::new(),
                }),
                predicate,
            },
            query: None,
            action,
        };
        Some(SynthesizedExample::new(
            utterance,
            program,
            wp.depth + extra_depth + 2,
            self.label(),
        ))
    }
}

/// TT+A aggregation queries ("what is the total $field of $np", §6.3).
struct AggregationRule;

impl ConstructRule for AggregationRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::Aggregation
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::QueryNoun]
    }

    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.include_aggregation && config.max_depth >= self.min_depth()
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let np = pools.nouns.choose(rng)?;
        if !np.is_list(ctx.library) {
            return None;
        }
        let function = ctx
            .library
            .function(&np.function.class, &np.function.function)?;
        let numeric: Vec<&ParamDef> = function
            .output_params()
            .filter(|p| matches!(p.ty, Type::Number | Type::Measure(_) | Type::Currency))
            .collect();
        let param = numeric.choose(rng)?;
        let op = match variant {
            v if v.contains("average") => thingtalk::AggregationOp::Avg,
            v if v.contains("maximum") => thingtalk::AggregationOp::Max,
            v if v.contains("minimum") => thingtalk::AggregationOp::Min,
            _ => thingtalk::AggregationOp::Sum,
        };
        let utterance = variant
            .replace("$field", &param.canonical)
            .replace("$np", &np.utterance);
        let program = Program::get_query(Query::Aggregation {
            op,
            field: Some(param.name.clone()),
            query: np.query.clone()?,
        });
        Some(SynthesizedExample::new(
            utterance,
            program,
            np.depth + 1,
            self.label(),
        ))
    }
}

/// TT+A count queries ("how many $np are there").
struct CountAggregationRule;

impl ConstructRule for CountAggregationRule {
    fn kind(&self) -> ConstructKind {
        ConstructKind::CountAggregation
    }

    fn inputs(&self) -> &'static [PhraseKind] {
        &[PhraseKind::QueryNoun]
    }

    fn enabled(&self, config: &GeneratorConfig) -> bool {
        config.include_aggregation && config.max_depth >= self.min_depth()
    }

    fn instantiate(
        &self,
        ctx: &RuleCtx<'_>,
        pools: &PhrasePools,
        rng: &mut StdRng,
    ) -> Option<SynthesizedExample> {
        let variant = pick_variant(self.kind(), rng)?;
        let np = pools.choose_query_phrase(rng)?;
        if !np.is_list(ctx.library) {
            return None;
        }
        let utterance = variant.replace("$np", &np.utterance);
        let program = Program::get_query(Query::Aggregation {
            op: thingtalk::AggregationOp::Count,
            field: None,
            query: np.query.clone()?,
        });
        Some(SynthesizedExample::new(
            utterance,
            program,
            np.depth + 1,
            self.label(),
        ))
    }
}
