//! Sharded deduplication for the streaming synthesis engine.
//!
//! The collect-then-dedup engine ran a single sequential `HashSet` pass
//! after the parallel barrier, which serialized dedup and forced the whole
//! candidate set to be resident at once. [`ShardedDedup`] splits the key
//! space into `N` shards (`shard = fold(fingerprint) % N`), each owning its
//! own FNV-keyed set, so a batch of keys can be tested and inserted with one
//! worker per shard — dedup parallelizes instead of running after the
//! barrier.
//!
//! Sharding is an implementation detail, not a semantics change: a key lands
//! in exactly one shard, every shard processes its sub-sequence of the batch
//! in arrival order, and shards never share keys, so the keep/drop decision
//! for every candidate is identical to a sequential first-wins scan. The
//! retained dataset is therefore **byte-identical for any shard count** —
//! `tests/sharding.rs` and the CI determinism matrix enforce this.

use std::collections::HashSet;
use std::sync::Mutex;

/// Minimum batch size for which [`ShardedDedup::insert_batch`] dispatches
/// one worker per shard; smaller batches insert inline because spawning
/// scoped workers costs more than the inserts themselves.
pub const PARALLEL_BATCH_THRESHOLD: usize = 1024;

/// A dedup set partitioned into independently locked shards.
pub struct ShardedDedup {
    shards: Vec<Mutex<HashSet<u128>>>,
}

impl ShardedDedup {
    /// Create a dedup set with `shard_count` shards (`0` is treated as 1).
    pub fn new(shard_count: usize) -> Self {
        ShardedDedup {
            shards: (0..shard_count.max(1))
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key belongs to: the 128-bit fingerprint folded to 64 bits
    /// and reduced modulo the shard count.
    pub fn shard_of(&self, key: u128) -> usize {
        let folded = (key as u64) ^ ((key >> 64) as u64);
        (folded % self.shards.len() as u64) as usize
    }

    /// Insert one key; `true` when the key was not yet present.
    pub fn insert(&self, key: u128) -> bool {
        self.shards[self.shard_of(key)]
            .lock()
            .expect("dedup shard poisoned")
            .insert(key)
    }

    /// Insert a batch of keys, returning for each (in order) whether it was
    /// fresh. Large batches are processed with one worker per shard; each
    /// shard scans its own sub-sequence in batch order, so the result is
    /// always identical to calling [`ShardedDedup::insert`] sequentially.
    ///
    /// Batches below [`PARALLEL_BATCH_THRESHOLD`] keys insert inline: the
    /// scoped-worker dispatch costs more than the handful of uncontended
    /// hash inserts it would spread out. Either path yields the same
    /// first-wins decisions.
    pub fn insert_batch(&self, threads: usize, keys: &[u128]) -> Vec<bool> {
        if self.shards.len() == 1
            || keys.len() < PARALLEL_BATCH_THRESHOLD
            || genie_parallel::resolve_threads(threads) <= 1
        {
            return keys.iter().map(|&key| self.insert(key)).collect();
        }
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (position, &key) in keys.iter().enumerate() {
            buckets[self.shard_of(key)].push(position);
        }
        let per_shard = genie_parallel::par_map(threads, &buckets, |shard, positions| {
            if positions.is_empty() {
                return Vec::new();
            }
            let mut set = self.shards[shard].lock().expect("dedup shard poisoned");
            positions
                .iter()
                .map(|&position| set.insert(keys[position]))
                .collect::<Vec<bool>>()
        });
        let mut out = vec![false; keys.len()];
        for (positions, fresh) in buckets.iter().zip(per_shard) {
            for (&position, fresh) in positions.iter().zip(fresh) {
                out[position] = fresh;
            }
        }
        out
    }

    /// Total number of distinct keys across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("dedup shard poisoned").len())
            .sum()
    }

    /// Whether no key has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dedup::fingerprint;

    fn keys(n: usize) -> Vec<u128> {
        // Fingerprint-derived keys with deliberate repeats every 7th entry.
        (0..n)
            .map(|i| {
                let base = fingerprint(&(i % (n - n / 7))) as u128;
                (base << 64) | fingerprint(&format!("k{}", i % (n - n / 7))) as u128
            })
            .collect()
    }

    #[test]
    fn keys_never_collide_across_shards() {
        // A key belongs to exactly one shard: inserting it twice must hit
        // the same shard and be rejected the second time, for any count.
        for shard_count in [1, 3, 4, 16] {
            let dedup = ShardedDedup::new(shard_count);
            for key in keys(200) {
                let first = dedup.insert(key);
                assert!(!dedup.insert(key), "key readmitted by another shard");
                let _ = first;
            }
            let distinct: std::collections::HashSet<u128> = keys(200).into_iter().collect();
            assert_eq!(dedup.len(), distinct.len(), "shards={shard_count}");
        }
    }

    #[test]
    fn batch_insert_matches_sequential_insert_for_any_shard_count() {
        // 500 keys exercises the inline path, 5000 the per-shard-worker
        // path; both must reproduce the sequential first-wins decisions.
        for size in [500, PARALLEL_BATCH_THRESHOLD * 5] {
            let keys = keys(size);
            let sequential: Vec<bool> = {
                let mut seen = HashSet::new();
                keys.iter().map(|&k| seen.insert(k)).collect()
            };
            for shard_count in [1, 4, 16] {
                for threads in [1, 2, 8] {
                    let dedup = ShardedDedup::new(shard_count);
                    assert_eq!(
                        dedup.insert_batch(threads, &keys),
                        sequential,
                        "size={size} shards={shard_count} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn first_wins_across_batches() {
        let dedup = ShardedDedup::new(4);
        let first = dedup.insert_batch(2, &[1, 2, 3, 2]);
        assert_eq!(first, vec![true, true, true, false]);
        let second = dedup.insert_batch(2, &[3, 4, 1]);
        assert_eq!(second, vec![false, true, false]);
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn zero_shards_degrades_to_one() {
        let dedup = ShardedDedup::new(0);
        assert_eq!(dedup.shard_count(), 1);
        assert!(dedup.is_empty());
        assert!(dedup.insert(9));
        assert!(!dedup.is_empty());
    }
}
