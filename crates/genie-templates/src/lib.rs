//! # genie-templates — the NL-template language and sentence synthesis
//!
//! Section 3.1 of the paper introduces a template language with two layers:
//!
//! * **primitive templates**, written by skill developers, map utterances
//!   (noun phrases, verb phrases, when phrases) to code fragments using one
//!   skill function (Table 1) — these live in the `thingpedia` crate next to
//!   the skills;
//! * **construct templates**, written by the language designer, combine
//!   derivations of grammar categories into full programs ("when $wp , $vp",
//!   "get $np and then $vp", "$np having $pred", …) through semantic
//!   functions that build the formal representation and can reject invalid
//!   combinations (e.g. monitoring a non-monitorable query).
//!
//! The [`generator`] module implements *synthesis by sampling*: instead of
//! enumerating every derivation (which grows exponentially with depth and
//! library size), it samples a configurable number of derivations per
//! construct template, at increasing depth.
//!
//! Construct templates are pluggable [`ConstructRule`]s collected in a
//! [`RuleRegistry`] (see [`registry`]); the generator streams `(rule, batch)`
//! work items in parallel, each with its own RNG stream
//! (`seed ⊕ rule_id ⊕ mix(batch)`), through a sharded dedup set (see
//! [`shards`]), so output is byte-identical regardless of the worker count
//! and the shard count, and memory stays bounded by the in-flight window.
//!
//! # Migration: interned token-stream utterances
//!
//! Utterances are no longer `String`s. [`SynthesizedExample::utterance`]
//! and [`PhraseDerivation::utterance`] are interned
//! [`TokenStream`]s — sequences of 4-byte [`Symbol`]s in an arena
//! ([`intern`]) — so the synthesis hot path splices, compares and
//! fingerprints ids instead of allocating and scanning text. Porting
//! callers:
//!
//! * read the text: `example.utterance_text(generator.interner())`, or
//!   `intern::shared().render(&example.utterance)` when using the default
//!   arena;
//! * build a stream from text (tests, custom rules):
//!   `intern::shared().stream_of("show me my files")`;
//! * custom [`ConstructRule`]s receive a `&mut LocalInterner` in
//!   [`ConstructRule::instantiate`]; intern fresh text through it (the
//!   engine commits pending fragments at the canonical sink, keeping
//!   symbol assignment worker-count-invariant);
//! * dedup keys moved from `dedup::example_key(&str, &Program)` (still
//!   available for text) to [`dedup::example_stream_key`] over symbol
//!   slices plus [`dedup::program_fingerprints`];
//! * `construct` labels are `&'static str` now (rule labels are static).
//!
//! Rendered output is unchanged byte for byte: the interner is injective
//! and rendering joins fragments with single spaces, so datasets, digests
//! and dedup decisions are identical to the string-based engine.
//!
//! # Example
//!
//! ```
//! use genie_templates::{GeneratorConfig, SentenceGenerator};
//! use thingpedia::Thingpedia;
//!
//! let library = Thingpedia::builtin();
//! let config = GeneratorConfig {
//!     target_per_rule: 5,
//!     max_depth: 3,
//!     seed: 1,
//!     ..GeneratorConfig::default()
//! };
//! let generator = SentenceGenerator::new(&library, config);
//! let examples = generator.synthesize();
//! assert!(!examples.is_empty());
//! assert!(examples.iter().any(|e| e.program.is_compound()));
//! ```

pub mod config;
pub mod constructs;
pub mod dedup;
pub mod example;
pub mod generator;
pub mod intern;
pub mod phrases;
pub mod pools;
pub mod registry;
pub mod rules;
pub mod shards;

pub use config::{ConfigError, GeneratorConfigBuilder};
pub use constructs::{construct_template_counts, ConstructKind};
pub use example::{ExampleFlags, SynthesizedExample};
pub use generator::{
    BatchObserver, BatchProvider, BatchRecord, GeneratorConfig, ProvidedBatch, SentenceGenerator,
    SynthesisStats,
};
pub use intern::{Interner, LocalInterner, Symbol, SynthVocab, TokenStream};
pub use phrases::{PhraseDerivation, PhraseKind};
pub use pools::{PhrasePools, PoolDigests, PoolDraw, PoolId, PoolSampler, PoolsDelta};
pub use registry::{ConstructRule, RuleCtx, RuleRegistry};
pub use shards::ShardedDedup;
