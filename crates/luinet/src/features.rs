//! Split-hashed feature vectors for the structured decoder.
//!
//! The decoder scores candidate next-tokens with a linear model over sparse
//! features hashed into a fixed-size weight table (the hashing trick). Every
//! feature is a *(context, candidate)* pair — the context half describes the
//! decoding state (previous program tokens, position, sentence words), the
//! candidate half names the token being scored — and the two halves are
//! hashed **independently**:
//!
//! * the context half of every bucket is folded once per decode step into a
//!   reusable [`StepContext`] (sentence-dependent halves are folded once per
//!   *sentence* into a [`SentenceIndex`]);
//! * the candidate half is one 64-bit hash per token, cached alongside the
//!   compiled candidate tables, so scoring a candidate against all of its
//!   buckets is pure integer mixing ([`mix_bucket`]) — O(buckets +
//!   candidates) per step instead of the old monolithic scheme's O(buckets ×
//!   candidate-bytes) re-hashing of candidate text for every bucket.
//!
//! [`candidate_buckets_reference`] is the straightforward monolithic
//! definition of the same feature scheme (hash everything from scratch for
//! every bucket); the golden test in this module pins the optimized path to
//! it bucket for bucket over a synthesized corpus.

use genie_nlp::intern::Symbol;

/// Number of weight buckets (2^22).
pub const FEATURE_BUCKETS: usize = 1 << 22;

const BUCKET_MASK: u64 = (FEATURE_BUCKETS - 1) as u64;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold raw bytes into an FNV-1a state. `DefaultHasher` is deterministic per
/// process but not guaranteed across Rust versions, so the feature scheme
/// pins its own fixed hash. `const` so the tag states below fold at compile
/// time — a decode step only folds its *variable* halves.
#[inline]
const fn fold(mut state: u64, bytes: &[u8]) -> u64 {
    let mut i = 0;
    while i < bytes.len() {
        state ^= bytes[i] as u64;
        state = state.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    state
}

/// Fold one string field, with a terminator so adjacent fields cannot alias
/// (`("ab", "c")` vs `("a", "bc")`).
#[inline]
const fn fold_str(state: u64, text: &str) -> u64 {
    fold(fold(state, text.as_bytes()), &[0xff])
}

/// The candidate-half hash of a token — a pure function of its text,
/// computed once and cached next to every compiled candidate list.
#[inline]
pub const fn cand_hash(text: &str) -> u64 {
    fold_str(FNV_OFFSET, text)
}

/// The candidate-half hash of the empty candidate (context-only features).
const EMPTY_CAND: u64 = cand_hash("");

/// Mix a context-half hash with a candidate-half hash into a weight bucket.
/// SplitMix64-style finalizer: both halves are plain FNV states, so the
/// avalanche here is what spreads nearby contexts across the table.
#[inline]
pub const fn mix_bucket(ctx: u64, cand: u64) -> usize {
    let mut z = ctx ^ cand.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z & BUCKET_MASK) as usize
}

// Context-half builders. Each is an FNV fold over a tag and the context
// fields; the reference implementation and the incremental path share these
// definitions, so they cannot drift apart. The tag states are compile-time
// constants — only the context *fields* fold at run time.

const CTX_BIAS: u64 = fold_str(FNV_OFFSET, "bias");
const CTX_PREV1_TAG: u64 = fold_str(FNV_OFFSET, "prev1");
const CTX_PREV2_TAG: u64 = fold_str(FNV_OFFSET, "prev2");
const CTX_POS_TAG: u64 = fold_str(FNV_OFFSET, "pos");
const CTX_COPY_TAG: u64 = fold_str(FNV_OFFSET, "copy");
const CTX_COPY_WORD: u64 = fold_str(FNV_OFFSET, "copy-word");
const CTX_PREV_COPIED: u64 = fold_str(FNV_OFFSET, "prev-copied");
const COPY_NEXT_BUCKET: usize = mix_bucket(fold_str(FNV_OFFSET, "copy-next"), EMPTY_CAND);
const CTX_WORD_TAG: u64 = fold_str(FNV_OFFSET, "word");

#[inline]
fn ctx_prev1(prev1: &str) -> u64 {
    fold_str(CTX_PREV1_TAG, prev1)
}

#[inline]
fn ctx_prev2(prev2: &str, prev1: &str) -> u64 {
    fold_str(fold_str(CTX_PREV2_TAG, prev2), prev1)
}

#[inline]
fn ctx_pos(position: usize) -> u64 {
    fold(CTX_POS_TAG, &(position.min(24) as u64).to_le_bytes())
}

#[inline]
fn ctx_copy(prev1: &str) -> u64 {
    fold_str(CTX_COPY_TAG, prev1)
}

#[inline]
fn ctx_word(word: &str) -> u64 {
    fold_str(CTX_WORD_TAG, word)
}

/// The feature buckets of one decoding context paired with one candidate,
/// computed monolithically (every hash from scratch). This is the
/// *definition* of the feature scheme:
///
/// * previous one and two program tokens (a program-LM-style feature);
/// * a position bucket;
/// * whether the candidate copies a word that occurs in the input (the
///   pointer feature), and whether a copied span continues;
/// * each content word of the input sentence (lexical → function/parameter
///   associations, the analogue of attention).
///
/// The production path ([`StepContext::for_each_bucket`]) must produce
/// exactly these buckets in exactly this order; the golden test pins it.
pub fn candidate_buckets_reference(
    sentence: &[&str],
    prev1: &str,
    prev2: &str,
    position: usize,
    candidate: &str,
    buckets: &mut Vec<usize>,
) {
    buckets.clear();
    let cand = cand_hash(candidate);
    buckets.push(mix_bucket(CTX_BIAS, cand));
    buckets.push(mix_bucket(ctx_prev1(prev1), cand));
    buckets.push(mix_bucket(ctx_prev2(prev2, prev1), cand));
    buckets.push(mix_bucket(ctx_pos(position), cand));
    if sentence.contains(&candidate) {
        buckets.push(mix_bucket(ctx_copy(prev1), EMPTY_CAND));
        buckets.push(mix_bucket(CTX_COPY_WORD, cand));
    }
    // Pointer-style span continuation: if the previous program token was
    // itself copied from the input, learn (independently of word identity)
    // whether to keep copying the next input word or to close the span.
    if sentence.contains(&prev1) {
        buckets.push(mix_bucket(CTX_PREV_COPIED, cand));
        let continues_span = sentence
            .windows(2)
            .any(|pair| pair[0] == prev1 && pair[1] == candidate);
        if continues_span {
            buckets.push(COPY_NEXT_BUCKET);
        }
    }
    for word in content_words(sentence) {
        buckets.push(mix_bucket(ctx_word(word), cand));
    }
}

/// The content words of a sentence used as lexical features (stop words and
/// very short tokens are skipped, and the list is capped to bound cost).
pub fn content_words<'a>(sentence: &'a [&'a str]) -> impl Iterator<Item = &'a str> {
    const STOP: &[&str] = &[
        "a", "an", "the", "to", "of", "in", "on", "at", "is", "are", "my", "me", "i", "and",
        "then", "please", "can", "you", "it", "that", "with", "for", "when", "if", ",", ".", "!",
        "?", "\"",
    ];
    sentence
        .iter()
        .copied()
        .filter(|w| w.len() > 1 && !STOP.contains(w))
        .take(12)
}

/// Everything the decoder needs to know about one input sentence, computed
/// **once** per decode or training example and reused by every step:
///
/// * the word set (sorted symbol ids) behind the copy-feature membership
///   tests — no more `sentence.contains(..)` text scans per candidate;
/// * the adjacent-pair set behind the span-continuation feature — no more
///   `windows(2)` scans per candidate;
/// * the distinct words in first-occurrence order, each with its cached
///   candidate-half hash (these become the copy candidates);
/// * the pre-folded `("word", w)` context halves of the content words.
///
/// Symbols resolve against the shared arena ([`genie_nlp::intern::shared`]),
/// the same arena every [`crate::ParserExample`] sentence lives in.
pub struct SentenceIndex {
    distinct: Vec<(Symbol, u64)>,
    sorted: Vec<Symbol>,
    pairs: Vec<(Symbol, Symbol)>,
    word_ctx: Vec<u64>,
}

impl SentenceIndex {
    /// Index a sentence (one resolve per word, no per-step text access).
    pub fn build(sentence: &[Symbol]) -> Self {
        let interner = genie_nlp::intern::shared();
        let texts: Vec<&str> = sentence.iter().map(|&s| interner.resolve(s)).collect();

        let mut distinct: Vec<(Symbol, u64)> = Vec::with_capacity(sentence.len());
        for (&symbol, &text) in sentence.iter().zip(&texts) {
            if !distinct.iter().any(|&(seen, _)| seen == symbol) {
                distinct.push((symbol, cand_hash(text)));
            }
        }
        let mut sorted: Vec<Symbol> = distinct.iter().map(|&(s, _)| s).collect();
        sorted.sort_unstable();
        let mut pairs: Vec<(Symbol, Symbol)> = sentence.windows(2).map(|w| (w[0], w[1])).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let word_ctx = content_words(&texts).map(ctx_word).collect();
        SentenceIndex {
            distinct,
            sorted,
            pairs,
            word_ctx,
        }
    }

    /// The distinct sentence words in first-occurrence order, with their
    /// cached candidate-half hashes — the copy-candidate list.
    #[inline]
    pub fn distinct_words(&self) -> &[(Symbol, u64)] {
        &self.distinct
    }

    /// Whether the sentence contains this word (symbol equality ⇔ text
    /// equality within one arena).
    #[inline]
    pub fn contains(&self, symbol: Symbol) -> bool {
        self.sorted.binary_search(&symbol).is_ok()
    }

    /// Whether `(a, b)` occur adjacently (in that order) in the sentence.
    #[inline]
    pub fn has_pair(&self, a: Symbol, b: Symbol) -> bool {
        self.pairs.binary_search(&(a, b)).is_ok()
    }
}

/// The context halves of one decoding step, folded once and mixed against
/// every candidate. Construction resolves `prev1`/`prev2` text exactly once;
/// everything sentence-shaped comes pre-folded from the [`SentenceIndex`].
pub struct StepContext<'a> {
    index: &'a SentenceIndex,
    /// bias / prev1 / prev2 / position context halves.
    ctx_fixed: [u64; 4],
    /// Fully-mixed `("copy", prev1) × ""` bucket (candidate-independent).
    copy_bucket: usize,
    prev_copied: bool,
    prev1: Symbol,
    prev2: Symbol,
}

impl<'a> StepContext<'a> {
    /// Fold the step's context halves.
    pub fn new(index: &'a SentenceIndex, prev1: Symbol, prev2: Symbol, position: usize) -> Self {
        let interner = genie_nlp::intern::shared();
        let prev1_text = interner.resolve(prev1);
        let prev2_text = interner.resolve(prev2);
        StepContext {
            index,
            ctx_fixed: [
                CTX_BIAS,
                ctx_prev1(prev1_text),
                ctx_prev2(prev2_text, prev1_text),
                ctx_pos(position),
            ],
            copy_bucket: mix_bucket(ctx_copy(prev1_text), EMPTY_CAND),
            prev_copied: index.contains(prev1),
            prev1,
            prev2,
        }
    }

    /// The previous program token this step was folded for (scoring reads
    /// the conditioning pair back from here rather than threading it
    /// through every call).
    #[inline]
    pub fn prev1(&self) -> Symbol {
        self.prev1
    }

    /// The second-previous program token this step was folded for.
    #[inline]
    pub fn prev2(&self) -> Symbol {
        self.prev2
    }

    /// Visit every active bucket for one candidate — pure integer mixing of
    /// the pre-folded context halves with the candidate's cached hash, plus
    /// two O(log n) membership tests on the sentence index.
    #[inline]
    pub fn for_each_bucket(&self, candidate: Symbol, cand_hash: u64, mut f: impl FnMut(usize)) {
        for &ctx in &self.ctx_fixed {
            f(mix_bucket(ctx, cand_hash));
        }
        if self.index.contains(candidate) {
            f(self.copy_bucket);
            f(mix_bucket(CTX_COPY_WORD, cand_hash));
        }
        if self.prev_copied {
            f(mix_bucket(CTX_PREV_COPIED, cand_hash));
            if self.index.has_pair(self.prev1, candidate) {
                f(COPY_NEXT_BUCKET);
            }
        }
        for &word_ctx in &self.index.word_ctx {
            f(mix_bucket(word_ctx, cand_hash));
        }
    }

    /// Collect the active buckets into a reusable buffer (the shape the
    /// perceptron updates need).
    pub fn collect_buckets(&self, candidate: Symbol, cand_hash: u64, buckets: &mut Vec<usize>) {
        buckets.clear();
        self.for_each_bucket(candidate, cand_hash, |bucket| buckets.push(bucket));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_nlp::intern::TokenStream;

    fn words(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn hashing_is_deterministic_and_bounded() {
        let a = mix_bucket(ctx_prev1("now"), cand_hash("=>"));
        let b = mix_bucket(ctx_prev1("now"), cand_hash("=>"));
        assert_eq!(a, b);
        assert!(a < FEATURE_BUCKETS);
        let c = mix_bucket(ctx_prev1("now"), cand_hash("notify"));
        assert_ne!(a, c);
    }

    #[test]
    fn candidate_buckets_include_lexical_features() {
        let sentence = words("post funny cat on facebook");
        let mut buckets = Vec::new();
        candidate_buckets_reference(
            &sentence,
            "now",
            "<s>",
            1,
            "@com.facebook.post",
            &mut buckets,
        );
        assert!(buckets.len() >= 6);
        let mut with_other_word = Vec::new();
        candidate_buckets_reference(
            &words("lock the front door"),
            "now",
            "<s>",
            1,
            "@com.facebook.post",
            &mut with_other_word,
        );
        assert_ne!(buckets, with_other_word);
    }

    #[test]
    fn copy_features_fire_only_for_input_words() {
        let sentence = words("play shake it off");
        let mut copy_buckets = Vec::new();
        candidate_buckets_reference(&sentence, "\"", "=", 5, "shake", &mut copy_buckets);
        let mut nocopy_buckets = Vec::new();
        candidate_buckets_reference(&sentence, "\"", "=", 5, "hello", &mut nocopy_buckets);
        assert!(copy_buckets.len() > nocopy_buckets.len());
    }

    #[test]
    fn content_words_drop_stopwords() {
        let sentence = words("please post the funny cat on my facebook");
        let content: Vec<&str> = content_words(&sentence).collect();
        assert!(content.contains(&"funny"));
        assert!(content.contains(&"facebook"));
        assert!(!content.contains(&"the"));
        assert!(!content.contains(&"please"));
    }

    /// The golden equivalence: the incremental split-hash path
    /// ([`SentenceIndex`] + [`StepContext`]) must reproduce the monolithic
    /// reference buckets **in order** for every (sentence, prev2, prev1,
    /// position, candidate) combination of a fixed corpus that exercises
    /// copies, span continuations, stop words and unseen candidates.
    #[test]
    fn split_hashing_matches_the_monolithic_reference() {
        let interner = genie_nlp::intern::shared();
        let sentences = [
            "post funny cat picture on facebook",
            "tweet hello brave new world",
            "play shake it off on spotify",
            "the the the of of",
            "lock my front door please",
        ];
        let contexts = [
            ("<s>", "<s>"),
            ("<s>", "now"),
            ("now", "=>"),
            ("\"", "hello"),
            ("hello", "brave"),
        ];
        let candidates = [
            "now",
            "=>",
            "notify",
            "</s>",
            "hello",
            "brave",
            "cat",
            "facebook",
            "unseen-token",
            "\"",
            "the",
        ];
        for sentence_text in sentences {
            let stream: TokenStream = interner.stream_of(sentence_text);
            let resolved: Vec<&str> = stream.iter().map(|s| interner.resolve(s)).collect();
            let index = SentenceIndex::build(&stream);
            for &(prev2, prev1) in &contexts {
                for position in [0usize, 3, 30] {
                    let step = StepContext::new(
                        &index,
                        interner.intern(prev1),
                        interner.intern(prev2),
                        position,
                    );
                    for candidate in candidates {
                        let mut reference = Vec::new();
                        candidate_buckets_reference(
                            &resolved,
                            prev1,
                            prev2,
                            position,
                            candidate,
                            &mut reference,
                        );
                        let mut fast = Vec::new();
                        step.collect_buckets(
                            interner.intern(candidate),
                            cand_hash(candidate),
                            &mut fast,
                        );
                        assert_eq!(
                            fast, reference,
                            "bucket mismatch: sentence={sentence_text:?} prev2={prev2:?} \
                             prev1={prev1:?} position={position} candidate={candidate:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sentence_index_membership_matches_text_scans() {
        let interner = genie_nlp::intern::shared();
        let stream = interner.stream_of("play shake it off shake it");
        let index = SentenceIndex::build(&stream);
        assert!(index.contains(interner.intern("shake")));
        assert!(!index.contains(interner.intern("hello")));
        assert!(index.has_pair(interner.intern("shake"), interner.intern("it")));
        assert!(index.has_pair(interner.intern("it"), interner.intern("off")));
        assert!(!index.has_pair(interner.intern("off"), interner.intern("play")));
        // Distinct words keep first-occurrence order.
        let order: Vec<&str> = index
            .distinct_words()
            .iter()
            .map(|&(s, _)| interner.resolve(s))
            .collect();
        assert_eq!(order, vec!["play", "shake", "it", "off"]);
    }
}
