//! Hashed feature vectors for the structured decoder.
//!
//! The decoder scores candidate next-tokens with a linear model over sparse
//! features. Features are hashed into a fixed-size weight table (the hashing
//! trick), so memory stays bounded regardless of vocabulary size.

use std::hash::{Hash, Hasher};

/// Number of weight buckets (2^22).
pub const FEATURE_BUCKETS: usize = 1 << 22;

/// A deterministic 64-bit hash (FxHash-style) used for feature hashing.
/// `std::collections::hash_map::DefaultHasher` is deterministic per process
/// but not guaranteed across Rust versions, so we implement a fixed one.
#[derive(Clone, Copy)]
pub struct FxHasher(u64);

impl Default for FxHasher {
    fn default() -> Self {
        FxHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x1000_0000_01b3;
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }
}

/// Hash a feature (any `Hash` tuple) combined with a candidate token into a
/// weight bucket.
pub fn bucket<F: Hash>(feature: &F, candidate: &str) -> usize {
    let mut hasher = FxHasher::default();
    feature.hash(&mut hasher);
    candidate.hash(&mut hasher);
    (hasher.finish() as usize) % FEATURE_BUCKETS
}

/// The feature buckets active for a decoding context paired with a candidate.
///
/// Context features:
/// * previous one and two program tokens (a program-LM-style feature);
/// * each content word of the input sentence (lexical → function/parameter
///   associations, the analogue of attention);
/// * whether the candidate copies a word that occurs in the input (the
///   pointer feature);
/// * a position bucket.
pub fn candidate_buckets(
    sentence: &[&str],
    prev1: &str,
    prev2: &str,
    position: usize,
    candidate: &str,
    buckets: &mut Vec<usize>,
) {
    buckets.clear();
    buckets.push(bucket(&("bias",), candidate));
    buckets.push(bucket(&("prev1", prev1), candidate));
    buckets.push(bucket(&("prev2", prev2, prev1), candidate));
    buckets.push(bucket(&("pos", position.min(24)), candidate));
    let copies = sentence.contains(&candidate);
    if copies {
        buckets.push(bucket(&("copy", prev1), ""));
        buckets.push(bucket(&("copy-word",), candidate));
    }
    // Pointer-style span continuation: if the previous program token was
    // itself copied from the input, learn (independently of word identity)
    // whether to keep copying the next input word or to close the span.
    let prev_copied = sentence.contains(&prev1);
    if prev_copied {
        buckets.push(bucket(&("prev-copied",), candidate));
        let continues_span = sentence
            .windows(2)
            .any(|pair| pair[0] == prev1 && pair[1] == candidate);
        if continues_span {
            buckets.push(bucket(&("copy-next",), ""));
        }
    }
    for word in content_words(sentence) {
        buckets.push(bucket(&("word", word), candidate));
    }
}

/// The content words of a sentence used as lexical features (stop words and
/// very short tokens are skipped, and the list is capped to bound cost).
///
/// Sentence words arrive as resolved interned fragments
/// ([`crate::data::resolve_sentence`]): borrowing from the arena, so this
/// path allocates nothing per sentence.
pub fn content_words<'a>(sentence: &'a [&'a str]) -> impl Iterator<Item = &'a str> {
    const STOP: &[&str] = &[
        "a", "an", "the", "to", "of", "in", "on", "at", "is", "are", "my", "me", "i", "and",
        "then", "please", "can", "you", "it", "that", "with", "for", "when", "if", ",", ".", "!",
        "?", "\"",
    ];
    sentence
        .iter()
        .copied()
        .filter(|w| w.len() > 1 && !STOP.contains(w))
        .take(12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn hashing_is_deterministic_and_bounded() {
        let a = bucket(&("prev1", "now"), "=>");
        let b = bucket(&("prev1", "now"), "=>");
        assert_eq!(a, b);
        assert!(a < FEATURE_BUCKETS);
        let c = bucket(&("prev1", "now"), "notify");
        assert_ne!(a, c);
    }

    #[test]
    fn candidate_buckets_include_lexical_features() {
        let sentence = words("post funny cat on facebook");
        let mut buckets = Vec::new();
        candidate_buckets(
            &sentence,
            "now",
            "<s>",
            1,
            "@com.facebook.post",
            &mut buckets,
        );
        assert!(buckets.len() >= 6);
        let mut with_other_word = Vec::new();
        candidate_buckets(
            &words("lock the front door"),
            "now",
            "<s>",
            1,
            "@com.facebook.post",
            &mut with_other_word,
        );
        assert_ne!(buckets, with_other_word);
    }

    #[test]
    fn copy_features_fire_only_for_input_words() {
        let sentence = words("play shake it off");
        let mut copy_buckets = Vec::new();
        candidate_buckets(&sentence, "\"", "=", 5, "shake", &mut copy_buckets);
        let mut nocopy_buckets = Vec::new();
        candidate_buckets(&sentence, "\"", "=", 5, "hello", &mut nocopy_buckets);
        assert!(copy_buckets.len() > nocopy_buckets.len());
    }

    #[test]
    fn content_words_drop_stopwords() {
        let sentence = words("please post the funny cat on my facebook");
        let content: Vec<&str> = content_words(&sentence).collect();
        assert!(content.contains(&"funny"));
        assert!(content.contains(&"facebook"));
        assert!(!content.contains(&"the"));
        assert!(!content.contains(&"please"));
    }
}
