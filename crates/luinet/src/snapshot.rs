//! Flat, offset-based model snapshots: serialize a trained
//! [`LuinetParser`] once, load it in any process without re-training or
//! eagerly rebuilding the symbol-keyed tables.
//!
//! # Layout
//!
//! One little-endian buffer: the `GENSNAP1` magic and format version, the
//! fixed-width [`ModelConfig`] and counters, a [`StringTable`] section
//! holding every token text the model references exactly once, then the
//! tables — vocabulary (table ids in vocab-id order), sparse perceptron
//! weights (`(bucket, weight bits, total bits)` for exactly the buckets
//! the [`LuinetParser::weights_digest`] folds, in bucket order), the
//! transition [`ProgramLm`], the optional pretrained LM, and the compiled
//! per-`prev1` candidate tables **with their cached candidate-half feature
//! hashes** — so loading re-hashes nothing.
//!
//! # Loading is re-interning plus bulk reads
//!
//! [`Symbol`] values are process-history-dependent, so a snapshot never
//! stores raw arena ids: every symbol is a local id into the snapshot's own
//! string table. Load interns the table into the live arena in one bulk
//! pass (one hash per *distinct* token), then reconstructs every table by
//! mapping 4-byte local ids through that `Vec<Symbol>` — no per-entry text
//! parsing. The id-sorted membership index of each candidate table is the
//! one structure that genuinely depends on live arena ids; it is re-sorted
//! at load (`O(n log n)` over compiled successors, the same work the
//! crate-private `CompiledTransitions` does on a fresh compile).
//!
//! # Guarantees
//!
//! Save → load preserves [`LuinetParser::weights_digest`] bit for bit
//! (weights are stored as their IEEE bit patterns, sparsely, over exactly
//! the digest's bucket set) and every prediction
//! ([`LuinetParser::predict_topk`] included). Serialization orders all
//! hash-map content by resolved text, so save → load → save is
//! byte-identical even across processes with different arena histories.

use std::collections::HashMap;
use std::path::Path;

use genie_nlp::colfmt::{
    self, put_f32, put_f64, put_u32, put_u64, put_u8, ColfmtError, ColfmtResult, LoadedTable,
    Reader, StringTable,
};
use genie_nlp::intern::{FnvState, Symbol};

use crate::features::{cand_hash, FEATURE_BUCKETS};
use crate::lm::ProgramLm;
use crate::model::{CompiledTransitions, LuinetParser, ModelConfig, SuccessorEntry};
use crate::vocab::{bos_symbol, eos_symbol, Vocab};

/// Magic bytes opening a model snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GENSNAP1";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Write-side symbol mapper: live arena [`Symbol`] → local string-table id,
/// assigning table ids in serialization order (which the text-sorted
/// section walks make process-history-independent).
struct SymbolWriter {
    interner: &'static genie_nlp::Interner,
    table: StringTable,
    ids: HashMap<Symbol, u32, FnvState>,
}

impl SymbolWriter {
    fn new() -> Self {
        SymbolWriter {
            interner: genie_nlp::intern::shared(),
            table: StringTable::new(),
            ids: HashMap::default(),
        }
    }

    fn id_of(&mut self, symbol: Symbol) -> u32 {
        if let Some(&id) = self.ids.get(&symbol) {
            return id;
        }
        let id = self.table.id_of(self.interner.resolve(symbol));
        self.ids.insert(symbol, id);
        id
    }

    fn resolve(&self, symbol: Symbol) -> &'static str {
        self.interner.resolve(symbol)
    }
}

/// Serialize a trained parser to its snapshot bytes.
pub fn to_bytes(parser: &LuinetParser) -> Vec<u8> {
    let mut syms = SymbolWriter::new();
    // The body is built first so the string table is complete before it is
    // written (the table section precedes the body in the file).
    let mut body = Vec::new();

    // Vocabulary, in id order (feeding these symbols back through
    // `Vocab::from_symbols` reproduces the exact token → id mapping).
    put_u32(&mut body, parser.vocab.symbols().len() as u32);
    for &symbol in parser.vocab.symbols() {
        let id = syms.id_of(symbol);
        put_u32(&mut body, id);
    }

    // Sparse averaged-perceptron state: exactly the buckets the digest
    // folds, in ascending bucket order, as raw IEEE bit patterns.
    let nonzero = parser
        .weights
        .iter()
        .zip(&parser.totals)
        .filter(|&(&w, &t)| w != 0.0 || t != 0.0)
        .count();
    put_u32(&mut body, nonzero as u32);
    for (bucket, (&weight, &total)) in parser.weights.iter().zip(&parser.totals).enumerate() {
        if weight != 0.0 || total != 0.0 {
            put_u32(&mut body, bucket as u32);
            put_f32(&mut body, weight);
            put_f64(&mut body, total);
        }
    }

    // The transition model and the optional pretrained LM.
    write_lm(&mut body, &parser.transitions, &mut syms);
    match &parser.pretrained_lm {
        Some(lm) => {
            put_u8(&mut body, 1);
            write_lm(&mut body, lm, &mut syms);
        }
        None => put_u8(&mut body, 0),
    }

    // Compiled candidate tables: per prev1 (text order), the candidate list
    // in its scoring order with the cached candidate-half hashes. The
    // id-sorted membership index is re-derived at load — raw-id order does
    // not survive a process boundary.
    let mut entries: Vec<(&str, Symbol, &SuccessorEntry)> = parser
        .compiled
        .map
        .iter()
        .map(|(&prev, entry)| (syms.resolve(prev), prev, entry))
        .collect();
    entries.sort_unstable_by_key(|&(text, ..)| text);
    put_u32(&mut body, entries.len() as u32);
    for (_, prev, entry) in entries {
        let prev_id = syms.id_of(prev);
        put_u32(&mut body, prev_id);
        put_u32(&mut body, entry.candidates.len() as u32);
        for &(token, hash) in entry.candidates.iter() {
            let token_id = syms.id_of(token);
            put_u32(&mut body, token_id);
            put_u64(&mut body, hash);
        }
    }

    // Header + config + counters + string table + body.
    let mut out = Vec::with_capacity(64 + body.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, parser.config.epochs as u64);
    put_u64(&mut out, parser.config.max_length as u64);
    put_f32(&mut out, parser.config.lm_weight);
    put_u64(&mut out, parser.config.seed);
    put_u64(&mut out, parser.config.threads as u64);
    put_u64(&mut out, parser.config.train_shards as u64);
    put_u64(&mut out, parser.trained_examples as u64);
    put_u64(&mut out, parser.updates);
    syms.table.append_to(&mut out);
    out.extend_from_slice(&body);
    out
}

/// Save a trained parser to a snapshot file.
pub fn save(parser: &LuinetParser, path: &Path) -> ColfmtResult<()> {
    // Sealed + atomic (write-temp → fsync → rename, trailing checksum): a
    // crash mid-save leaves the previous snapshot intact, and a torn write
    // is detected on load instead of misparsing. `snapshot.write` is the
    // chaos-harness failpoint.
    colfmt::write_artifact(path, &to_bytes(parser), "snapshot.write")
}

/// Reconstruct a parser from snapshot bytes.
pub fn from_bytes(buf: &[u8]) -> ColfmtResult<LuinetParser> {
    let mut reader = Reader::new(buf);
    reader.expect_magic(&SNAPSHOT_MAGIC, "model snapshot")?;
    reader.expect_version(SNAPSHOT_VERSION, "model snapshot")?;
    let config = ModelConfig {
        epochs: reader.u64()? as usize,
        max_length: reader.u64()? as usize,
        lm_weight: reader.f32()?,
        seed: reader.u64()?,
        threads: reader.u64()? as usize,
        train_shards: reader.u64()? as usize,
    };
    let trained_examples = reader.u64()? as usize;
    let updates = reader.u64()?;

    // One bulk re-intern: local table id → live arena symbol. Everything
    // after this maps 4-byte ids; no further text is hashed.
    let table = LoadedTable::read_section(&mut reader)?;
    let interner = genie_nlp::intern::shared();
    let symbols: Vec<Symbol> = table.iter().map(|text| interner.intern(text)).collect();

    // Vocabulary.
    let count = reader.u32()? as usize;
    let mut vocab_symbols = Vec::with_capacity(reader.capacity_hint(count, 4));
    for _ in 0..count {
        vocab_symbols.push(symbol_of(&symbols, reader.u32()?)?);
    }
    let vocab = Vocab::from_symbols(vocab_symbols);

    // Dense weight/total arrays from the sparse entries.
    let mut weights = vec![0.0f32; FEATURE_BUCKETS];
    let mut totals = vec![0.0f64; FEATURE_BUCKETS];
    let count = reader.u32()? as usize;
    for _ in 0..count {
        let bucket = reader.u32()? as usize;
        if bucket >= FEATURE_BUCKETS {
            return Err(ColfmtError::Corrupt(format!(
                "model snapshot: weight bucket {bucket} out of range ({FEATURE_BUCKETS} buckets)"
            )));
        }
        weights[bucket] = reader.f32()?;
        totals[bucket] = reader.f64()?;
    }

    let transitions = read_lm(&mut reader, &symbols)?;
    let pretrained_lm = match reader.u8()? {
        0 => None,
        1 => Some(read_lm(&mut reader, &symbols)?),
        other => {
            return Err(ColfmtError::Corrupt(format!(
                "model snapshot: pretrained-LM tag must be 0 or 1, found {other}"
            )))
        }
    };

    // Compiled candidate tables: candidates (with cached hashes) are read
    // verbatim in their stored scoring order; the membership index is the
    // one live-id-dependent structure and is re-sorted here.
    let count = reader.u32()? as usize;
    let mut map: HashMap<Symbol, SuccessorEntry, FnvState> =
        HashMap::with_capacity_and_hasher(reader.capacity_hint(count, 8), FnvState::default());
    for _ in 0..count {
        let prev = symbol_of(&symbols, reader.u32()?)?;
        let candidate_count = reader.u32()? as usize;
        let mut candidates = Vec::with_capacity(reader.capacity_hint(candidate_count, 12));
        for _ in 0..candidate_count {
            let token = symbol_of(&symbols, reader.u32()?)?;
            let hash = reader.u64()?;
            candidates.push((token, hash));
        }
        let mut members: Vec<Symbol> = candidates.iter().map(|&(token, _)| token).collect();
        members.sort_unstable();
        map.insert(
            prev,
            SuccessorEntry {
                candidates: candidates.into_boxed_slice(),
                members: members.into_boxed_slice(),
            },
        );
    }
    if !reader.is_done() {
        return Err(ColfmtError::Corrupt(format!(
            "model snapshot: {} trailing bytes after the candidate tables",
            reader.remaining()
        )));
    }

    Ok(LuinetParser {
        config,
        vocab,
        weights,
        totals,
        updates,
        transitions,
        compiled: CompiledTransitions { map },
        pretrained_lm,
        trained_examples,
        bos: bos_symbol(),
        eos: eos_symbol(),
        eos_hash: cand_hash(crate::vocab::EOS),
    })
}

/// Load a parser from a snapshot file.
pub fn load(path: &Path) -> ColfmtResult<LuinetParser> {
    let bytes = colfmt::read_artifact(path, "snapshot.read")?;
    from_bytes(&bytes)
}

fn symbol_of(symbols: &[Symbol], id: u32) -> ColfmtResult<Symbol> {
    symbols.get(id as usize).copied().ok_or_else(|| {
        ColfmtError::Corrupt(format!(
            "model snapshot: symbol id {id} out of range (table holds {} strings)",
            symbols.len()
        ))
    })
}

/// Serialize one [`ProgramLm`]: counters, then each count table with its
/// entries sorted by resolved text (so the bytes are independent of hash-map
/// iteration order and of the live arena's id assignment), then the
/// successor lists — prev-keys text-sorted, each *list* verbatim, because
/// first-observation order is API-visible through
/// [`ProgramLm::successor_symbols`].
fn write_lm(body: &mut Vec<u8>, lm: &ProgramLm, syms: &mut SymbolWriter) {
    put_f64(body, lm.total_tokens);
    put_u64(body, lm.trained_programs as u64);

    let mut unigrams: Vec<(&str, Symbol, f64)> = lm
        .unigram
        .iter()
        .map(|(&token, &count)| (syms.resolve(token), token, count))
        .collect();
    unigrams.sort_unstable_by_key(|&(text, ..)| text);
    put_u32(body, unigrams.len() as u32);
    for (_, token, count) in unigrams {
        let id = syms.id_of(token);
        put_u32(body, id);
        put_f64(body, count);
    }

    // Each row is (sort key of resolved texts, the symbols, the count).
    type BigramRow<'a> = ((&'a str, &'a str), (Symbol, Symbol), f64);
    let mut bigrams: Vec<BigramRow> = lm
        .bigram
        .iter()
        .map(|(&(a, b), &count)| ((syms.resolve(a), syms.resolve(b)), (a, b), count))
        .collect();
    bigrams.sort_unstable_by_key(|&(key, ..)| key);
    put_u32(body, bigrams.len() as u32);
    for (_, (a, b), count) in bigrams {
        let a = syms.id_of(a);
        put_u32(body, a);
        let b = syms.id_of(b);
        put_u32(body, b);
        put_f64(body, count);
    }

    type TrigramRow<'a> = ((&'a str, &'a str, &'a str), (Symbol, Symbol, Symbol), f64);
    let mut trigrams: Vec<TrigramRow> = lm
        .trigram
        .iter()
        .map(|(&(a, b, c), &count)| {
            (
                (syms.resolve(a), syms.resolve(b), syms.resolve(c)),
                (a, b, c),
                count,
            )
        })
        .collect();
    trigrams.sort_unstable_by_key(|&(key, ..)| key);
    put_u32(body, trigrams.len() as u32);
    for (_, (a, b, c), count) in trigrams {
        let a = syms.id_of(a);
        put_u32(body, a);
        let b = syms.id_of(b);
        put_u32(body, b);
        let c = syms.id_of(c);
        put_u32(body, c);
        put_f64(body, count);
    }

    let mut successors: Vec<(&str, Symbol, &Vec<Symbol>)> = lm
        .successors
        .iter()
        .map(|(&prev, list)| (syms.resolve(prev), prev, list))
        .collect();
    successors.sort_unstable_by_key(|&(text, ..)| text);
    put_u32(body, successors.len() as u32);
    for (_, prev, list) in successors {
        let prev_id = syms.id_of(prev);
        put_u32(body, prev_id);
        put_u32(body, list.len() as u32);
        for &token in list {
            let id = syms.id_of(token);
            put_u32(body, id);
        }
    }
}

/// Rebuild one [`ProgramLm`]. The `successor_seen` membership index is
/// derived from the successor lists rather than stored — it is exactly the
/// pair set the lists already encode.
fn read_lm(reader: &mut Reader<'_>, symbols: &[Symbol]) -> ColfmtResult<ProgramLm> {
    let mut lm = ProgramLm::new();
    lm.total_tokens = reader.f64()?;
    lm.trained_programs = reader.u64()? as usize;

    let count = reader.u32()? as usize;
    lm.unigram.reserve(reader.capacity_hint(count, 12));
    for _ in 0..count {
        let token = symbol_of(symbols, reader.u32()?)?;
        lm.unigram.insert(token, reader.f64()?);
    }

    let count = reader.u32()? as usize;
    lm.bigram.reserve(reader.capacity_hint(count, 16));
    for _ in 0..count {
        let a = symbol_of(symbols, reader.u32()?)?;
        let b = symbol_of(symbols, reader.u32()?)?;
        lm.bigram.insert((a, b), reader.f64()?);
    }

    let count = reader.u32()? as usize;
    lm.trigram.reserve(reader.capacity_hint(count, 20));
    for _ in 0..count {
        let a = symbol_of(symbols, reader.u32()?)?;
        let b = symbol_of(symbols, reader.u32()?)?;
        let c = symbol_of(symbols, reader.u32()?)?;
        lm.trigram.insert((a, b, c), reader.f64()?);
    }

    let count = reader.u32()? as usize;
    lm.successors.reserve(reader.capacity_hint(count, 8));
    for _ in 0..count {
        let prev = symbol_of(symbols, reader.u32()?)?;
        let list_len = reader.u32()? as usize;
        let mut list = Vec::with_capacity(reader.capacity_hint(list_len, 4));
        for _ in 0..list_len {
            let token = symbol_of(symbols, reader.u32()?)?;
            lm.successor_seen.insert((prev, token));
            list.push(token);
        }
        lm.successors.insert(prev, list);
    }
    Ok(lm)
}

impl LuinetParser {
    /// Serialize this trained parser to a snapshot file (see
    /// [`mod@crate::snapshot`]).
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> ColfmtResult<()> {
        save(self, path.as_ref())
    }

    /// Reconstruct a parser from a snapshot file (see
    /// [`mod@crate::snapshot`]).
    pub fn load_snapshot(path: impl AsRef<Path>) -> ColfmtResult<LuinetParser> {
        load(path.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ParserExample;

    fn training_set() -> Vec<ParserExample> {
        let mut out = Vec::new();
        for (word, function) in [
            ("twitter", "@com.twitter.timeline"),
            ("gmail", "@com.gmail.inbox"),
            ("dropbox", "@com.dropbox.list_folder"),
        ] {
            out.push(ParserExample::from_strs(
                &format!("show me my {word} stuff"),
                &format!("now => {function} ( ) => notify"),
            ));
            out.push(ParserExample::from_strs(
                &format!("monitor my {word} stuff"),
                &format!("monitor ( {function} ( ) ) => notify"),
            ));
        }
        out
    }

    fn trained_parser() -> LuinetParser {
        let mut lm = ProgramLm::new();
        let programs: Vec<Vec<String>> = training_set().into_iter().map(|e| e.program).collect();
        lm.train(&programs);
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 8,
            seed: 3,
            ..ModelConfig::default()
        })
        .with_pretrained_lm(lm);
        parser.train(&training_set());
        parser
    }

    #[test]
    fn roundtrip_preserves_digest_predictions_and_bytes() {
        let parser = trained_parser();
        let bytes = to_bytes(&parser);
        let loaded = from_bytes(&bytes).unwrap();
        assert_eq!(loaded.weights_digest(), parser.weights_digest());
        assert_eq!(loaded.trained_examples(), parser.trained_examples());
        assert_eq!(loaded.vocab().len(), parser.vocab().len());
        let examples = training_set();
        for example in &examples {
            assert_eq!(
                loaded.predict_topk(&example.sentence, 3),
                parser.predict_topk(&example.sentence, 3)
            );
        }
        assert_eq!(
            loaded.exact_match_accuracy(&examples),
            parser.exact_match_accuracy(&examples)
        );
        // Deterministic serialization: save → load → save is byte-identical.
        assert_eq!(to_bytes(&loaded), bytes);
    }

    #[test]
    fn untrained_parser_roundtrips() {
        let parser = LuinetParser::new(ModelConfig::default());
        let loaded = from_bytes(&to_bytes(&parser)).unwrap();
        assert_eq!(loaded.weights_digest(), parser.weights_digest());
        assert_eq!(loaded.trained_examples(), 0);
        assert!(loaded.vocab().is_empty());
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("luinet-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        let parser = trained_parser();
        parser.save_snapshot(&path).unwrap();
        let loaded = LuinetParser::load_snapshot(&path).unwrap();
        assert_eq!(loaded.weights_digest(), parser.weights_digest());
        assert!(matches!(
            load(&dir.join("missing.snap")),
            Err(ColfmtError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshots_are_typed_errors() {
        let parser = trained_parser();
        let bytes = to_bytes(&parser);
        // Every truncation fails with Corrupt, never panics (step 97 keeps
        // the loop fast over the multi-hundred-KB buffer).
        for len in (0..bytes.len()).step_by(97) {
            match from_bytes(&bytes[..len]) {
                Err(ColfmtError::Corrupt(_)) => {}
                other => panic!(
                    "prefix of {len} bytes: expected Corrupt, got Ok? {:?}",
                    other.is_ok()
                ),
            }
        }
        // Bad magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(from_bytes(&wrong), Err(ColfmtError::Corrupt(_))));
        // Trailing garbage.
        let mut padded = bytes;
        padded.push(0);
        assert!(matches!(from_bytes(&padded), Err(ColfmtError::Corrupt(_))));
    }
}
