//! LUInet-lite: the trainable semantic parser.
//!
//! The parser decodes the program left to right. At each step it scores a
//! set of candidate next-tokens with a linear model over hashed features of
//! (input sentence, previous program tokens, position) — the same
//! conditioning signals MQAN's decoder attends over — and can *copy* words
//! from the input sentence (the pointer mechanism that makes unquoted
//! free-form parameters possible). Training uses the averaged structured
//! perceptron with teacher forcing; an optional pretrained program language
//! model ([`crate::ProgramLm`]) contributes an additional score, mirroring
//! the decoder LM of §4.2.
//!
//! # The hot path speaks symbols
//!
//! Program tokens are interned [`Symbol`]s end to end: the transition model
//! compiles into per-`prev1` candidate tables with cached candidate-half
//! feature hashes, every sentence is indexed once per example
//! ([`SentenceIndex`]), and each decode step folds its context halves once
//! ([`StepContext`]) before scoring candidates by pure integer mixing. Beam
//! hypotheses extend a shared backpointer arena instead of cloning token
//! vectors. Text is resolved only at the public API boundary.
//!
//! # Deterministic parallel training
//!
//! [`LuinetParser::train`] splits each epoch's shuffled example stream into
//! a **fixed** number of shards (`ModelConfig::train_shards`, independent of
//! the worker count; per-epoch order comes from
//! [`genie_parallel::stream_seed`]). Training proceeds in short mixing
//! rounds: each round hands every shard a few examples, shards accumulate
//! weight *deltas* against the round-start snapshot in parallel over
//! [`genie_parallel::par_map`], and the deltas merge back **in shard
//! order** (summed delayed updates — the `w ← w + Σ Δ_s / S` average of
//! classic iterative parameter mixing damps each correction by `1/S` and
//! measurably lost accuracy at equal epochs; summing with a short round
//! keeps staleness bounded to `shards × TRAIN_ROUND_EXAMPLES` examples
//! and matches the sequential perceptron on the smoke workloads). The
//! trained weights are a function of (data, config) only — byte-identical
//! for any worker thread count.

use std::collections::HashMap;

use genie_nlp::intern::{FnvState, Symbol};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::ParserExample;
use crate::features::{cand_hash, SentenceIndex, StepContext, FEATURE_BUCKETS};
use crate::lm::ProgramLm;
use crate::vocab::{bos_symbol, eos_symbol, Vocab};

/// Logical stream id of the per-epoch training shuffle in
/// [`genie_parallel::stream_seed`] (distinguishes it from synthesis
/// streams seeded from the same user seed).
const TRAIN_SHUFFLE_STREAM: u64 = 0x7261_696e; // "rain"

/// Logical stream id of the delta-training shuffle
/// ([`LuinetParser::fine_tune`]); XORed with the update counter at call
/// time so successive fine-tune passes draw independent shuffles while
/// staying a pure function of the call sequence.
const FINE_TUNE_SHUFFLE_STREAM: u64 = 0x7475_6e65; // "tune"

/// Below this many examples per shard, the trainer collapses to fewer
/// shards: tiny datasets gain nothing from parameter mixing and lose
/// update granularity.
const MIN_SHARD_EXAMPLES: usize = 64;

/// Examples each shard processes between two parameter-mixing merges. A
/// smaller round keeps shard snapshots fresher (better accuracy), a larger
/// one amortizes the merge; 2 per shard is empirically indistinguishable
/// from sequential training on the smoke workloads while cutting the sync
/// points in half versus per-example merging.
const TRAIN_ROUND_EXAMPLES: usize = 2;

/// Hyper-parameters of the parser.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Maximum decoded program length.
    pub max_length: usize,
    /// Weight of the pretrained program LM score (0 disables its influence
    /// even when a LM is attached).
    pub lm_weight: f32,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// Worker threads for sharded training and batch decoding (`0` = all
    /// cores, `1` = inline). Never changes the trained weights or any
    /// prediction — only wall-clock.
    pub threads: usize,
    /// Number of training shards for iterative parameter mixing (`0` = the
    /// default of 4). Part of the model identity: like a dataset batch
    /// size, changing it changes the trained weights — the thread count
    /// never does. Tiny datasets automatically collapse to fewer shards
    /// (at least `MIN_SHARD_EXAMPLES` — 64 — examples per shard).
    pub train_shards: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            epochs: 3,
            max_length: 48,
            lm_weight: 2.0,
            seed: 0,
            threads: 0,
            train_shards: 4,
        }
    }
}

impl ModelConfig {
    /// The shard count used for `examples` training examples.
    fn effective_shards(&self, examples: usize) -> usize {
        let configured = if self.train_shards == 0 {
            4
        } else {
            self.train_shards
        };
        configured.min((examples / MIN_SHARD_EXAMPLES).max(1))
    }
}

/// One scored candidate program from [`LuinetParser::predict_topk`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPrediction {
    /// The decoded program tokens (without the end-of-sequence marker).
    pub tokens: Vec<String>,
    /// Length-normalized decoder score (mean per-step score); higher is
    /// more probable. Comparable only between candidates for the same
    /// sentence.
    pub score: f64,
}

/// The compiled candidate tables: for each `prev1`, the tokens observed to
/// follow it in training, sorted by resolved text (a process-history-
/// independent order), each with its cached candidate-half feature hash,
/// plus an id-sorted membership index.
#[derive(Default)]
pub(crate) struct CompiledTransitions {
    pub(crate) map: HashMap<Symbol, SuccessorEntry, FnvState>,
}

#[derive(Default)]
pub(crate) struct SuccessorEntry {
    /// `(token, candidate-half hash)` in text order — the iteration order
    /// candidates are scored in (ties in the argmax go to the first seen).
    pub(crate) candidates: Box<[(Symbol, u64)]>,
    /// The same tokens sorted by raw id, for O(log n) membership.
    pub(crate) members: Box<[Symbol]>,
}

impl SuccessorEntry {
    #[inline]
    fn contains(&self, token: Symbol) -> bool {
        self.members.binary_search(&token).is_ok()
    }
}

impl CompiledTransitions {
    fn compile(lm: &ProgramLm) -> Self {
        let interner: &'static genie_nlp::Interner = genie_nlp::intern::shared();
        let mut map: HashMap<Symbol, SuccessorEntry, FnvState> = HashMap::default();
        for (prev, successors) in lm.successor_entries() {
            let mut candidates: Vec<(Symbol, u64)> = successors
                .iter()
                .map(|&s| (s, cand_hash(interner.resolve(s))))
                .collect();
            candidates.sort_unstable_by_key(|&(s, _)| interner.resolve(s));
            let mut members: Vec<Symbol> = successors.to_vec();
            members.sort_unstable();
            map.insert(
                prev,
                SuccessorEntry {
                    candidates: candidates.into_boxed_slice(),
                    members: members.into_boxed_slice(),
                },
            );
        }
        CompiledTransitions { map }
    }

    #[inline]
    fn get(&self, prev: Symbol) -> Option<&SuccessorEntry> {
        self.map.get(&prev)
    }
}

/// A training example prepared once per [`LuinetParser::train`] call and
/// reused by every epoch: the sentence index and the gold program with
/// end-of-sequence appended and candidate-half hashes cached.
struct PreparedExample {
    index: SentenceIndex,
    gold: Vec<(Symbol, u64)>,
}

/// Shard-local training result: sparse weight/total deltas against the
/// round-start snapshot, plus the number of decode steps taken.
#[derive(Default)]
struct ShardDelta {
    /// bucket → (weight delta, averaged-total delta).
    deltas: HashMap<u32, (f64, f64), FnvState>,
    steps: u64,
}

/// An in-flight beam hypothesis: a tail pointer into the shared
/// [`BeamArena`] instead of an owned token vector, so extending a
/// hypothesis is O(1) and prefixes are stored once.
#[derive(Clone, Copy)]
struct Hypothesis {
    /// Arena handle of the last token (0 = empty sequence).
    tail: u32,
    len: u32,
    prev1: Symbol,
    prev2: Symbol,
    score: f64,
    steps: u32,
    finished: bool,
}

impl Hypothesis {
    /// Mean per-step score — comparable between hypotheses of different
    /// lengths, unlike the raw cumulative score.
    fn normalized(&self) -> f64 {
        self.score / (self.steps.max(1)) as f64
    }
}

/// Shared-prefix storage for beam hypotheses: each node is `(parent handle,
/// token)`; handle 0 is the empty sequence. Prefix comparison short-circuits
/// on shared nodes, so the deterministic tie-break costs O(divergence), not
/// O(length).
#[derive(Default)]
struct BeamArena {
    nodes: Vec<(u32, Symbol)>,
}

impl BeamArena {
    #[inline]
    fn push(&mut self, parent: u32, token: Symbol) -> u32 {
        self.nodes.push((parent, token));
        self.nodes.len() as u32
    }

    /// The sequence ending at `tail`, front to back.
    fn materialize(&self, mut tail: u32, len: usize) -> Vec<Symbol> {
        let mut out = vec![Symbol::from_raw(0); len];
        for slot in out.iter_mut().rev() {
            let (parent, token) = self.nodes[(tail - 1) as usize];
            *slot = token;
            tail = parent;
        }
        out
    }

    fn ancestor(&self, mut tail: u32, mut back: u32) -> u32 {
        while back > 0 {
            tail = self.nodes[(tail - 1) as usize].0;
            back -= 1;
        }
        tail
    }

    /// Compare two equal-length chains element-wise (front to back) by
    /// resolved text.
    fn cmp_equal_len(
        &self,
        interner: &genie_nlp::Interner,
        a: u32,
        b: u32,
        n: u32,
    ) -> std::cmp::Ordering {
        if n == 0 || a == b {
            return std::cmp::Ordering::Equal;
        }
        let (a_parent, a_token) = self.nodes[(a - 1) as usize];
        let (b_parent, b_token) = self.nodes[(b - 1) as usize];
        self.cmp_equal_len(interner, a_parent, b_parent, n - 1)
            .then_with(|| {
                if a_token == b_token {
                    std::cmp::Ordering::Equal
                } else {
                    interner.resolve(a_token).cmp(interner.resolve(b_token))
                }
            })
    }

    /// Lexicographic comparison of two token sequences by resolved text
    /// (the deterministic beam tie-break).
    fn cmp_seq(
        &self,
        interner: &genie_nlp::Interner,
        a: &Hypothesis,
        b: &Hypothesis,
    ) -> std::cmp::Ordering {
        let common = a.len.min(b.len);
        let a_anchor = self.ancestor(a.tail, a.len - common);
        let b_anchor = self.ancestor(b.tail, b.len - common);
        self.cmp_equal_len(interner, a_anchor, b_anchor, common)
            .then_with(|| a.len.cmp(&b.len))
    }

    fn seq_eq(&self, interner: &genie_nlp::Interner, a: &Hypothesis, b: &Hypothesis) -> bool {
        a.len == b.len && self.cmp_seq(interner, a, b) == std::cmp::Ordering::Equal
    }
}

/// The trainable parser.
///
/// Fields are `pub(crate)` for [`crate::snapshot`], which serializes and
/// reconstructs the whole trained state without re-deriving it.
pub struct LuinetParser {
    pub(crate) config: ModelConfig,
    pub(crate) vocab: Vocab,
    pub(crate) weights: Vec<f32>,
    pub(crate) totals: Vec<f64>,
    pub(crate) updates: u64,
    pub(crate) transitions: ProgramLm,
    pub(crate) compiled: CompiledTransitions,
    pub(crate) pretrained_lm: Option<ProgramLm>,
    pub(crate) trained_examples: usize,
    pub(crate) bos: Symbol,
    pub(crate) eos: Symbol,
    pub(crate) eos_hash: u64,
}

impl LuinetParser {
    /// Create an untrained parser.
    pub fn new(config: ModelConfig) -> Self {
        LuinetParser {
            config,
            vocab: Vocab::new(),
            weights: vec![0.0; FEATURE_BUCKETS],
            totals: vec![0.0; FEATURE_BUCKETS],
            updates: 0,
            transitions: ProgramLm::new(),
            compiled: CompiledTransitions::default(),
            pretrained_lm: None,
            trained_examples: 0,
            bos: bos_symbol(),
            eos: eos_symbol(),
            eos_hash: cand_hash(crate::vocab::EOS),
        }
    }

    /// Attach a pretrained program language model (§4.2). Call before
    /// [`LuinetParser::train`].
    pub fn with_pretrained_lm(mut self, lm: ProgramLm) -> Self {
        self.pretrained_lm = Some(lm);
        self
    }

    /// Number of training examples seen.
    pub fn trained_examples(&self) -> usize {
        self.trained_examples
    }

    /// The program-token vocabulary learned from training data.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// A fingerprint of the trained parameters (non-zero weight buckets,
    /// averaged totals and the update counter). Byte-identical weights ⇔
    /// equal digests; the determinism tests and the training bench compare
    /// this across thread counts and runs.
    pub fn weights_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut state = 0xcbf2_9ce4_8422_2325u64 ^ self.updates.wrapping_mul(PRIME);
        let mut fold = |value: u64| {
            state ^= value;
            state = state.wrapping_mul(PRIME);
        };
        for (bucket, (&weight, &total)) in self.weights.iter().zip(&self.totals).enumerate() {
            if weight != 0.0 || total != 0.0 {
                fold(bucket as u64);
                fold(u64::from(weight.to_bits()));
                fold(total.to_bits());
            }
        }
        state
    }

    /// Train on the given examples (teacher forcing, averaged perceptron,
    /// deterministically parallel — see the crate-level notes).
    pub fn train(&mut self, examples: &[ParserExample]) {
        self.absorb_programs(examples);
        if examples.is_empty() {
            return;
        }
        let prepared = self.prepare_examples(examples);
        let shards = self.config.effective_shards(examples.len());
        let mut order: Vec<u32> = (0..examples.len() as u32).collect();
        for epoch in 0..self.config.epochs {
            let mut rng = StdRng::seed_from_u64(genie_parallel::stream_seed(
                self.config.seed,
                TRAIN_SHUFFLE_STREAM,
                epoch as u64,
            ));
            order.shuffle(&mut rng);
            self.run_rounds(&prepared, &order, shards);
        }
    }

    /// Delta-train for a live skill update: continue from the current
    /// (already-trained) weights, running `epochs` additional passes over
    /// the changed examples (callers should mix in a rehearsal sample of
    /// the unchanged dataset — a pure-delta pass lets the perceptron
    /// forget untouched skills).
    ///
    /// This is the *approximate* fast path of the live subsystem: it
    /// converges the perceptron toward the updated skill in a fraction of a
    /// full retrain, but the resulting weights are a function of the whole
    /// call sequence, not of the final dataset — swaps that must be
    /// byte-identical to a freshly built engine retrain from scratch
    /// instead. Deterministic for a fixed call sequence: the shuffle stream
    /// is keyed by the update counter at entry, and the worker count never
    /// changes the weights.
    ///
    /// Averaging restarts at the fine-tune boundary: the base model's
    /// *averaged* weights are materialized as the new raw weights and the
    /// running totals reset. Without this, the standard averaged-perceptron
    /// bookkeeping discounts every update by how late it arrives, so a
    /// short delta pass after a long base run would contribute almost
    /// nothing to the served (averaged) weights.
    pub fn fine_tune(&mut self, examples: &[ParserExample], epochs: usize) {
        self.absorb_programs(examples);
        if examples.is_empty() || epochs == 0 {
            return;
        }
        // Key the shuffle stream by the update counter *at entry* (a pure
        // function of the call sequence), before averaging resets it.
        let stream = FINE_TUNE_SHUFFLE_STREAM ^ self.updates;
        if self.updates > 0 {
            let updates = self.updates as f64;
            for (weight, total) in self.weights.iter_mut().zip(&mut self.totals) {
                *weight = (f64::from(*weight) - *total / updates) as f32;
                *total = 0.0;
            }
            self.updates = 0;
        }
        let prepared = self.prepare_examples(examples);
        let shards = self.config.effective_shards(examples.len());
        let mut order: Vec<u32> = (0..examples.len() as u32).collect();
        for epoch in 0..epochs {
            let mut rng = StdRng::seed_from_u64(genie_parallel::stream_seed(
                self.config.seed,
                stream,
                epoch as u64,
            ));
            order.shuffle(&mut rng);
            self.run_rounds(&prepared, &order, shards);
        }
    }

    /// Absorb the training programs into the transition model and the
    /// program vocabulary. The transition model proposes candidate
    /// next-tokens at decode time and accumulates across calls; this is
    /// also where program tokens intern into the shared arena.
    fn absorb_programs(&mut self, examples: &[ParserExample]) {
        self.transitions.train(examples.iter().map(|e| &e.program));
        for example in examples {
            self.vocab.add_all(&example.program);
        }
        self.trained_examples += examples.len();
        self.compiled = CompiledTransitions::compile(&self.transitions);
    }

    /// Per-example state, prepared once per train call (not per epoch):
    /// the sentence index and the gold chain with cached hashes.
    fn prepare_examples(&self, examples: &[ParserExample]) -> Vec<PreparedExample> {
        let interner: &'static genie_nlp::Interner = genie_nlp::intern::shared();
        genie_parallel::par_map(self.config.threads, examples, |_, example| {
            let gold = example
                .program
                .iter()
                .map(|token| {
                    let symbol = interner.intern(token);
                    (symbol, cand_hash(token))
                })
                .chain(std::iter::once((self.eos, self.eos_hash)))
                .collect();
            PreparedExample {
                index: SentenceIndex::build(&example.sentence),
                gold,
            }
        })
    }

    /// One epoch of mixing rounds over a shuffled order: each round hands
    /// `shards` contiguous slices of the stream to the workers and merges
    /// their deltas before the next round starts, bounding how stale a
    /// shard's snapshot can get (the per-round cadence is what keeps mixed
    /// training competitive with the sequential perceptron).
    fn run_rounds(&mut self, prepared: &[PreparedExample], order: &[u32], shards: usize) {
        let round_len = shards * TRAIN_ROUND_EXAMPLES;
        for round in order.chunks(round_len) {
            let chunks: Vec<&[u32]> = round.chunks(round.len().div_ceil(shards)).collect();
            let deltas = genie_parallel::par_map(self.config.threads, &chunks, |_, chunk| {
                self.train_shard(chunk, prepared)
            });
            // Merge in shard order: the result is a function of the shard
            // partition alone, so the worker count can never change the
            // trained weights.
            let mut step_sum = 0u64;
            for delta in &deltas {
                for (&bucket, &(dw, dt)) in &delta.deltas {
                    let bucket = bucket as usize;
                    self.weights[bucket] = (self.weights[bucket] as f64 + dw) as f32;
                    self.totals[bucket] += dt;
                }
                step_sum += delta.steps;
            }
            self.updates += step_sum;
        }
    }

    /// Train one shard of one mixing round: accumulate sparse weight deltas
    /// against the round-start snapshot (`self.weights`, re-merged after
    /// every round), scoring each candidate as snapshot + local delta so the
    /// shard behaves exactly like a sequential perceptron over its chunk.
    fn train_shard(&self, chunk: &[u32], prepared: &[PreparedExample]) -> ShardDelta {
        let mut delta = ShardDelta::default();
        let mut buckets: Vec<usize> = Vec::with_capacity(24);
        for &index in chunk {
            let example = &prepared[index as usize];
            let mut prev1 = self.bos;
            let mut prev2 = self.bos;
            for (position, &(gold, gold_hash)) in example.gold.iter().enumerate() {
                let step = StepContext::new(&example.index, prev1, prev2, position);
                let (predicted, predicted_hash) =
                    self.best_candidate(&step, &example.index, Some((gold, gold_hash)), &delta);
                delta.steps += 1;
                let stamp = (self.updates + delta.steps) as f64;
                if predicted != gold {
                    step.collect_buckets(gold, gold_hash, &mut buckets);
                    for &bucket in &buckets {
                        let slot = delta.deltas.entry(bucket as u32).or_default();
                        slot.0 += 1.0;
                        slot.1 += stamp;
                    }
                    step.collect_buckets(predicted, predicted_hash, &mut buckets);
                    for &bucket in &buckets {
                        let slot = delta.deltas.entry(bucket as u32).or_default();
                        slot.0 -= 1.0;
                        slot.1 -= stamp;
                    }
                }
                // Teacher forcing: condition the next step on the gold token.
                prev2 = prev1;
                prev1 = gold;
            }
        }
        delta
    }

    /// Visit the candidate next-tokens in the deterministic scoring order:
    /// the compiled successors of `prev1` (text order), then the sentence's
    /// distinct words not already among them (first-occurrence order, the
    /// copy actions), then the end-of-sequence token, then — in training —
    /// the gold token when no other source proposed it.
    #[inline]
    fn for_each_candidate(
        &self,
        index: &SentenceIndex,
        prev1: Symbol,
        gold: Option<(Symbol, u64)>,
        mut f: impl FnMut(Symbol, u64),
    ) {
        let successors = self.compiled.get(prev1);
        if let Some(entry) = successors {
            for &(token, hash) in entry.candidates.iter() {
                f(token, hash);
            }
        }
        let in_successors = |token: Symbol| successors.is_some_and(|entry| entry.contains(token));
        for &(word, hash) in index.distinct_words() {
            if !in_successors(word) {
                f(word, hash);
            }
        }
        if !in_successors(self.eos) && !index.contains(self.eos) {
            f(self.eos, self.eos_hash);
        }
        if let Some((gold, gold_hash)) = gold {
            if !in_successors(gold) && !index.contains(gold) && gold != self.eos {
                f(gold, gold_hash);
            }
        }
    }

    /// Raw (non-averaged) score of one candidate during training: round-start
    /// snapshot plus the shard-local delta overlay, plus the pretrained-LM
    /// contribution.
    #[inline]
    fn score_train(
        &self,
        step: &StepContext<'_>,
        candidate: Symbol,
        candidate_hash: u64,
        delta: &ShardDelta,
    ) -> f64 {
        let mut score = 0.0;
        step.for_each_bucket(candidate, candidate_hash, |bucket| {
            let local = delta
                .deltas
                .get(&(bucket as u32))
                .map(|&(dw, _)| dw)
                .unwrap_or(0.0);
            score += self.weights[bucket] as f64 + local;
        });
        score + self.lm_score(step, candidate)
    }

    /// Averaged-weight score of one candidate at decode time.
    #[inline]
    fn score_decode(&self, step: &StepContext<'_>, candidate: Symbol, candidate_hash: u64) -> f64 {
        let mut score = 0.0;
        if self.updates > 0 {
            let updates = self.updates as f64;
            step.for_each_bucket(candidate, candidate_hash, |bucket| {
                score += self.weights[bucket] as f64 - self.totals[bucket] / updates;
            });
        } else {
            step.for_each_bucket(candidate, candidate_hash, |bucket| {
                score += self.weights[bucket] as f64;
            });
        }
        score + self.lm_score(step, candidate)
    }

    #[inline]
    fn lm_score(&self, step: &StepContext<'_>, candidate: Symbol) -> f64 {
        match &self.pretrained_lm {
            Some(lm) if self.config.lm_weight != 0.0 => {
                self.config.lm_weight as f64
                    * lm.log_prob_sym(step.prev2(), step.prev1(), candidate)
            }
            _ => 0.0,
        }
    }

    /// The argmax candidate under the raw training score (first seen wins
    /// ties, which the deterministic candidate order makes reproducible).
    fn best_candidate(
        &self,
        step: &StepContext<'_>,
        index: &SentenceIndex,
        gold: Option<(Symbol, u64)>,
        delta: &ShardDelta,
    ) -> (Symbol, u64) {
        let mut best = (self.eos, self.eos_hash);
        let mut best_score = f64::NEG_INFINITY;
        self.for_each_candidate(index, step.prev1(), gold, |candidate, hash| {
            let score = self.score_train(step, candidate, hash, delta);
            if score > best_score {
                best_score = score;
                best = (candidate, hash);
            }
        });
        best
    }

    /// Greedy averaged-weight decode; returns the tokens and the
    /// length-normalized sequence score (the mean per-step score including
    /// the final end-of-sequence step).
    fn decode_greedy(&self, index: &SentenceIndex) -> (Vec<Symbol>, f64) {
        let mut out: Vec<Symbol> = Vec::new();
        let mut prev1 = self.bos;
        let mut prev2 = self.bos;
        let mut total = 0.0;
        let mut steps = 0usize;
        let mut ended = false;
        for position in 0..self.config.max_length {
            let step = StepContext::new(index, prev1, prev2, position);
            let mut best = (self.eos, self.eos_hash);
            let mut best_score = f64::NEG_INFINITY;
            self.for_each_candidate(index, prev1, None, |candidate, hash| {
                let score = self.score_decode(&step, candidate, hash);
                if score > best_score {
                    best_score = score;
                    best = (candidate, hash);
                }
            });
            total += best_score;
            steps += 1;
            if best.0 == self.eos {
                ended = true;
                break;
            }
            out.push(best.0);
            prev2 = prev1;
            prev1 = best.0;
        }
        if !ended {
            // Score the closing end-of-sequence step the decode never took,
            // so normalized scores stay comparable with finished sequences.
            let step = StepContext::new(index, prev1, prev2, out.len());
            total += self.score_decode(&step, self.eos, self.eos_hash);
            steps += 1;
        }
        (out, total / steps.max(1) as f64)
    }

    /// Decode the program for an interned sentence (greedy, averaged
    /// weights).
    pub fn predict(&self, sentence: &[Symbol]) -> Vec<String> {
        let index = SentenceIndex::build(sentence);
        let (tokens, _) = self.decode_greedy(&index);
        resolve_tokens(&tokens)
    }

    /// Decode the `k` best-scoring candidate programs for a sentence, most
    /// probable first.
    ///
    /// The top candidate is always the greedy decode — identical to
    /// [`LuinetParser::predict`] — so serving the best candidate behaves
    /// exactly like the evaluated parser. Alternatives come from a
    /// deterministic beam search (beam width = `k`) ranked by
    /// length-normalized score (mean per-step averaged-weight score, plus
    /// the pretrained-LM contribution); normalization keeps long
    /// token-copy runaways from outscoring short finished parses. Ties are
    /// broken lexicographically on the token sequence, so the ranking is
    /// reproducible bit for bit across runs and thread counts — the
    /// property the serving cache depends on.
    pub fn predict_topk(&self, sentence: &[Symbol], k: usize) -> Vec<ScoredPrediction> {
        let index = SentenceIndex::build(sentence);
        let (greedy_tokens, greedy_score) = self.decode_greedy(&index);
        let greedy_tokens = resolve_tokens(&greedy_tokens);
        let mut out = vec![ScoredPrediction {
            tokens: greedy_tokens,
            score: greedy_score,
        }];
        if k <= 1 {
            return out;
        }
        let mut arena = BeamArena::default();
        for hypothesis in self.beam(&index, k, &mut arena) {
            if out.len() >= k {
                break;
            }
            let tokens =
                resolve_tokens(&arena.materialize(hypothesis.tail, hypothesis.len as usize));
            if out.iter().any(|p| p.tokens == tokens) {
                continue;
            }
            let score = hypothesis.normalized();
            out.push(ScoredPrediction { tokens, score });
        }
        out
    }

    /// Deterministic beam search over the decode space; returns the beam
    /// ranked by length-normalized score.
    fn beam(
        &self,
        index: &SentenceIndex,
        beam_width: usize,
        arena: &mut BeamArena,
    ) -> Vec<Hypothesis> {
        let interner: &'static genie_nlp::Interner = genie_nlp::intern::shared();
        let mut beam: Vec<Hypothesis> = vec![Hypothesis {
            tail: 0,
            len: 0,
            prev1: self.bos,
            prev2: self.bos,
            score: 0.0,
            steps: 0,
            finished: false,
        }];
        let mut next: Vec<Hypothesis> = Vec::with_capacity(beam_width * 8);
        for position in 0..self.config.max_length {
            if beam.iter().all(|h| h.finished) {
                break;
            }
            next.clear();
            for hypothesis in &beam {
                if hypothesis.finished {
                    next.push(*hypothesis);
                    continue;
                }
                let step = StepContext::new(index, hypothesis.prev1, hypothesis.prev2, position);
                self.for_each_candidate(index, hypothesis.prev1, None, |candidate, hash| {
                    let score = self.score_decode(&step, candidate, hash);
                    let mut extended = *hypothesis;
                    extended.score += score;
                    extended.steps += 1;
                    if candidate == self.eos {
                        extended.finished = true;
                    } else {
                        extended.prev2 = extended.prev1;
                        extended.prev1 = candidate;
                        extended.tail = arena.push(hypothesis.tail, candidate);
                        extended.len += 1;
                    }
                    next.push(extended);
                });
            }
            // Deterministic pruning: normalized score descending, token
            // sequence (by resolved text) as the tie-break — no hash-order
            // or float-equality ambiguity, no dependence on symbol ids.
            next.sort_by(|a, b| {
                b.normalized()
                    .partial_cmp(&a.normalized())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| arena.cmp_seq(interner, a, b))
            });
            next.dedup_by(|a, b| a.finished == b.finished && arena.seq_eq(interner, a, b));
            next.truncate(beam_width);
            std::mem::swap(&mut beam, &mut next);
        }
        beam
    }

    /// Predict programs for many sentences in parallel (used by the
    /// evaluation harness). Uses the configured worker threads for large
    /// batches; see [`LuinetParser::predict_batch_with_threads`] for an
    /// explicit count.
    pub fn predict_batch<S>(&self, sentences: &[S]) -> Vec<Vec<String>>
    where
        S: AsRef<[Symbol]> + Sync,
    {
        if sentences.len() < 32 {
            return sentences.iter().map(|s| self.predict(s.as_ref())).collect();
        }
        self.predict_batch_with_threads(sentences, self.config.threads)
    }

    /// [`LuinetParser::predict_batch`] with an explicit worker count (`0` =
    /// all cores, `1` = inline). Predictions are a pure function of the
    /// model and the sentence and [`genie_parallel::par_map`] preserves
    /// input order, so the output is byte-identical for any thread count.
    pub fn predict_batch_with_threads<S>(&self, sentences: &[S], threads: usize) -> Vec<Vec<String>>
    where
        S: AsRef<[Symbol]> + Sync,
    {
        genie_parallel::par_map(threads, sentences, |_, sentence| {
            self.predict(sentence.as_ref())
        })
    }

    /// Top-`k` scored candidates for many sentences, fanned out over
    /// `threads` workers with order-preserving, byte-identical output.
    pub fn predict_topk_batch<S>(
        &self,
        sentences: &[S],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<ScoredPrediction>>
    where
        S: AsRef<[Symbol]> + Sync,
    {
        genie_parallel::par_map(threads, sentences, |_, sentence| {
            self.predict_topk(sentence.as_ref(), k)
        })
    }

    /// Exact-match accuracy of the parser on a set of examples (token-level
    /// exact match; the pipeline-level program accuracy additionally
    /// canonicalizes both sides). Decodes in parallel over the configured
    /// worker threads, borrowing every sentence — no per-example clones.
    pub fn exact_match_accuracy(&self, examples: &[ParserExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let interner: &'static genie_nlp::Interner = genie_nlp::intern::shared();
        let correct = genie_parallel::par_map(self.config.threads, examples, |_, example| {
            let index = SentenceIndex::build(&example.sentence);
            let (tokens, _) = self.decode_greedy(&index);
            tokens.len() == example.program.len()
                && tokens
                    .iter()
                    .zip(&example.program)
                    .all(|(&symbol, gold)| interner.resolve(symbol) == gold)
        })
        .into_iter()
        .filter(|&ok| ok)
        .count();
        correct as f64 / examples.len() as f64
    }
}

/// Resolve decoded symbols to owned token text (the public API boundary).
fn resolve_tokens(tokens: &[Symbol]) -> Vec<String> {
    let interner = genie_nlp::intern::shared();
    tokens
        .iter()
        .map(|&s| interner.resolve(s).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_nlp::intern::TokenStream;

    fn stream(s: &str) -> TokenStream {
        genie_nlp::intern::shared().stream_of(s)
    }

    fn training_set() -> Vec<ParserExample> {
        let mut out = Vec::new();
        let devices = [
            ("twitter", "@com.twitter.timeline"),
            ("gmail", "@com.gmail.inbox"),
            ("dropbox", "@com.dropbox.list_folder"),
            ("calendar", "@org.thingpedia.builtin.calendar.list_events"),
        ];
        for (word, function) in devices {
            out.push(ParserExample::from_strs(
                &format!("show me my {word} stuff"),
                &format!("now => {function} ( ) => notify"),
            ));
            out.push(ParserExample::from_strs(
                &format!("get my {word} stuff"),
                &format!("now => {function} ( ) => notify"),
            ));
            out.push(ParserExample::from_strs(
                &format!("notify me when my {word} stuff changes"),
                &format!("monitor ( {function} ( ) ) => notify"),
            ));
        }
        // Copy examples: tweet <free form text>.
        for text in [
            "hello world",
            "good morning",
            "rust is great",
            "paper accepted",
        ] {
            out.push(ParserExample::from_strs(
                &format!("tweet {text}"),
                &format!("now => @com.twitter.post ( param:status = \" {text} \" )"),
            ));
        }
        out
    }

    /// A larger synthetic workload (hundreds of examples) that actually
    /// splits into multiple training shards.
    fn sharded_training_set() -> Vec<ParserExample> {
        let mut out = Vec::new();
        let devices = [
            ("twitter", "@com.twitter.timeline"),
            ("gmail", "@com.gmail.inbox"),
            ("dropbox", "@com.dropbox.list_folder"),
            ("spotify", "@com.spotify.playlists"),
            ("weather", "@org.thingpedia.weather.current"),
            ("news", "@com.nytimes.get_front_page"),
        ];
        let verbs = ["show", "get", "fetch", "list", "display", "pull"];
        let tails = ["stuff", "items", "things", "updates", "results", "entries"];
        for (word, function) in devices {
            for verb in verbs {
                for tail in tails {
                    out.push(ParserExample::from_strs(
                        &format!("{verb} me my {word} {tail}"),
                        &format!("now => {function} ( ) => notify"),
                    ));
                }
            }
        }
        out
    }

    #[test]
    fn fine_tune_is_thread_invariant_and_learns_the_delta() {
        // The delta: a skill the base model has never seen.
        let delta: Vec<ParserExample> = ["show", "get", "fetch", "list"]
            .iter()
            .map(|verb| {
                ParserExample::from_strs(
                    &format!("{verb} me my instagram stuff"),
                    "now => @com.instagram.feed ( ) => notify",
                )
            })
            .collect();
        // Delta passes mix the changed examples with a rehearsal sample of
        // the base dataset — fine-tuning on the delta alone would let the
        // perceptron forget the untouched skills.
        let mut rehearsal = delta.clone();
        rehearsal.extend(training_set());
        let run = |threads: usize| {
            let mut parser = LuinetParser::new(ModelConfig {
                epochs: 10,
                seed: 3,
                threads,
                ..ModelConfig::default()
            });
            parser.train(&training_set());
            parser.fine_tune(&rehearsal, 4);
            parser
        };
        let sequential = run(1);
        let parallel = run(4);
        // Delta training is deterministic for a fixed call sequence and
        // worker-count-invariant like full training.
        assert_eq!(sequential.weights_digest(), parallel.weights_digest());
        // It actually learns the new skill without forgetting the old one.
        let accuracy = sequential.exact_match_accuracy(&delta);
        assert!(accuracy > 0.9, "delta accuracy {accuracy}");
        let base_accuracy = sequential.exact_match_accuracy(&training_set());
        assert!(base_accuracy > 0.8, "base accuracy {base_accuracy}");
        // And it is the approximate path: the weights differ from a
        // from-scratch retrain over the combined dataset.
        let mut scratch = LuinetParser::new(ModelConfig {
            epochs: 10,
            seed: 3,
            threads: 1,
            ..ModelConfig::default()
        });
        let mut combined = training_set();
        combined.extend(delta.iter().cloned());
        scratch.train(&combined);
        assert_ne!(scratch.weights_digest(), sequential.weights_digest());
    }

    #[test]
    fn learns_the_training_set() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 20,
            seed: 2,
            ..ModelConfig::default()
        });
        let examples = training_set();
        parser.train(&examples);
        let accuracy = parser.exact_match_accuracy(&examples);
        assert!(accuracy > 0.9, "training accuracy {accuracy}");
    }

    #[test]
    fn generalizes_to_new_function_word_combinations() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 10,
            ..ModelConfig::default()
        });
        let examples = training_set();
        parser.train(&examples);
        // "notify me when my calendar stuff changes" appears in training;
        // check a held-out lexical variant of a seen construct instead.
        let predicted = parser.predict(&stream("show me my gmail stuff"));
        assert_eq!(predicted.join(" "), "now => @com.gmail.inbox ( ) => notify");
    }

    #[test]
    fn copies_unseen_free_form_text() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 20,
            seed: 1,
            ..ModelConfig::default()
        });
        let examples = training_set();
        parser.train(&examples);
        let predicted = parser.predict(&stream("tweet deadline extended again"));
        let joined = predicted.join(" ");
        assert!(
            joined.contains("deadline") && joined.contains("extended"),
            "copy mechanism failed: {joined}"
        );
        assert!(joined.starts_with("now => @com.twitter.post"));
    }

    #[test]
    fn pretrained_lm_biases_toward_grammatical_programs() {
        let mut lm = ProgramLm::new();
        let programs: Vec<Vec<String>> = training_set().into_iter().map(|e| e.program).collect();
        lm.train(&programs);
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 4,
            ..ModelConfig::default()
        })
        .with_pretrained_lm(lm);
        parser.train(&training_set());
        let predicted = parser.predict(&stream("show me my dropbox stuff"));
        assert!(predicted.join(" ").contains("@com.dropbox.list_folder"));
    }

    #[test]
    fn untrained_parser_predicts_nothing_useful() {
        let parser = LuinetParser::new(ModelConfig::default());
        let predicted = parser.predict(&stream("show me my tweets"));
        // With no training data there is no program vocabulary, so the
        // output cannot contain any program structure.
        assert!(!predicted.iter().any(|t| t == "=>" || t.starts_with('@')));
        assert_eq!(parser.trained_examples(), 0);
        assert!(parser.vocab().is_empty());
    }

    #[test]
    fn topk_is_scored_ranked_and_deterministic() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 8,
            seed: 2,
            ..ModelConfig::default()
        });
        parser.train(&training_set());
        let sentence = stream("show me my gmail stuff");
        let top = parser.predict_topk(&sentence, 4);
        assert!(!top.is_empty() && top.len() <= 4);
        // The top candidate is pinned to the greedy decode; the beam
        // alternatives after it are ranked by normalized score.
        assert_eq!(top[0].tokens, parser.predict(&sentence));
        for pair in top[1..].windows(2) {
            assert!(pair[0].score >= pair[1].score, "alternatives out of order");
        }
        // No duplicate candidates.
        for (i, a) in top.iter().enumerate() {
            for b in &top[i + 1..] {
                assert_ne!(a.tokens, b.tokens, "duplicate candidate");
            }
        }
        // Rerunning the decode gives bit-identical candidates.
        assert_eq!(top, parser.predict_topk(&sentence, 4));
        // The top candidate is a plausible program for the sentence.
        assert!(top[0].tokens.join(" ").contains("@com.gmail.inbox"));
    }

    #[test]
    fn topk_batch_is_thread_invariant() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 4,
            ..ModelConfig::default()
        });
        parser.train(&training_set());
        let examples = training_set();
        let sentences: Vec<&TokenStream> = examples.iter().map(|e| &e.sentence).collect();
        let sequential = parser.predict_topk_batch(&sentences, 3, 1);
        for threads in [2, 8] {
            assert_eq!(
                parser.predict_topk_batch(&sentences, 3, threads),
                sequential,
                "top-k batch differs at {threads} threads"
            );
        }
        let greedy = parser.predict_batch_with_threads(&sentences, 1);
        for threads in [2, 8] {
            assert_eq!(
                parser.predict_batch_with_threads(&sentences, threads),
                greedy,
                "greedy batch differs at {threads} threads"
            );
        }
    }

    #[test]
    fn batch_prediction_matches_sequential() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 4,
            ..ModelConfig::default()
        });
        parser.train(&training_set());
        let examples = training_set();
        let sentences: Vec<&TokenStream> = examples.iter().map(|e| &e.sentence).collect();
        let sequential: Vec<Vec<String>> = sentences.iter().map(|s| parser.predict(s)).collect();
        let batched = parser.predict_batch(&sentences);
        assert_eq!(sequential, batched);
    }

    #[test]
    fn training_is_thread_invariant_and_reproducible() {
        let examples = sharded_training_set();
        let train_with = |threads: usize| {
            let mut parser = LuinetParser::new(ModelConfig {
                epochs: 3,
                seed: 7,
                threads,
                train_shards: 4,
                ..ModelConfig::default()
            });
            parser.train(&examples);
            parser
        };
        let baseline = train_with(1);
        let digest = baseline.weights_digest();
        let topk = baseline.predict_topk(&stream("fetch me my spotify updates"), 3);
        for threads in [2, 8] {
            let parser = train_with(threads);
            assert_eq!(
                parser.weights_digest(),
                digest,
                "weights differ at {threads} threads"
            );
            assert_eq!(
                parser.predict_topk(&stream("fetch me my spotify updates"), 3),
                topk,
                "predictions differ at {threads} threads"
            );
        }
        // Two runs at the same seed and thread count are identical too.
        assert_eq!(train_with(1).weights_digest(), digest);
    }

    #[test]
    fn sharded_training_matches_the_sequential_trainer_on_accuracy() {
        let examples = sharded_training_set();
        let accuracy_with = |train_shards: usize, threads: usize| {
            let mut parser = LuinetParser::new(ModelConfig {
                epochs: 3,
                seed: 5,
                threads,
                train_shards,
                ..ModelConfig::default()
            });
            parser.train(&examples);
            parser.exact_match_accuracy(&examples)
        };
        let sequential = accuracy_with(1, 1);
        let sharded = accuracy_with(4, 0);
        assert!(
            sharded >= sequential,
            "sharded training regressed accuracy: {sharded} < {sequential}"
        );
        assert!(
            sequential > 0.9,
            "sequential accuracy too low: {sequential}"
        );
    }

    #[test]
    fn tiny_datasets_collapse_to_one_shard() {
        let config = ModelConfig::default();
        assert_eq!(config.effective_shards(24), 1);
        assert_eq!(config.effective_shards(64), 1);
        assert_eq!(config.effective_shards(128), 2);
        assert_eq!(config.effective_shards(10_000), 4);
        let wide = ModelConfig {
            train_shards: 16,
            ..ModelConfig::default()
        };
        assert_eq!(wide.effective_shards(10_000), 16);
        assert_eq!(wide.effective_shards(300), 4);
    }
}
