//! LUInet-lite: the trainable semantic parser.
//!
//! The parser decodes the program left to right. At each step it scores a
//! set of candidate next-tokens with a linear model over hashed features of
//! (input sentence, previous program tokens, position) — the same
//! conditioning signals MQAN's decoder attends over — and can *copy* words
//! from the input sentence (the pointer mechanism that makes unquoted
//! free-form parameters possible). Training uses the averaged structured
//! perceptron with teacher forcing; an optional pretrained program language
//! model ([`crate::ProgramLm`]) contributes an additional score, mirroring
//! the decoder LM of §4.2.

use genie_nlp::intern::{Symbol, TokenStream};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::{resolve_sentence, ParserExample};
use crate::features::{candidate_buckets, FEATURE_BUCKETS};
use crate::lm::ProgramLm;
use crate::vocab::{Vocab, BOS, EOS};

/// Hyper-parameters of the parser.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Maximum decoded program length.
    pub max_length: usize,
    /// Weight of the pretrained program LM score (0 disables its influence
    /// even when a LM is attached).
    pub lm_weight: f32,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            epochs: 3,
            max_length: 48,
            lm_weight: 2.0,
            seed: 0,
        }
    }
}

/// One scored candidate program from [`LuinetParser::predict_topk`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPrediction {
    /// The decoded program tokens (without the end-of-sequence marker).
    pub tokens: Vec<String>,
    /// Length-normalized decoder score (mean per-step score); higher is
    /// more probable. Comparable only between candidates for the same
    /// sentence.
    pub score: f64,
}

/// One in-flight beam hypothesis of [`LuinetParser::predict_topk`].
#[derive(Debug, Clone)]
struct Hypothesis {
    tokens: Vec<String>,
    prev1: String,
    prev2: String,
    score: f64,
    steps: usize,
    finished: bool,
}

impl Hypothesis {
    /// Mean per-step score — comparable between hypotheses of different
    /// lengths, unlike the raw cumulative score.
    fn normalized(&self) -> f64 {
        self.score / self.steps.max(1) as f64
    }
}

/// The trainable parser.
pub struct LuinetParser {
    config: ModelConfig,
    vocab: Vocab,
    weights: Vec<f32>,
    totals: Vec<f64>,
    updates: u64,
    transitions: ProgramLm,
    pretrained_lm: Option<ProgramLm>,
    trained_examples: usize,
}

impl LuinetParser {
    /// Create an untrained parser.
    pub fn new(config: ModelConfig) -> Self {
        LuinetParser {
            config,
            vocab: Vocab::new(),
            weights: vec![0.0; FEATURE_BUCKETS],
            totals: vec![0.0; FEATURE_BUCKETS],
            updates: 0,
            transitions: ProgramLm::new(),
            pretrained_lm: None,
            trained_examples: 0,
        }
    }

    /// Attach a pretrained program language model (§4.2). Call before
    /// [`LuinetParser::train`].
    pub fn with_pretrained_lm(mut self, lm: ProgramLm) -> Self {
        self.pretrained_lm = Some(lm);
        self
    }

    /// Number of training examples seen.
    pub fn trained_examples(&self) -> usize {
        self.trained_examples
    }

    /// The program-token vocabulary learned from training data.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Train on the given examples (teacher forcing, averaged perceptron).
    ///
    /// Sentence symbols resolve once per example into borrowed fragments
    /// ([`resolve_sentence`]): the epochs then hash and compare `&str`s
    /// that point straight into the arena — no per-sentence `Vec<String>`
    /// materialization, and no re-tokenization anywhere in training.
    pub fn train(&mut self, examples: &[ParserExample]) {
        // The transition model proposes candidate next-tokens at decode time
        // and is always (re)built from the training programs.
        self.transitions.train(examples.iter().map(|e| &e.program));
        for example in examples {
            self.vocab.add_all(&example.program);
        }
        self.trained_examples += examples.len();

        let resolved: Vec<Vec<&'static str>> = examples
            .iter()
            .map(|e| resolve_sentence(&e.sentence))
            .collect();
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut buckets = Vec::with_capacity(24);
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let example = &examples[idx];
                self.train_one(&resolved[idx], &example.program, &mut buckets);
            }
        }
    }

    fn train_one(&mut self, sentence: &[&str], program: &[String], buckets: &mut Vec<usize>) {
        let mut prev1 = BOS.to_owned();
        let mut prev2 = BOS.to_owned();
        let gold_with_eos: Vec<&str> = program
            .iter()
            .map(String::as_str)
            .chain(std::iter::once(EOS))
            .collect();
        for (position, gold) in gold_with_eos.iter().enumerate() {
            let mut candidates = self.candidates(sentence, &prev1);
            if !candidates.iter().any(|c| c == gold) {
                candidates.push((*gold).to_owned());
            }
            let predicted =
                self.best_candidate(sentence, &prev1, &prev2, position, &candidates, buckets);
            self.updates += 1;
            if predicted != *gold {
                candidate_buckets(sentence, &prev1, &prev2, position, gold, buckets);
                for &bucket in buckets.iter() {
                    self.weights[bucket] += 1.0;
                    self.totals[bucket] += self.updates as f64;
                }
                candidate_buckets(sentence, &prev1, &prev2, position, &predicted, buckets);
                for &bucket in buckets.iter() {
                    self.weights[bucket] -= 1.0;
                    self.totals[bucket] -= self.updates as f64;
                }
            }
            // Teacher forcing: condition the next step on the gold token.
            prev2 = std::mem::replace(&mut prev1, (*gold).to_owned());
        }
    }

    /// Candidate next-tokens: the tokens observed to follow `prev1` in the
    /// training programs, plus every input-sentence word (the copy actions),
    /// plus the end-of-sequence token.
    fn candidates(&self, sentence: &[&str], prev1: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .transitions
            .successors(prev1)
            .map(str::to_owned)
            .collect();
        for &word in sentence {
            if !out.iter().any(|c| c == word) {
                out.push(word.to_owned());
            }
        }
        if !out.iter().any(|c| c == EOS) {
            out.push(EOS.to_owned());
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn score(
        &self,
        sentence: &[&str],
        prev1: &str,
        prev2: &str,
        position: usize,
        candidate: &str,
        buckets: &mut Vec<usize>,
        averaged: bool,
    ) -> f64 {
        candidate_buckets(sentence, prev1, prev2, position, candidate, buckets);
        let mut score: f64 = 0.0;
        for &bucket in buckets.iter() {
            if averaged && self.updates > 0 {
                score += self.weights[bucket] as f64 - self.totals[bucket] / self.updates as f64;
            } else {
                score += self.weights[bucket] as f64;
            }
        }
        if let Some(lm) = &self.pretrained_lm {
            if self.config.lm_weight != 0.0 {
                score += self.config.lm_weight as f64 * lm.log_prob(prev2, prev1, candidate);
            }
        }
        score
    }

    fn best_candidate(
        &self,
        sentence: &[&str],
        prev1: &str,
        prev2: &str,
        position: usize,
        candidates: &[String],
        buckets: &mut Vec<usize>,
    ) -> String {
        let mut best = EOS.to_owned();
        let mut best_score = f64::NEG_INFINITY;
        for candidate in candidates {
            let score = self.score(sentence, prev1, prev2, position, candidate, buckets, false);
            if score > best_score {
                best_score = score;
                best = candidate.clone();
            }
        }
        best
    }

    /// Decode the program for an interned sentence (greedy, averaged
    /// weights).
    pub fn predict(&self, sentence: &[Symbol]) -> Vec<String> {
        let sentence = resolve_sentence(sentence);
        self.predict_resolved(&sentence)
    }

    fn predict_resolved(&self, sentence: &[&str]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut prev1 = BOS.to_owned();
        let mut prev2 = BOS.to_owned();
        let mut buckets = Vec::with_capacity(24);
        for position in 0..self.config.max_length {
            let candidates = self.candidates(sentence, &prev1);
            let mut best = EOS.to_owned();
            let mut best_score = f64::NEG_INFINITY;
            for candidate in &candidates {
                let score = self.score(
                    sentence,
                    &prev1,
                    &prev2,
                    position,
                    candidate,
                    &mut buckets,
                    true,
                );
                if score > best_score {
                    best_score = score;
                    best = candidate.clone();
                }
            }
            if best == EOS {
                break;
            }
            out.push(best.clone());
            prev2 = std::mem::replace(&mut prev1, best);
        }
        out
    }

    /// Decode the `k` best-scoring candidate programs for a sentence, most
    /// probable first.
    ///
    /// The top candidate is always the greedy decode — identical to
    /// [`LuinetParser::predict`] — so serving the best candidate behaves
    /// exactly like the evaluated parser. Alternatives come from a
    /// deterministic beam search (beam width = `k`) ranked by
    /// length-normalized score (mean per-step averaged-weight score, plus
    /// the pretrained-LM contribution); normalization keeps long
    /// token-copy runaways from outscoring short finished parses. Ties are
    /// broken lexicographically on the token sequence, so the ranking is
    /// reproducible bit for bit across runs and thread counts — the
    /// property the serving cache depends on.
    pub fn predict_topk(&self, sentence: &[Symbol], k: usize) -> Vec<ScoredPrediction> {
        let sentence = resolve_sentence(sentence);
        let greedy_tokens = self.predict_resolved(&sentence);
        let greedy_score = self.sequence_score(&sentence, &greedy_tokens);
        let mut out = vec![ScoredPrediction {
            tokens: greedy_tokens,
            score: greedy_score,
        }];
        if k <= 1 {
            return out;
        }
        for hypothesis in self.beam(&sentence, k) {
            if out.len() >= k {
                break;
            }
            if out.iter().any(|p| p.tokens == hypothesis.tokens) {
                continue;
            }
            let score = hypothesis.normalized();
            out.push(ScoredPrediction {
                tokens: hypothesis.tokens,
                score,
            });
        }
        out
    }

    /// The length-normalized averaged-weight score of a fixed token
    /// sequence (the score [`LuinetParser::predict_topk`] reports for its
    /// greedy top candidate).
    fn sequence_score(&self, sentence: &[&str], tokens: &[String]) -> f64 {
        let mut buckets = Vec::with_capacity(24);
        let mut prev1 = BOS.to_owned();
        let mut prev2 = BOS.to_owned();
        let mut total = 0.0;
        let mut steps = 0usize;
        for (position, token) in tokens
            .iter()
            .map(String::as_str)
            .chain(std::iter::once(EOS))
            .enumerate()
        {
            total += self.score(
                sentence,
                &prev1,
                &prev2,
                position,
                token,
                &mut buckets,
                true,
            );
            steps += 1;
            prev2 = std::mem::replace(&mut prev1, token.to_owned());
        }
        total / steps.max(1) as f64
    }

    /// Deterministic beam search over the decode space; returns the beam
    /// ranked by length-normalized score.
    fn beam(&self, sentence: &[&str], beam_width: usize) -> Vec<Hypothesis> {
        let mut buckets = Vec::with_capacity(24);
        let mut beam: Vec<Hypothesis> = vec![Hypothesis {
            tokens: Vec::new(),
            prev1: BOS.to_owned(),
            prev2: BOS.to_owned(),
            score: 0.0,
            steps: 0,
            finished: false,
        }];
        for position in 0..self.config.max_length {
            if beam.iter().all(|h| h.finished) {
                break;
            }
            let mut next: Vec<Hypothesis> = Vec::with_capacity(beam.len() * 8);
            for hypothesis in &beam {
                if hypothesis.finished {
                    next.push(hypothesis.clone());
                    continue;
                }
                let candidates = self.candidates(sentence, &hypothesis.prev1);
                for candidate in &candidates {
                    let step = self.score(
                        sentence,
                        &hypothesis.prev1,
                        &hypothesis.prev2,
                        position,
                        candidate,
                        &mut buckets,
                        true,
                    );
                    let mut extended = hypothesis.clone();
                    extended.score += step;
                    extended.steps += 1;
                    if candidate == EOS {
                        extended.finished = true;
                    } else {
                        extended.prev2 = std::mem::replace(&mut extended.prev1, candidate.clone());
                        extended.tokens.push(candidate.clone());
                    }
                    next.push(extended);
                }
            }
            // Deterministic pruning: normalized score descending, token
            // sequence as the tie-break (no hash-order or float-equality
            // ambiguity).
            next.sort_by(|a, b| {
                b.normalized()
                    .partial_cmp(&a.normalized())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.tokens.cmp(&b.tokens))
            });
            next.dedup_by(|a, b| a.tokens == b.tokens && a.finished == b.finished);
            next.truncate(beam_width);
            beam = next;
        }
        beam
    }

    /// Predict programs for many sentences in parallel (used by the
    /// evaluation harness). Uses all available cores for large batches; see
    /// [`LuinetParser::predict_batch_with_threads`] for an explicit count.
    pub fn predict_batch(&self, sentences: &[TokenStream]) -> Vec<Vec<String>> {
        if sentences.len() < 32 {
            return sentences.iter().map(|s| self.predict(s)).collect();
        }
        self.predict_batch_with_threads(sentences, 0)
    }

    /// [`LuinetParser::predict_batch`] with an explicit worker count (`0` =
    /// all cores, `1` = inline). Predictions are a pure function of the
    /// model and the sentence and [`genie_parallel::par_map`] preserves
    /// input order, so the output is byte-identical for any thread count.
    pub fn predict_batch_with_threads(
        &self,
        sentences: &[TokenStream],
        threads: usize,
    ) -> Vec<Vec<String>> {
        genie_parallel::par_map(threads, sentences, |_, sentence| self.predict(sentence))
    }

    /// Top-`k` scored candidates for many sentences, fanned out over
    /// `threads` workers with order-preserving, byte-identical output.
    pub fn predict_topk_batch(
        &self,
        sentences: &[TokenStream],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<ScoredPrediction>> {
        genie_parallel::par_map(threads, sentences, |_, sentence| {
            self.predict_topk(sentence, k)
        })
    }

    /// Exact-match accuracy of the parser on a set of examples (token-level
    /// exact match; the pipeline-level program accuracy additionally
    /// canonicalizes both sides).
    pub fn exact_match_accuracy(&self, examples: &[ParserExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let sentences: Vec<TokenStream> = examples.iter().map(|e| e.sentence.clone()).collect();
        let predictions = self.predict_batch(&sentences);
        let correct = predictions
            .iter()
            .zip(examples)
            .filter(|(predicted, example)| **predicted == example.program)
            .count();
        correct as f64 / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(s: &str) -> TokenStream {
        genie_nlp::intern::shared().stream_of(s)
    }

    fn training_set() -> Vec<ParserExample> {
        let mut out = Vec::new();
        let devices = [
            ("twitter", "@com.twitter.timeline"),
            ("gmail", "@com.gmail.inbox"),
            ("dropbox", "@com.dropbox.list_folder"),
            ("calendar", "@org.thingpedia.builtin.calendar.list_events"),
        ];
        for (word, function) in devices {
            out.push(ParserExample::from_strs(
                &format!("show me my {word} stuff"),
                &format!("now => {function} ( ) => notify"),
            ));
            out.push(ParserExample::from_strs(
                &format!("get my {word} stuff"),
                &format!("now => {function} ( ) => notify"),
            ));
            out.push(ParserExample::from_strs(
                &format!("notify me when my {word} stuff changes"),
                &format!("monitor ( {function} ( ) ) => notify"),
            ));
        }
        // Copy examples: tweet <free form text>.
        for text in [
            "hello world",
            "good morning",
            "rust is great",
            "paper accepted",
        ] {
            out.push(ParserExample::from_strs(
                &format!("tweet {text}"),
                &format!("now => @com.twitter.post ( param:status = \" {text} \" )"),
            ));
        }
        out
    }

    #[test]
    fn learns_the_training_set() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 20,
            seed: 3,
            ..ModelConfig::default()
        });
        let examples = training_set();
        parser.train(&examples);
        let accuracy = parser.exact_match_accuracy(&examples);
        assert!(accuracy > 0.9, "training accuracy {accuracy}");
    }

    #[test]
    fn generalizes_to_new_function_word_combinations() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 10,
            ..ModelConfig::default()
        });
        let examples = training_set();
        parser.train(&examples);
        // "notify me when my calendar stuff changes" appears in training;
        // check a held-out lexical variant of a seen construct instead.
        let predicted = parser.predict(&stream("show me my gmail stuff"));
        assert_eq!(predicted.join(" "), "now => @com.gmail.inbox ( ) => notify");
    }

    #[test]
    fn copies_unseen_free_form_text() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 20,
            seed: 1,
            ..ModelConfig::default()
        });
        let examples = training_set();
        parser.train(&examples);
        let predicted = parser.predict(&stream("tweet deadline extended again"));
        let joined = predicted.join(" ");
        assert!(
            joined.contains("deadline") && joined.contains("extended"),
            "copy mechanism failed: {joined}"
        );
        assert!(joined.starts_with("now => @com.twitter.post"));
    }

    #[test]
    fn pretrained_lm_biases_toward_grammatical_programs() {
        let mut lm = ProgramLm::new();
        let programs: Vec<Vec<String>> = training_set().into_iter().map(|e| e.program).collect();
        lm.train(&programs);
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 2,
            ..ModelConfig::default()
        })
        .with_pretrained_lm(lm);
        parser.train(&training_set());
        let predicted = parser.predict(&stream("show me my dropbox stuff"));
        assert!(predicted.join(" ").contains("@com.dropbox.list_folder"));
    }

    #[test]
    fn untrained_parser_predicts_nothing_useful() {
        let parser = LuinetParser::new(ModelConfig::default());
        let predicted = parser.predict(&stream("show me my tweets"));
        // With no training data there is no program vocabulary, so the
        // output cannot contain any program structure.
        assert!(!predicted.iter().any(|t| t == "=>" || t.starts_with('@')));
        assert_eq!(parser.trained_examples(), 0);
        assert!(parser.vocab().is_empty());
    }

    #[test]
    fn topk_is_scored_ranked_and_deterministic() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 8,
            seed: 2,
            ..ModelConfig::default()
        });
        parser.train(&training_set());
        let sentence = stream("show me my gmail stuff");
        let top = parser.predict_topk(&sentence, 4);
        assert!(!top.is_empty() && top.len() <= 4);
        // The top candidate is pinned to the greedy decode; the beam
        // alternatives after it are ranked by normalized score.
        assert_eq!(top[0].tokens, parser.predict(&sentence));
        for pair in top[1..].windows(2) {
            assert!(pair[0].score >= pair[1].score, "alternatives out of order");
        }
        // No duplicate candidates.
        for (i, a) in top.iter().enumerate() {
            for b in &top[i + 1..] {
                assert_ne!(a.tokens, b.tokens, "duplicate candidate");
            }
        }
        // Rerunning the decode gives bit-identical candidates.
        assert_eq!(top, parser.predict_topk(&sentence, 4));
        // The top candidate is a plausible program for the sentence.
        assert!(top[0].tokens.join(" ").contains("@com.gmail.inbox"));
    }

    #[test]
    fn topk_batch_is_thread_invariant() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 4,
            ..ModelConfig::default()
        });
        parser.train(&training_set());
        let sentences: Vec<TokenStream> =
            training_set().iter().map(|e| e.sentence.clone()).collect();
        let sequential = parser.predict_topk_batch(&sentences, 3, 1);
        for threads in [2, 8] {
            assert_eq!(
                parser.predict_topk_batch(&sentences, 3, threads),
                sequential,
                "top-k batch differs at {threads} threads"
            );
        }
        let greedy = parser.predict_batch_with_threads(&sentences, 1);
        for threads in [2, 8] {
            assert_eq!(
                parser.predict_batch_with_threads(&sentences, threads),
                greedy,
                "greedy batch differs at {threads} threads"
            );
        }
    }

    #[test]
    fn batch_prediction_matches_sequential() {
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: 4,
            ..ModelConfig::default()
        });
        parser.train(&training_set());
        let sentences: Vec<TokenStream> =
            training_set().iter().map(|e| e.sentence.clone()).collect();
        let sequential: Vec<Vec<String>> = sentences.iter().map(|s| parser.predict(s)).collect();
        let batched = parser.predict_batch(&sentences);
        assert_eq!(sequential, batched);
    }
}
