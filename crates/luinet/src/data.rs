//! Training and evaluation examples for the parser.

use genie_nlp::intern::TokenStream;
use serde::{Deserialize, Serialize};

/// One (sentence, program) pair.
///
/// The sentence is an interned token stream (tokenizer granularity,
/// produced by `genie-nlp` — either the cached per-symbol expansion of a
/// synthesized utterance or `tokenize_into` for external text) in the
/// process-shared arena ([`genie_nlp::intern::shared`]); the program is in
/// NN syntax (`thingtalk::nn_syntax`). Keeping the sentence interned means
/// the pipeline hands examples to training and to the TSV writers without
/// ever materializing per-sentence `Vec<String>`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParserExample {
    /// The input sentence tokens.
    pub sentence: TokenStream,
    /// The target program tokens.
    pub program: Vec<String>,
}

impl ParserExample {
    /// Create an example from a token stream and program tokens.
    pub fn new(sentence: TokenStream, program: Vec<String>) -> Self {
        ParserExample { sentence, program }
    }

    /// Create an example by whitespace-splitting two strings (convenient in
    /// tests); the sentence words intern into the shared arena.
    pub fn from_strs(sentence: &str, program: &str) -> Self {
        ParserExample {
            sentence: genie_nlp::intern::shared().stream_of(sentence),
            program: program.split_whitespace().map(str::to_owned).collect(),
        }
    }

    /// The sentence rendered back to text (shared arena).
    pub fn sentence_text(&self) -> String {
        genie_nlp::intern::shared().render(&self.sentence)
    }

    /// Append this example's canonical TSV row
    /// (`sentence<TAB>program<NL>`, shared arena) to `out` — the **single**
    /// definition of the dataset's on-disk row format, used by both the
    /// sharded writers and the digest tooling so the digest can never
    /// disagree with the written bytes.
    pub fn render_tsv_row(&self, out: &mut String) {
        let interner = genie_nlp::intern::shared();
        for (i, symbol) in self.sentence.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(interner.resolve(symbol));
        }
        out.push('\t');
        for (i, token) in self.program.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(token);
        }
        out.push('\n');
    }
}

/// Resolve a sentence's symbols against the shared arena.
///
/// The arena is a process-static append-only structure with lock-free
/// resolve, so the returned `&'static str`s are plain table reads. The
/// decoder itself no longer materializes this view — it folds each sentence
/// once into a [`crate::features::SentenceIndex`] and works on symbols — but
/// evaluation and debugging still borrow words through here without copying
/// a byte.
pub fn resolve_sentence(sentence: &[genie_nlp::Symbol]) -> Vec<&'static str> {
    let interner: &'static genie_nlp::Interner = genie_nlp::intern::shared();
    sentence.iter().map(|&s| interner.resolve(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_strs_splits_on_whitespace() {
        let ex = ParserExample::from_strs("post hello", "now => @com.twitter.post ( )");
        assert_eq!(ex.sentence.len(), 2);
        assert_eq!(ex.program.len(), 5);
        assert_eq!(ex.sentence_text(), "post hello");
        assert_eq!(resolve_sentence(&ex.sentence), vec!["post", "hello"]);
    }
}
