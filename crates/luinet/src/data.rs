//! Training and evaluation examples for the parser.

use serde::{Deserialize, Serialize};

/// One (sentence, program) pair, both as token sequences.
///
/// The sentence is tokenized and argument-identified by `genie-nlp`; the
/// program is in NN syntax (`thingtalk::nn_syntax`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParserExample {
    /// The input sentence tokens.
    pub sentence: Vec<String>,
    /// The target program tokens.
    pub program: Vec<String>,
}

impl ParserExample {
    /// Create an example from token vectors.
    pub fn new(sentence: Vec<String>, program: Vec<String>) -> Self {
        ParserExample { sentence, program }
    }

    /// Create an example by whitespace-splitting two strings (convenient in
    /// tests).
    pub fn from_strs(sentence: &str, program: &str) -> Self {
        ParserExample {
            sentence: sentence.split_whitespace().map(str::to_owned).collect(),
            program: program.split_whitespace().map(str::to_owned).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_strs_splits_on_whitespace() {
        let ex = ParserExample::from_strs("post hello", "now => @com.twitter.post ( )");
        assert_eq!(ex.sentence.len(), 2);
        assert_eq!(ex.program.len(), 5);
    }
}
