//! Token vocabulary with stable integer ids.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The begin-of-sequence token.
pub const BOS: &str = "<s>";
/// The end-of-sequence token.
pub const EOS: &str = "</s>";
/// The unknown-token placeholder.
pub const UNK: &str = "<unk>";

/// A token vocabulary mapping tokens to dense ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {
    token_to_id: BTreeMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// An empty vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut vocab = Vocab::default();
        vocab.add(BOS);
        vocab.add(EOS);
        vocab.add(UNK);
        vocab
    }

    /// Add a token, returning its id (existing id if already present).
    pub fn add(&mut self, token: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len();
        self.token_to_id.insert(token.to_owned(), id);
        self.id_to_token.push(token.to_owned());
        id
    }

    /// Add every token of an iterator.
    pub fn add_all<'a>(&mut self, tokens: impl IntoIterator<Item = &'a String>) {
        for token in tokens {
            self.add(token);
        }
    }

    /// Look up a token, returning the `<unk>` id when absent.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id
            .get(token)
            .copied()
            .unwrap_or_else(|| self.token_to_id[UNK])
    }

    /// Whether the vocabulary contains the token.
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// The token for an id.
    pub fn token(&self, id: usize) -> &str {
        self.id_to_token.get(id).map(String::as_str).unwrap_or(UNK)
    }

    /// Number of tokens (including the special tokens).
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Whether the vocabulary holds only the special tokens.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= 3
    }

    /// Iterate over all tokens.
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.id_to_token.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut vocab = Vocab::new();
        let id = vocab.add("notify");
        assert_eq!(vocab.add("notify"), id);
        assert_eq!(vocab.id("notify"), id);
        assert_eq!(vocab.token(id), "notify");
        assert!(vocab.contains("notify"));
        assert!(!vocab.contains("missing"));
    }

    #[test]
    fn unknown_tokens_map_to_unk() {
        let vocab = Vocab::new();
        assert_eq!(vocab.token(vocab.id("never seen")), UNK);
    }

    #[test]
    fn special_tokens_are_present() {
        let vocab = Vocab::new();
        assert!(vocab.contains(BOS));
        assert!(vocab.contains(EOS));
        assert!(vocab.contains(UNK));
        assert_eq!(vocab.len(), 3);
        assert!(vocab.is_empty());
    }
}
