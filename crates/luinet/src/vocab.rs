//! Token vocabulary with stable integer ids, backed by the shared intern
//! arena: the vocabulary stores 4-byte [`Symbol`]s and resolves text only at
//! the lookup boundary.

use std::collections::HashMap;
use std::sync::OnceLock;

use genie_nlp::intern::{FnvState, Symbol};

/// The begin-of-sequence token.
pub const BOS: &str = "<s>";
/// The end-of-sequence token.
pub const EOS: &str = "</s>";
/// The unknown-token placeholder.
pub const UNK: &str = "<unk>";

/// The interned begin-of-sequence symbol (shared arena).
pub fn bos_symbol() -> Symbol {
    static SYMBOL: OnceLock<Symbol> = OnceLock::new();
    *SYMBOL.get_or_init(|| genie_nlp::intern::shared().intern(BOS))
}

/// The interned end-of-sequence symbol (shared arena).
pub fn eos_symbol() -> Symbol {
    static SYMBOL: OnceLock<Symbol> = OnceLock::new();
    *SYMBOL.get_or_init(|| genie_nlp::intern::shared().intern(EOS))
}

/// The interned unknown-token symbol (shared arena).
pub fn unk_symbol() -> Symbol {
    static SYMBOL: OnceLock<Symbol> = OnceLock::new();
    *SYMBOL.get_or_init(|| genie_nlp::intern::shared().intern(UNK))
}

/// A token vocabulary mapping tokens to dense ids.
///
/// Tokens are interned symbols; the string API interns/resolves through the
/// shared arena at the boundary, so growing the vocabulary from training
/// programs compares 4-byte ids instead of re-hashing token text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocab {
    token_to_id: HashMap<Symbol, usize, FnvState>,
    id_to_token: Vec<Symbol>,
}

impl Vocab {
    /// An empty vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut vocab = Vocab::default();
        vocab.add_symbol(bos_symbol());
        vocab.add_symbol(eos_symbol());
        vocab.add_symbol(unk_symbol());
        vocab
    }

    /// Add an interned token, returning its id (existing id if already
    /// present).
    pub fn add_symbol(&mut self, token: Symbol) -> usize {
        if let Some(&id) = self.token_to_id.get(&token) {
            return id;
        }
        let id = self.id_to_token.len();
        self.token_to_id.insert(token, id);
        self.id_to_token.push(token);
        id
    }

    /// Add a token by text, interning it into the shared arena.
    pub fn add(&mut self, token: &str) -> usize {
        self.add_symbol(genie_nlp::intern::shared().intern(token))
    }

    /// Add every token of an iterator.
    pub fn add_all<'a>(&mut self, tokens: impl IntoIterator<Item = &'a String>) {
        for token in tokens {
            self.add(token);
        }
    }

    /// Look up a token, returning the `<unk>` id when absent.
    pub fn id(&self, token: &str) -> usize {
        genie_nlp::intern::shared()
            .get(token)
            .and_then(|symbol| self.token_to_id.get(&symbol).copied())
            .unwrap_or_else(|| self.token_to_id[&unk_symbol()])
    }

    /// Whether the vocabulary contains the token.
    pub fn contains(&self, token: &str) -> bool {
        genie_nlp::intern::shared()
            .get(token)
            .is_some_and(|symbol| self.token_to_id.contains_key(&symbol))
    }

    /// Whether the vocabulary contains the interned token.
    pub fn contains_symbol(&self, token: Symbol) -> bool {
        self.token_to_id.contains_key(&token)
    }

    /// The token for an id.
    pub fn token(&self, id: usize) -> &'static str {
        let interner: &'static genie_nlp::Interner = genie_nlp::intern::shared();
        self.id_to_token
            .get(id)
            .map(|&symbol| interner.resolve(symbol))
            .unwrap_or(UNK)
    }

    /// Number of tokens (including the special tokens).
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Whether the vocabulary holds only the special tokens.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= 3
    }

    /// Iterate over all tokens in id order.
    pub fn tokens(&self) -> impl Iterator<Item = &'static str> + '_ {
        let interner: &'static genie_nlp::Interner = genie_nlp::intern::shared();
        self.id_to_token.iter().map(move |&s| interner.resolve(s))
    }

    /// The interned tokens in id order (snapshot serialization).
    pub(crate) fn symbols(&self) -> &[Symbol] {
        &self.id_to_token
    }

    /// Rebuild a vocabulary from its id-ordered symbols (snapshot load).
    /// The ids a token gets are its position in the iterator, so feeding
    /// back [`Vocab::symbols`] reproduces the original mapping exactly.
    pub(crate) fn from_symbols(symbols: impl IntoIterator<Item = Symbol>) -> Self {
        let mut vocab = Vocab::default();
        for symbol in symbols {
            vocab.add_symbol(symbol);
        }
        vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut vocab = Vocab::new();
        let id = vocab.add("notify");
        assert_eq!(vocab.add("notify"), id);
        assert_eq!(vocab.id("notify"), id);
        assert_eq!(vocab.token(id), "notify");
        assert!(vocab.contains("notify"));
        assert!(!vocab.contains("missing-from-vocab"));
    }

    #[test]
    fn unknown_tokens_map_to_unk() {
        let vocab = Vocab::new();
        assert_eq!(vocab.token(vocab.id("never seen")), UNK);
    }

    #[test]
    fn special_tokens_are_present() {
        let vocab = Vocab::new();
        assert!(vocab.contains(BOS));
        assert!(vocab.contains(EOS));
        assert!(vocab.contains(UNK));
        assert!(vocab.contains_symbol(eos_symbol()));
        assert_eq!(vocab.len(), 3);
        assert!(vocab.is_empty());
    }
}
