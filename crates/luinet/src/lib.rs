//! # LUInet — the semantic parser
//!
//! The paper's parser is MQAN, a seq2seq model with coattention,
//! self-attention and a pointer-generator decoder, augmented with a
//! pretrained ThingTalk decoder language model (§4). Training it requires a
//! GPU and a deep-learning framework; per the reproduction plan (DESIGN.md),
//! this crate substitutes a from-scratch, CPU-trainable parser that keeps
//! the properties the evaluation depends on:
//!
//! * it is trained on (sentence tokens, program tokens) pairs and decodes
//!   programs token by token, conditioned on the input sentence and the
//!   previously generated tokens ([`model::LuinetParser`]); besides the
//!   greedy decode it offers scored top-k candidates
//!   ([`model::LuinetParser::predict_topk`]: greedy top-1 plus a
//!   deterministic length-normalized beam), which is what the
//!   `genie::engine` serving facade consumes;
//! * it has a **copy mechanism**: at every step the decoder can either emit
//!   a token from the program vocabulary or copy a word from the input
//!   sentence, which is how unquoted free-form parameters are produced;
//! * it can be augmented with a **pretrained program language model**
//!   ([`lm::ProgramLm`]) trained on a large synthesized program corpus, the
//!   counterpart of §4.2's decoder LM (and the corresponding Table 3
//!   ablation);
//! * larger and more varied training sets improve it, so the Fig. 8 and
//!   Fig. 9 comparisons between training strategies are meaningful.
//!
//! The crate also provides the **Baseline** of §6 ([`baseline`]): a
//! Wang-et-al-style parser that matches the input against the canonical
//! sentences of the programs seen in training and returns the program of the
//! closest match.
//!
//! Both training and decoding run on interned 4-byte [`genie_nlp::Symbol`]s
//! end to end — split context/candidate feature hashing
//! ([`features::StepContext`]), per-sentence indexes
//! ([`features::SentenceIndex`]), compiled per-`prev1` candidate tables and
//! a shared-structure beam — and training is deterministically parallel
//! (fixed shard partition, iterative parameter mixing; see
//! [`model::ModelConfig::train_shards`]). Trained weights and every
//! prediction are byte-identical for any worker thread count.

pub mod baseline;
pub mod data;
pub mod features;
pub mod lm;
pub mod model;
pub mod snapshot;
pub mod vocab;

pub use baseline::BaselineParser;
pub use data::ParserExample;
pub use lm::ProgramLm;
pub use model::{LuinetParser, ModelConfig, ScoredPrediction};
pub use vocab::Vocab;
