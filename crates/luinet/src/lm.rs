//! The pretrained ThingTalk program language model (§4.2).
//!
//! The paper pretrains a recurrent LM on ~20M synthesized programs and feeds
//! its representation to the decoder, exposing the model "to a much larger
//! space of programs than the paraphrase set". Here the LM is an
//! interpolated bigram/trigram model over program tokens, trained on a large
//! synthesized program corpus and used both as an additional score in the
//! decoder and to propose candidate next tokens (which keeps decoding fast).

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::vocab::{BOS, EOS};

/// An interpolated bigram/trigram language model over program tokens.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgramLm {
    unigram: HashMap<String, f64>,
    bigram: HashMap<(String, String), f64>,
    trigram: HashMap<(String, String, String), f64>,
    successors: HashMap<String, BTreeSet<String>>,
    total_tokens: f64,
    trained_programs: usize,
}

impl ProgramLm {
    /// An empty (untrained) LM.
    pub fn new() -> Self {
        ProgramLm::default()
    }

    /// Train (or continue training) on a corpus of programs, each given as
    /// its token sequence.
    pub fn train<'a>(&mut self, programs: impl IntoIterator<Item = &'a Vec<String>>) {
        for program in programs {
            self.trained_programs += 1;
            let mut prev1 = BOS.to_owned();
            let mut prev2 = BOS.to_owned();
            for token in program.iter().chain(std::iter::once(&EOS.to_owned())) {
                *self.unigram.entry(token.clone()).or_default() += 1.0;
                *self
                    .bigram
                    .entry((prev1.clone(), token.clone()))
                    .or_default() += 1.0;
                *self
                    .trigram
                    .entry((prev2.clone(), prev1.clone(), token.clone()))
                    .or_default() += 1.0;
                self.successors
                    .entry(prev1.clone())
                    .or_default()
                    .insert(token.clone());
                self.total_tokens += 1.0;
                prev2 = prev1;
                prev1 = token.clone();
            }
        }
    }

    /// Number of programs the LM was trained on.
    pub fn trained_programs(&self) -> usize {
        self.trained_programs
    }

    /// The tokens that have been observed to follow `prev` in training.
    pub fn successors(&self, prev: &str) -> impl Iterator<Item = &str> {
        self.successors
            .get(prev)
            .into_iter()
            .flat_map(|set| set.iter().map(String::as_str))
    }

    /// Interpolated log-probability of `token` following `(prev2, prev1)`.
    pub fn log_prob(&self, prev2: &str, prev1: &str, token: &str) -> f64 {
        if self.total_tokens == 0.0 {
            return 0.0;
        }
        let vocab_size = self.unigram.len().max(1) as f64;
        let uni_count = self.unigram.get(token).copied().unwrap_or(0.0);
        let p_uni = (uni_count + 1.0) / (self.total_tokens + vocab_size);
        let prev1_count = self.unigram.get(prev1).copied().unwrap_or(0.0).max(1.0);
        let bi_count = self
            .bigram
            .get(&(prev1.to_owned(), token.to_owned()))
            .copied()
            .unwrap_or(0.0);
        let p_bi = (bi_count + 0.5) / (prev1_count + 0.5 * vocab_size);
        let bi_context = self
            .bigram
            .get(&(prev2.to_owned(), prev1.to_owned()))
            .copied()
            .unwrap_or(0.0)
            .max(1.0);
        let tri_count = self
            .trigram
            .get(&(prev2.to_owned(), prev1.to_owned(), token.to_owned()))
            .copied()
            .unwrap_or(0.0);
        let p_tri = (tri_count + 0.25) / (bi_context + 0.25 * vocab_size);
        (0.2 * p_uni + 0.4 * p_bi + 0.4 * p_tri).ln()
    }

    /// Perplexity of a program under the LM (lower is better).
    pub fn perplexity(&self, program: &[String]) -> f64 {
        if program.is_empty() {
            return f64::INFINITY;
        }
        let mut prev1 = BOS.to_owned();
        let mut prev2 = BOS.to_owned();
        let mut log_sum = 0.0;
        let mut count = 0usize;
        for token in program.iter().chain(std::iter::once(&EOS.to_owned())) {
            log_sum += self.log_prob(&prev2, &prev1, token);
            count += 1;
            prev2 = prev1;
            prev1 = token.clone();
        }
        (-log_sum / count as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn trained() -> ProgramLm {
        let corpus = vec![
            toks("now => @com.gmail.inbox ( ) => notify"),
            toks("now => @com.twitter.timeline ( ) => notify"),
            toks("now => @com.gmail.inbox ( ) => @com.slack.send ( )"),
            toks("monitor ( @com.gmail.inbox ( ) ) => notify"),
            toks("monitor ( @com.twitter.timeline ( ) ) => notify"),
        ];
        let mut lm = ProgramLm::new();
        lm.train(&corpus);
        lm
    }

    #[test]
    fn grammatical_continuations_score_higher() {
        let lm = trained();
        let p_arrow = lm.log_prob("<s>", "now", "=>");
        let p_garbage = lm.log_prob("<s>", "now", "notify");
        assert!(p_arrow > p_garbage);
    }

    #[test]
    fn successors_reflect_training_data() {
        let lm = trained();
        let next: Vec<&str> = lm.successors("now").collect();
        assert_eq!(next, vec!["=>"]);
        assert!(lm.successors("never-seen").next().is_none());
    }

    #[test]
    fn perplexity_prefers_seen_programs() {
        let lm = trained();
        let seen = toks("now => @com.gmail.inbox ( ) => notify");
        let garbled = toks("notify => ) ( now inbox");
        assert!(lm.perplexity(&seen) < lm.perplexity(&garbled));
    }

    #[test]
    fn untrained_lm_is_neutral() {
        let lm = ProgramLm::new();
        assert_eq!(lm.log_prob("a", "b", "c"), 0.0);
        assert_eq!(lm.trained_programs(), 0);
    }

    #[test]
    fn training_counts_programs() {
        let lm = trained();
        assert_eq!(lm.trained_programs(), 5);
    }
}
