//! The pretrained ThingTalk program language model (§4.2).
//!
//! The paper pretrains a recurrent LM on ~20M synthesized programs and feeds
//! its representation to the decoder, exposing the model "to a much larger
//! space of programs than the paraphrase set". Here the LM is an
//! interpolated bigram/trigram model over program tokens, trained on a large
//! synthesized program corpus and used both as an additional score in the
//! decoder and to propose candidate next tokens (which keeps decoding fast).
//!
//! Counts are keyed by interned [`Symbol`]s (shared arena): training interns
//! each program token once, and the decoder's per-candidate
//! [`ProgramLm::log_prob_sym`] lookups hash three 4-byte ids instead of
//! building owned `(String, String, String)` keys per score.

use std::collections::{HashMap, HashSet};

use genie_nlp::intern::{FnvState, Symbol};

use crate::vocab::bos_symbol;

/// An interpolated bigram/trigram language model over program tokens.
#[derive(Debug, Clone, Default)]
pub struct ProgramLm {
    pub(crate) unigram: HashMap<Symbol, f64, FnvState>,
    pub(crate) bigram: HashMap<(Symbol, Symbol), f64, FnvState>,
    pub(crate) trigram: HashMap<(Symbol, Symbol, Symbol), f64, FnvState>,
    /// Successor lists in first-observation order (deduplicated); consumers
    /// that need a process-history-independent order sort by resolved text
    /// (see [`ProgramLm::successors`]). The order is API-visible through
    /// [`ProgramLm::successor_symbols`], so [`crate::snapshot`] preserves
    /// each list verbatim.
    pub(crate) successors: HashMap<Symbol, Vec<Symbol>, FnvState>,
    /// Membership index over `successors` — dedup during training stays
    /// O(1) per token even for high-fanout contexts (the quote token
    /// precedes every distinct copied word). Derivable from `successors`;
    /// rebuilt, not serialized, on snapshot load.
    pub(crate) successor_seen: HashSet<(Symbol, Symbol), FnvState>,
    pub(crate) total_tokens: f64,
    pub(crate) trained_programs: usize,
}

impl ProgramLm {
    /// An empty (untrained) LM.
    pub fn new() -> Self {
        ProgramLm::default()
    }

    /// Train (or continue training) on a corpus of programs, each given as
    /// its token sequence. Tokens intern into the shared arena once, here;
    /// every later lookup is id-keyed.
    pub fn train<'a>(&mut self, programs: impl IntoIterator<Item = &'a Vec<String>>) {
        let interner = genie_nlp::intern::shared();
        let bos = bos_symbol();
        let eos = crate::vocab::eos_symbol();
        for program in programs {
            self.trained_programs += 1;
            let mut prev1 = bos;
            let mut prev2 = bos;
            for token in program
                .iter()
                .map(|t| interner.intern(t))
                .chain(std::iter::once(eos))
            {
                *self.unigram.entry(token).or_default() += 1.0;
                *self.bigram.entry((prev1, token)).or_default() += 1.0;
                *self.trigram.entry((prev2, prev1, token)).or_default() += 1.0;
                if self.successor_seen.insert((prev1, token)) {
                    self.successors.entry(prev1).or_default().push(token);
                }
                self.total_tokens += 1.0;
                prev2 = prev1;
                prev1 = token;
            }
        }
    }

    /// Number of programs the LM was trained on.
    pub fn trained_programs(&self) -> usize {
        self.trained_programs
    }

    /// The interned tokens observed to follow `prev`, in first-observation
    /// order (the hot-path view the decoder compiles its candidate tables
    /// from).
    pub fn successor_symbols(&self, prev: Symbol) -> &[Symbol] {
        self.successors.get(&prev).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every `(prev, successors)` entry of the transition table (arbitrary
    /// map order; callers impose their own).
    pub fn successor_entries(&self) -> impl Iterator<Item = (Symbol, &[Symbol])> {
        self.successors
            .iter()
            .map(|(&prev, successors)| (prev, successors.as_slice()))
    }

    /// The tokens that have been observed to follow `prev` in training,
    /// sorted by text (a process-history-independent order).
    pub fn successors(&self, prev: &str) -> impl Iterator<Item = &'static str> {
        let interner: &'static genie_nlp::Interner = genie_nlp::intern::shared();
        let mut out: Vec<&'static str> = interner
            .get(prev)
            .map(|symbol| {
                self.successor_symbols(symbol)
                    .iter()
                    .map(|&s| interner.resolve(s))
                    .collect()
            })
            .unwrap_or_default();
        out.sort_unstable();
        out.into_iter()
    }

    /// Interpolated log-probability of `token` following `(prev2, prev1)`,
    /// by text. Unseen text maps to zero counts, exactly like an interned
    /// token with no observations.
    pub fn log_prob(&self, prev2: &str, prev1: &str, token: &str) -> f64 {
        let interner = genie_nlp::intern::shared();
        self.log_prob_opt(
            interner.get(prev2),
            interner.get(prev1),
            interner.get(token),
        )
    }

    /// Interpolated log-probability of `token` following `(prev2, prev1)` —
    /// the decoder's per-candidate path: three map lookups on 4-byte ids.
    #[inline]
    pub fn log_prob_sym(&self, prev2: Symbol, prev1: Symbol, token: Symbol) -> f64 {
        self.log_prob_opt(Some(prev2), Some(prev1), Some(token))
    }

    fn log_prob_opt(
        &self,
        prev2: Option<Symbol>,
        prev1: Option<Symbol>,
        token: Option<Symbol>,
    ) -> f64 {
        if self.total_tokens == 0.0 {
            return 0.0;
        }
        let vocab_size = self.unigram.len().max(1) as f64;
        let uni = |s: Option<Symbol>| s.and_then(|s| self.unigram.get(&s)).copied().unwrap_or(0.0);
        let uni_count = uni(token);
        let p_uni = (uni_count + 1.0) / (self.total_tokens + vocab_size);
        let prev1_count = uni(prev1).max(1.0);
        let bi_count = prev1
            .zip(token)
            .and_then(|key| self.bigram.get(&key))
            .copied()
            .unwrap_or(0.0);
        let p_bi = (bi_count + 0.5) / (prev1_count + 0.5 * vocab_size);
        let bi_context = prev2
            .zip(prev1)
            .and_then(|key| self.bigram.get(&key))
            .copied()
            .unwrap_or(0.0)
            .max(1.0);
        let tri_count = match (prev2, prev1, token) {
            (Some(p2), Some(p1), Some(t)) => self.trigram.get(&(p2, p1, t)).copied().unwrap_or(0.0),
            _ => 0.0,
        };
        let p_tri = (tri_count + 0.25) / (bi_context + 0.25 * vocab_size);
        (0.2 * p_uni + 0.4 * p_bi + 0.4 * p_tri).ln()
    }

    /// Perplexity of a program under the LM (lower is better).
    pub fn perplexity(&self, program: &[String]) -> f64 {
        if program.is_empty() {
            return f64::INFINITY;
        }
        let interner = genie_nlp::intern::shared();
        let bos = Some(bos_symbol());
        let eos = Some(crate::vocab::eos_symbol());
        let mut prev1 = bos;
        let mut prev2 = bos;
        let mut log_sum = 0.0;
        let mut count = 0usize;
        for token in program
            .iter()
            .map(|t| interner.get(t))
            .chain(std::iter::once(eos))
        {
            log_sum += self.log_prob_opt(prev2, prev1, token);
            count += 1;
            prev2 = prev1;
            prev1 = token;
        }
        (-log_sum / count as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn trained() -> ProgramLm {
        let corpus = vec![
            toks("now => @com.gmail.inbox ( ) => notify"),
            toks("now => @com.twitter.timeline ( ) => notify"),
            toks("now => @com.gmail.inbox ( ) => @com.slack.send ( )"),
            toks("monitor ( @com.gmail.inbox ( ) ) => notify"),
            toks("monitor ( @com.twitter.timeline ( ) ) => notify"),
        ];
        let mut lm = ProgramLm::new();
        lm.train(&corpus);
        lm
    }

    #[test]
    fn grammatical_continuations_score_higher() {
        let lm = trained();
        let p_arrow = lm.log_prob("<s>", "now", "=>");
        let p_garbage = lm.log_prob("<s>", "now", "notify");
        assert!(p_arrow > p_garbage);
    }

    #[test]
    fn successors_reflect_training_data() {
        let lm = trained();
        let next: Vec<&str> = lm.successors("now").collect();
        assert_eq!(next, vec!["=>"]);
        assert!(lm.successors("never-seen-prev").next().is_none());
    }

    #[test]
    fn string_and_symbol_scores_agree() {
        let lm = trained();
        let interner = genie_nlp::intern::shared();
        for (prev2, prev1, token) in [
            ("<s>", "now", "=>"),
            ("now", "=>", "@com.gmail.inbox"),
            ("(", ")", "=>"),
        ] {
            assert_eq!(
                lm.log_prob(prev2, prev1, token),
                lm.log_prob_sym(
                    interner.intern(prev2),
                    interner.intern(prev1),
                    interner.intern(token)
                ),
            );
        }
    }

    #[test]
    fn perplexity_prefers_seen_programs() {
        let lm = trained();
        let seen = toks("now => @com.gmail.inbox ( ) => notify");
        let garbled = toks("notify => ) ( now inbox");
        assert!(lm.perplexity(&seen) < lm.perplexity(&garbled));
    }

    #[test]
    fn untrained_lm_is_neutral() {
        let lm = ProgramLm::new();
        assert_eq!(lm.log_prob("a", "b", "c"), 0.0);
        assert_eq!(lm.trained_programs(), 0);
    }

    #[test]
    fn training_counts_programs() {
        let lm = trained();
        assert_eq!(lm.trained_programs(), 5);
    }
}
