//! The Baseline parser (Wang et al. \[57\], as configured in §6 of the paper):
//! trained only on paraphrase data, with no synthesized data, no PPDB
//! augmentation and no parameter expansion.
//!
//! Operationally it is a paraphrase-matching parser: every training sentence
//! is indexed with its program, and at prediction time the input is matched
//! against the stored sentences with a TF-IDF-weighted token overlap; the
//! program of the closest sentence is returned. This mirrors "use the
//! paraphrases to train a machine learning model that can match input
//! sentences against possible canonical sentences".

use std::collections::HashMap;

use genie_nlp::intern::{FnvState, Symbol};

use crate::data::ParserExample;

/// The paraphrase-matching baseline parser.
///
/// Sentences are interned token streams, so the index keys document
/// frequencies by 4-byte [`Symbol`] and similarity scoring compares symbol
/// ids — no string hashing on the match path.
#[derive(Debug, Clone, Default)]
pub struct BaselineParser {
    examples: Vec<ParserExample>,
    document_frequency: HashMap<Symbol, f64, FnvState>,
}

impl BaselineParser {
    /// An empty baseline.
    pub fn new() -> Self {
        BaselineParser::default()
    }

    /// Index the training examples.
    pub fn train(&mut self, examples: &[ParserExample]) {
        for example in examples {
            let mut seen: Vec<Symbol> = Vec::new();
            for token in &example.sentence {
                if !seen.contains(&token) {
                    seen.push(token);
                    *self.document_frequency.entry(token).or_default() += 1.0;
                }
            }
            self.examples.push(example.clone());
        }
    }

    /// Number of indexed sentences.
    pub fn size(&self) -> usize {
        self.examples.len()
    }

    fn idf(&self, token: Symbol) -> f64 {
        let n = self.examples.len().max(1) as f64;
        let df = self.document_frequency.get(&token).copied().unwrap_or(0.0);
        ((n + 1.0) / (df + 1.0)).ln() + 1.0
    }

    fn similarity(&self, a: &[Symbol], b: &[Symbol]) -> f64 {
        let mut score = 0.0;
        let mut norm = 0.0;
        for &token in a {
            let w = self.idf(token);
            norm += w;
            if b.contains(&token) {
                score += w;
            }
        }
        for &token in b {
            norm += self.idf(token) * 0.25;
        }
        if norm == 0.0 {
            0.0
        } else {
            score / norm
        }
    }

    /// Predict the program for a sentence by nearest-neighbour matching.
    /// Returns an empty program when nothing has been indexed.
    pub fn predict(&self, sentence: &[Symbol]) -> Vec<String> {
        let mut best: Option<(&ParserExample, f64)> = None;
        for example in &self.examples {
            let score = self.similarity(sentence, &example.sentence);
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((example, score));
            }
        }
        best.map(|(e, _)| e.program.clone()).unwrap_or_default()
    }

    /// Predict programs for many sentences (borrowed or owned streams).
    pub fn predict_batch<S: AsRef<[Symbol]>>(&self, sentences: &[S]) -> Vec<Vec<String>> {
        sentences.iter().map(|s| self.predict(s.as_ref())).collect()
    }

    /// Exact-match accuracy on a set of examples.
    pub fn exact_match_accuracy(&self, examples: &[ParserExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|e| self.predict(&e.sentence) == e.program)
            .count();
        correct as f64 / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> BaselineParser {
        let mut baseline = BaselineParser::new();
        baseline.train(&[
            ParserExample::from_strs("show me my emails", "now => @com.gmail.inbox ( ) => notify"),
            ParserExample::from_strs(
                "show me my tweets",
                "now => @com.twitter.timeline ( ) => notify",
            ),
            ParserExample::from_strs("lock the front door", "now => @com.august.lock.lock ( )"),
        ]);
        baseline
    }

    #[test]
    fn exact_sentences_are_recalled() {
        let baseline = index();
        assert_eq!(baseline.size(), 3);
        let p = baseline.predict(&genie_nlp::intern::shared().stream_of("lock the front door"));
        assert_eq!(p.join(" "), "now => @com.august.lock.lock ( )");
    }

    #[test]
    fn near_paraphrases_match_the_right_program() {
        let baseline = index();
        let p =
            baseline.predict(&genie_nlp::intern::shared().stream_of("please show my emails now"));
        assert!(p.join(" ").contains("@com.gmail.inbox"));
    }

    #[test]
    fn rare_words_dominate_matching() {
        let baseline = index();
        // "tweets" is rare relative to "show me my", so it should pick the
        // twitter program even with extra overlap elsewhere.
        let p = baseline
            .predict(&genie_nlp::intern::shared().stream_of("show me all the tweets please"));
        assert!(p.join(" ").contains("@com.twitter.timeline"));
    }

    #[test]
    fn empty_baseline_returns_empty_program() {
        let baseline = BaselineParser::new();
        assert!(baseline
            .predict(&genie_nlp::intern::shared().stream_of("anything"))
            .is_empty());
        assert_eq!(baseline.exact_match_accuracy(&[]), 0.0);
    }
}
