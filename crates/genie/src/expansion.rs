//! Parameter replacement and PPDB augmentation (§3.3).
//!
//! "During training, it is important that the model sees many different
//! combinations of parameter values, so as not to overfit on specific values
//! present in the training set." Parameter expansion takes an example and
//! produces copies where the free-form string and entity parameters are
//! replaced — consistently in the utterance and in the program — with fresh
//! values from the parameter datasets. PPDB augmentation rewrites the
//! utterance only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use genie_nlp::intern::{Interner, Symbol, TokenStream};
use genie_nlp::ppdb::CompiledPpdb;
use genie_nlp::Ppdb;
use thingpedia::ParamDatasets;
use thingtalk::ast::Predicate;
use thingtalk::value::Value;

use crate::dataset::{Example, ExampleSource};
use crate::error::GenieResult;

/// Parameter expansion: produce up to `copies` variants of the example with
/// fresh parameter values. Only values whose rendered text occurs in the
/// utterance **as a whole-token run** are replaced (so sentence and program
/// stay aligned). This is deliberately stricter than the byte-substring
/// matching of the string engine it replaced: a value can no longer match
/// *inside* a larger word (where the old `str::replace` would silently
/// mangle the token, e.g. rewriting the `5` inside `15`). On the builtin
/// synthesis workloads the two criteria coincide — the CI digest matrix
/// pins the dataset bytes — but hand-built examples whose values abut
/// punctuation inside one token expand less aggressively than before.
///
/// # Errors
///
/// Propagates [`thingtalk::Error::MissingResource`] (as
/// [`crate::Error::ThingTalk`]) when the dataset registry lacks both the
/// routed dataset and its free-form fallback — impossible for
/// [`ParamDatasets::builtin`], reachable with hand-assembled registries.
pub fn expand_parameters(
    example: &Example,
    datasets: &ParamDatasets,
    copies: usize,
    rng: &mut StdRng,
) -> GenieResult<Vec<Example>> {
    let interner = genie_templates::intern::shared();
    let replaceable = replaceable_values(interner, example);
    if replaceable.is_empty() || copies == 0 {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for _ in 0..copies {
        let mut utterance = example.utterance.clone();
        let mut program = example.program.clone();
        let mut changed = false;
        for replace in &replaceable {
            let dataset = datasets.for_param(&thingtalk::types::Type::String, &replace.param)?;
            let new_text = dataset.sample(rng).to_owned();
            if new_text == replace.old_text {
                continue;
            }
            // Substitute the value's token run wherever it occurs (the old
            // byte-scanning `str::replace`); dataset values are pre-seeded,
            // so interning the fresh value is a lookup, not an allocation.
            let new_tokens = interner.stream_of(&new_text);
            if let Some(rewritten) = utterance.replace_seq(&replace.old_tokens, &new_tokens) {
                utterance = rewritten;
            }
            replace_in_program(&mut program, &replace.old_text, &new_text);
            changed = true;
        }
        if changed {
            out.push(Example::new(utterance, program, ExampleSource::Augmented));
        }
    }
    out.dedup_by(|a, b| a.utterance == b.utterance);
    Ok(out)
}

/// One replaceable constant: its parameter, its rendered text (for the
/// program-side rewrite) and its token run in the utterance.
struct ReplaceableValue {
    param: String,
    old_text: String,
    old_tokens: TokenStream,
}

/// The string/entity constants that appear as whole-token runs in the
/// utterance. A value whose words were never interned cannot occur in the
/// utterance stream, so the lookup never interns anything new.
fn replaceable_values(interner: &Interner, example: &Example) -> Vec<ReplaceableValue> {
    example
        .program
        .constants()
        .into_iter()
        .filter_map(|(name, value)| {
            let text = match &value {
                Value::String(s) if s.len() > 2 => s.as_str(),
                Value::Entity {
                    display: Some(d), ..
                } if d.len() > 2 => d.as_str(),
                _ => return None,
            };
            let tokens = existing_tokens(interner, text)?;
            example.utterance.find_seq(&tokens, 0)?;
            Some(ReplaceableValue {
                param: name,
                old_text: text.to_owned(),
                old_tokens: TokenStream::from_slice(&tokens),
            })
        })
        .collect()
}

/// The token run of `text` if every word is already interned.
fn existing_tokens(interner: &Interner, text: &str) -> Option<Vec<Symbol>> {
    text.split_whitespace()
        .map(|word| interner.get(word))
        .collect()
}

/// Replace a string/entity constant's text everywhere in a program.
fn replace_in_program(program: &mut thingtalk::Program, old_text: &str, new_text: &str) {
    for invocation in program.invocations_mut() {
        for param in &mut invocation.in_params {
            replace_in_value(&mut param.value, old_text, new_text);
        }
    }
    if let Some(query) = &mut program.query {
        replace_in_query(std::sync::Arc::make_mut(query), old_text, new_text);
    }
    if let thingtalk::Stream::Monitor { query, .. } = &mut program.stream {
        replace_in_query(std::sync::Arc::make_mut(query), old_text, new_text);
    }
    if let thingtalk::Stream::EdgeFilter { predicate, .. } = &mut program.stream {
        replace_in_predicate(predicate, old_text, new_text);
    }
}

fn replace_in_query(query: &mut thingtalk::Query, old_text: &str, new_text: &str) {
    match query {
        thingtalk::Query::Invocation(inv) => {
            for param in &mut inv.in_params {
                replace_in_value(&mut param.value, old_text, new_text);
            }
        }
        thingtalk::Query::Filter { query, predicate } => {
            replace_in_query(std::sync::Arc::make_mut(query), old_text, new_text);
            replace_in_predicate(predicate, old_text, new_text);
        }
        thingtalk::Query::Join { lhs, rhs, .. } => {
            replace_in_query(std::sync::Arc::make_mut(lhs), old_text, new_text);
            replace_in_query(std::sync::Arc::make_mut(rhs), old_text, new_text);
        }
        thingtalk::Query::Aggregation { query, .. } => {
            replace_in_query(std::sync::Arc::make_mut(query), old_text, new_text)
        }
    }
}

fn replace_in_predicate(predicate: &mut Predicate, old_text: &str, new_text: &str) {
    match predicate {
        Predicate::Not(inner) => replace_in_predicate(inner, old_text, new_text),
        Predicate::And(items) | Predicate::Or(items) => {
            for item in items {
                replace_in_predicate(item, old_text, new_text);
            }
        }
        Predicate::Atom { value, .. } => replace_in_value(value, old_text, new_text),
        Predicate::External {
            invocation,
            predicate,
        } => {
            for param in &mut invocation.in_params {
                replace_in_value(&mut param.value, old_text, new_text);
            }
            replace_in_predicate(predicate, old_text, new_text);
        }
        _ => {}
    }
}

fn replace_in_value(value: &mut Value, old_text: &str, new_text: &str) {
    match value {
        Value::String(s) if s == old_text => *s = new_text.to_owned(),
        Value::Entity { value, display, .. } => {
            if display.as_deref() == Some(old_text) {
                *display = Some(new_text.to_owned());
            }
            if value == old_text {
                *value = new_text.to_owned();
            }
        }
        _ => {}
    }
}

/// PPDB augmentation: rewrite the utterance with meaning-preserving lexical
/// substitutions, keeping the program unchanged.
pub fn augment_ppdb(
    example: &Example,
    ppdb: &CompiledPpdb,
    copies: usize,
    rng: &mut StdRng,
) -> Vec<Example> {
    ppdb.augment(&example.utterance, copies, rng)
        .into_iter()
        .map(|utterance| Example::new(utterance, example.program.clone(), ExampleSource::Augmented))
        .collect()
}

/// Convenience: expand a whole dataset, with a per-example expansion factor
/// chosen by the caller (the paper uses 30× for paraphrases with string
/// parameters, 10× for other paraphrases, 4× for synthesized primitives and
/// 1× otherwise).
///
/// Examples are expanded in parallel over `threads` workers (`0` = all
/// cores, `1` = inline); each draws from its own RNG stream
/// ([`genie_parallel::item_seed`]), so the output is deterministic and
/// independent of the worker count. The first per-example error (see
/// [`expand_parameters`]) aborts the whole expansion.
pub fn expand_dataset(
    examples: &[Example],
    datasets: &ParamDatasets,
    factor: impl Fn(&Example) -> usize + Sync,
    seed: u64,
    threads: usize,
) -> GenieResult<Vec<Example>> {
    let ppdb = Ppdb::builtin().compile(genie_templates::intern::shared());
    let expanded = genie_parallel::par_map(
        threads,
        examples,
        |index, example| -> GenieResult<Vec<Example>> {
            let mut rng = StdRng::seed_from_u64(genie_parallel::item_seed(seed, index));
            let copies = factor(example);
            let mut out = expand_parameters(example, datasets, copies, &mut rng)?;
            // A small probability of additionally applying a PPDB rewrite keeps
            // the augmented set lexically varied without exploding its size.
            if rng.gen_bool(0.3) {
                out.extend(augment_ppdb(example, &ppdb, 1, &mut rng));
            }
            Ok(out)
        },
    );
    let mut out = Vec::new();
    for batch in expanded {
        out.extend(batch?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    fn example() -> Example {
        Example::new(
            "post funny cat on facebook",
            parse_program("now => @com.facebook.post(status = \"funny cat\")").unwrap(),
            ExampleSource::Synthesized,
        )
    }

    #[test]
    fn expansion_replaces_utterance_and_program_consistently() {
        let datasets = ParamDatasets::builtin();
        let mut rng = StdRng::seed_from_u64(3);
        let expanded = expand_parameters(&example(), &datasets, 5, &mut rng).unwrap();
        assert!(!expanded.is_empty());
        for variant in &expanded {
            assert_ne!(variant.utterance, example().utterance);
            let constants = variant.program.constants();
            let (_, value) = &constants[0];
            let text = value.as_text().unwrap();
            let rendered = variant.text();
            assert!(
                rendered.contains(&text),
                "utterance `{rendered}` does not contain the new value `{text}`"
            );
            assert_eq!(variant.source, ExampleSource::Augmented);
        }
    }

    #[test]
    fn examples_without_string_constants_are_not_expanded() {
        let datasets = ParamDatasets::builtin();
        let mut rng = StdRng::seed_from_u64(3);
        let plain = Example::new(
            "show me my emails",
            parse_program("now => @com.gmail.inbox() => notify").unwrap(),
            ExampleSource::Synthesized,
        );
        assert!(expand_parameters(&plain, &datasets, 5, &mut rng)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn ppdb_augmentation_keeps_the_program() {
        let ppdb = Ppdb::builtin().compile(genie_templates::intern::shared());
        let mut rng = StdRng::seed_from_u64(4);
        let augmented = augment_ppdb(&example(), &ppdb, 3, &mut rng);
        assert!(!augmented.is_empty());
        for variant in &augmented {
            assert_eq!(variant.program, example().program);
            assert_ne!(variant.utterance, example().utterance);
        }
    }

    #[test]
    fn expand_dataset_respects_the_factor() {
        let datasets = ParamDatasets::builtin();
        let examples = vec![example()];
        let large = expand_dataset(&examples, &datasets, |_| 10, 5, 0).unwrap();
        let small = expand_dataset(&examples, &datasets, |_| 1, 5, 0).unwrap();
        assert!(large.len() > small.len());
        let none = expand_dataset(&examples, &datasets, |_| 0, 5, 0).unwrap();
        assert!(none.len() <= 1);
    }
}
