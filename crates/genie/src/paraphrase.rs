//! The crowdsourced-paraphrasing substitute (§3.2).
//!
//! Genie asks Mechanical Turk workers to rephrase synthesized sentences "in
//! more natural sentences"; workers see each sentence twice and provide two
//! paraphrases, and some answers are wrong (workers "paraphrase sentences
//! incorrectly or just make minor modifications"). The simulator reproduces
//! that behaviour with rule- and lexicon-based rewriting plus a configurable
//! error model, and the same validation heuristics Genie applies to discard
//! obvious mistakes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use genie_nlp::metrics::{edit_distance, jaccard_similarity};
use genie_nlp::{tokenize, Ppdb};

use crate::dataset::{Example, ExampleSource};

/// Configuration of the paraphrase simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParaphraseConfig {
    /// Paraphrases requested per synthesized sentence (the paper asks each
    /// worker for two).
    pub per_sentence: usize,
    /// Probability that a produced paraphrase is wrong (lazy or confused
    /// worker): under-specified or copied almost verbatim.
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParaphraseConfig {
    fn default() -> Self {
        ParaphraseConfig {
            per_sentence: 2,
            error_rate: 0.08,
            seed: 0,
        }
    }
}

impl ParaphraseConfig {
    /// Start a validating builder seeded with the default configuration.
    pub fn builder() -> ParaphraseConfigBuilder {
        ParaphraseConfigBuilder {
            config: ParaphraseConfig::default(),
        }
    }

    /// Check an already-assembled configuration. An out-of-range
    /// `error_rate` would otherwise panic deep inside the worker simulation
    /// (`Rng::gen_bool` requires a probability in `[0, 1]`).
    pub fn validate(&self) -> Result<(), genie_templates::ConfigError> {
        if !self.error_rate.is_finite() || !(0.0..=1.0).contains(&self.error_rate) {
            return Err(genie_templates::ConfigError::new(
                "error_rate",
                format!("must be a probability in [0, 1], got {}", self.error_rate),
            ));
        }
        Ok(())
    }
}

/// Validating builder for [`ParaphraseConfig`].
#[derive(Debug, Clone)]
pub struct ParaphraseConfigBuilder {
    config: ParaphraseConfig,
}

impl ParaphraseConfigBuilder {
    /// Paraphrases requested per synthesized sentence (`0` disables).
    pub fn per_sentence(mut self, value: usize) -> Self {
        self.config.per_sentence = value;
        self
    }

    /// Probability that a produced paraphrase is wrong.
    pub fn error_rate(mut self, value: f64) -> Self {
        self.config.error_rate = value;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, value: u64) -> Self {
        self.config.seed = value;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<ParaphraseConfig, genie_templates::ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Simulates crowdworkers paraphrasing synthesized sentences.
#[derive(Debug, Clone)]
pub struct ParaphraseSimulator {
    ppdb: Ppdb,
    config: ParaphraseConfig,
}

const FILLERS: &[&str] = &[
    "please",
    "hey",
    "ok",
    "now",
    "for me",
    "if you can",
    "when you get a chance",
];
const PREFIXES: &[&str] = &[
    "i want you to",
    "i would like you to",
    "could you",
    "can you",
    "make sure to",
    "i need you to",
];

impl ParaphraseSimulator {
    /// Create a simulator.
    pub fn new(config: ParaphraseConfig) -> Self {
        ParaphraseSimulator {
            ppdb: Ppdb::builtin(),
            config,
        }
    }

    /// Paraphrase a batch of synthesized examples on all available cores,
    /// keeping only the paraphrases that pass the validation heuristics.
    pub fn paraphrase_all(&self, examples: &[Example]) -> Vec<Example> {
        self.paraphrase_all_with_threads(examples, 0)
    }

    /// Like [`ParaphraseSimulator::paraphrase_all`], with an explicit worker
    /// count (`0` = all cores, `1` = inline). Each example draws from a
    /// per-example RNG stream ([`genie_parallel::item_seed`]), so the output
    /// is deterministic and independent of the thread count.
    pub fn paraphrase_all_with_threads(
        &self,
        examples: &[Example],
        threads: usize,
    ) -> Vec<Example> {
        genie_parallel::par_flat_map(threads, examples, |index, example| {
            let mut rng = StdRng::seed_from_u64(genie_parallel::item_seed(self.config.seed, index));
            self.paraphrase(example, &mut rng)
        })
    }

    /// Paraphrase one example.
    pub fn paraphrase(&self, example: &Example, rng: &mut StdRng) -> Vec<Example> {
        let mut out = Vec::new();
        for _ in 0..self.config.per_sentence {
            let candidate = if rng.gen_bool(self.config.error_rate) {
                self.erroneous_rewrite(&example.utterance, rng)
            } else {
                self.faithful_rewrite(&example.utterance, rng)
            };
            if self.validate(&example.utterance, &candidate) {
                out.push(Example::new(
                    candidate,
                    example.program.clone(),
                    ExampleSource::Paraphrase,
                ));
            }
        }
        out
    }

    /// A faithful rewrite: lexical substitutions, clause reordering, filler
    /// insertion or removal.
    fn faithful_rewrite(&self, utterance: &str, rng: &mut StdRng) -> String {
        let mut sentence = utterance.to_owned();
        // 1–3 lexicon substitutions.
        let substitutions = rng.gen_range(1..=3);
        for _ in 0..substitutions {
            if let Some(next) = self.ppdb.augment_once(&sentence, rng) {
                sentence = next;
            }
        }
        // Clause reordering for when-commands: "when X , Y" <-> "Y when X".
        if rng.gen_bool(0.5) {
            sentence = reorder_clauses(&sentence);
        }
        // Politeness prefix or filler.
        match rng.gen_range(0..4) {
            0 => {
                let prefix = PREFIXES.choose(rng).expect("nonempty");
                sentence = format!("{prefix} {sentence}");
            }
            1 => {
                let filler = FILLERS.choose(rng).expect("nonempty");
                sentence = format!("{sentence} {filler}");
            }
            2 => {
                // Drop a leading politeness word if present.
                for lead in ["please ", "get ", "show me "] {
                    if let Some(rest) = sentence.strip_prefix(lead) {
                        if rest.split_whitespace().count() >= 3 {
                            sentence = rest.to_owned();
                        }
                        break;
                    }
                }
            }
            _ => {}
        }
        sentence
    }

    /// An erroneous rewrite: either near-verbatim (lazy worker) or heavily
    /// truncated (worker dropped the second clause).
    fn erroneous_rewrite(&self, utterance: &str, rng: &mut StdRng) -> String {
        if rng.gen_bool(0.5) {
            // Minimal modification (will be dropped by validation).
            format!("{utterance} .")
        } else {
            let words: Vec<&str> = utterance.split_whitespace().collect();
            let keep = (words.len() / 2).max(1);
            words[..keep].join(" ")
        }
    }

    /// The validation heuristics of §3.2: discard answers that are too
    /// similar to the synthesized sentence (no real paraphrase), too short
    /// relative to it (information lost), or empty.
    pub fn validate(&self, original: &str, paraphrase: &str) -> bool {
        let original_tokens = tokenize(original);
        let paraphrase_tokens = tokenize(paraphrase);
        if paraphrase_tokens.len() < 3 {
            return false;
        }
        if paraphrase_tokens.len() * 2 < original_tokens.len() {
            return false;
        }
        let distance = edit_distance(&original_tokens, &paraphrase_tokens);
        if distance <= 1 {
            return false;
        }
        // Completely unrelated answers are also rejected.
        jaccard_similarity(&original_tokens, &paraphrase_tokens) >= 0.15
    }
}

/// Swap "when X , Y" into "Y when X" and vice versa.
fn reorder_clauses(sentence: &str) -> String {
    if let Some(rest) = sentence.strip_prefix("when ") {
        if let Some((condition, action)) = rest.split_once(" , ") {
            if !condition.is_empty() && !action.is_empty() {
                return format!("{action} when {condition}");
            }
        }
    } else if let Some((action, condition)) = sentence.split_once(" when ") {
        if !action.is_empty() && !condition.is_empty() && !action.starts_with("when") {
            return format!("when {condition} , {action}");
        }
    }
    sentence.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    fn example() -> Example {
        Example::new(
            "when i receive an email , send a slack message to #general saying check your inbox",
            parse_program(
                "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#general\"^^tt:slack_channel, message = \"check your inbox\")",
            )
            .unwrap(),
            ExampleSource::Synthesized,
        )
    }

    #[test]
    fn paraphrases_differ_but_keep_the_program() {
        let simulator = ParaphraseSimulator::new(ParaphraseConfig {
            per_sentence: 4,
            error_rate: 0.0,
            seed: 1,
        });
        let paraphrases = simulator.paraphrase_all(&[example()]);
        assert!(!paraphrases.is_empty());
        for p in &paraphrases {
            assert_eq!(p.program, example().program);
            assert_eq!(p.source, ExampleSource::Paraphrase);
            assert_ne!(p.utterance, example().utterance);
        }
    }

    #[test]
    fn clause_reordering_roundtrips() {
        let forward = reorder_clauses("when it rains , bring an umbrella");
        assert_eq!(forward, "bring an umbrella when it rains");
        let back = reorder_clauses(&forward);
        assert_eq!(back, "when it rains , bring an umbrella");
        assert_eq!(reorder_clauses("lock the door"), "lock the door");
    }

    #[test]
    fn validation_rejects_lazy_and_truncated_answers() {
        let simulator = ParaphraseSimulator::new(ParaphraseConfig::default());
        let original = "when i receive an email , send a slack message";
        assert!(!simulator.validate(original, original));
        assert!(!simulator.validate(original, "when i receive an email , send a slack message ."));
        assert!(!simulator.validate(original, "when i"));
        assert!(!simulator.validate(original, "play some jazz music loudly tonight"));
        assert!(simulator.validate(
            original,
            "send a slack message whenever an email arrives for me"
        ));
    }

    #[test]
    fn error_rate_reduces_the_yield() {
        let clean = ParaphraseSimulator::new(ParaphraseConfig {
            per_sentence: 3,
            error_rate: 0.0,
            seed: 2,
        });
        let noisy = ParaphraseSimulator::new(ParaphraseConfig {
            per_sentence: 3,
            error_rate: 0.9,
            seed: 2,
        });
        let examples = vec![example(); 20];
        let clean_count = clean.paraphrase_all(&examples).len();
        let noisy_count = noisy.paraphrase_all(&examples).len();
        assert!(
            clean_count > noisy_count,
            "clean {clean_count} vs noisy {noisy_count}"
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let config = ParaphraseConfig {
            per_sentence: 2,
            error_rate: 0.1,
            seed: 9,
        };
        let a = ParaphraseSimulator::new(config).paraphrase_all(&[example()]);
        let b = ParaphraseSimulator::new(config).paraphrase_all(&[example()]);
        assert_eq!(a, b);
    }
}
