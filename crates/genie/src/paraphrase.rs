//! The crowdsourced-paraphrasing substitute (§3.2).
//!
//! Genie asks Mechanical Turk workers to rephrase synthesized sentences "in
//! more natural sentences"; workers see each sentence twice and provide two
//! paraphrases, and some answers are wrong (workers "paraphrase sentences
//! incorrectly or just make minor modifications"). The simulator reproduces
//! that behaviour with rule- and lexicon-based rewriting plus a configurable
//! error model, and the same validation heuristics Genie applies to discard
//! obvious mistakes.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use genie_nlp::intern::{Interner, Symbol, TokenStream};
use genie_nlp::metrics::{edit_distance, jaccard_similarity};
use genie_nlp::ppdb::CompiledPpdb;
use genie_nlp::{tokenize, Ppdb};

use crate::dataset::{Example, ExampleSource};

/// Configuration of the paraphrase simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParaphraseConfig {
    /// Paraphrases requested per synthesized sentence (the paper asks each
    /// worker for two).
    pub per_sentence: usize,
    /// Probability that a produced paraphrase is wrong (lazy or confused
    /// worker): under-specified or copied almost verbatim.
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParaphraseConfig {
    fn default() -> Self {
        ParaphraseConfig {
            per_sentence: 2,
            error_rate: 0.08,
            seed: 0,
        }
    }
}

impl ParaphraseConfig {
    /// Start a validating builder seeded with the default configuration.
    pub fn builder() -> ParaphraseConfigBuilder {
        ParaphraseConfigBuilder {
            config: ParaphraseConfig::default(),
        }
    }

    /// Check an already-assembled configuration. An out-of-range
    /// `error_rate` would otherwise panic deep inside the worker simulation
    /// (`Rng::gen_bool` requires a probability in `[0, 1]`).
    pub fn validate(&self) -> Result<(), genie_templates::ConfigError> {
        if !self.error_rate.is_finite() || !(0.0..=1.0).contains(&self.error_rate) {
            return Err(genie_templates::ConfigError::new(
                "error_rate",
                format!("must be a probability in [0, 1], got {}", self.error_rate),
            ));
        }
        Ok(())
    }
}

/// Validating builder for [`ParaphraseConfig`].
#[derive(Debug, Clone)]
pub struct ParaphraseConfigBuilder {
    config: ParaphraseConfig,
}

impl ParaphraseConfigBuilder {
    /// Paraphrases requested per synthesized sentence (`0` disables).
    pub fn per_sentence(mut self, value: usize) -> Self {
        self.config.per_sentence = value;
        self
    }

    /// Probability that a produced paraphrase is wrong.
    pub fn error_rate(mut self, value: f64) -> Self {
        self.config.error_rate = value;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, value: u64) -> Self {
        self.config.seed = value;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<ParaphraseConfig, genie_templates::ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Simulates crowdworkers paraphrasing synthesized sentences.
///
/// All rewriting happens on interned token streams: the PPDB lexicon is
/// compiled against the shared arena ([`Ppdb::compile`]), clause
/// reordering and prefix/filler edits splice symbol runs, and validation
/// compares cached tokenizer expansions — the per-candidate `String`
/// chains and re-tokenization of the old simulator are gone. Rewrites are
/// draw-for-draw identical to the string implementation.
pub struct ParaphraseSimulator {
    ppdb: CompiledPpdb,
    config: ParaphraseConfig,
    interner: Arc<Interner>,
    fillers: Vec<TokenStream>,
    prefixes: Vec<TokenStream>,
    /// The droppable politeness leads, in trial order.
    leads: Vec<TokenStream>,
    sym_when: Symbol,
    sym_comma: Symbol,
    sym_dot: Symbol,
}

const FILLERS: &[&str] = &[
    "please",
    "hey",
    "ok",
    "now",
    "for me",
    "if you can",
    "when you get a chance",
];
const PREFIXES: &[&str] = &[
    "i want you to",
    "i would like you to",
    "could you",
    "can you",
    "make sure to",
    "i need you to",
];

impl ParaphraseSimulator {
    /// Create a simulator (compiles the lexicon against the shared arena).
    pub fn new(config: ParaphraseConfig) -> Self {
        let interner = genie_templates::intern::shared().clone();
        let compile_all =
            |phrases: &[&str]| phrases.iter().map(|p| interner.stream_of(p)).collect();
        ParaphraseSimulator {
            ppdb: Ppdb::builtin().compile(&interner),
            config,
            fillers: compile_all(FILLERS),
            prefixes: compile_all(PREFIXES),
            leads: compile_all(&["please", "get", "show me"]),
            sym_when: interner.intern("when"),
            sym_comma: interner.intern(","),
            sym_dot: interner.intern("."),
            interner,
        }
    }

    /// Paraphrase a batch of synthesized examples on all available cores,
    /// keeping only the paraphrases that pass the validation heuristics.
    pub fn paraphrase_all(&self, examples: &[Example]) -> Vec<Example> {
        self.paraphrase_all_with_threads(examples, 0)
    }

    /// Like [`ParaphraseSimulator::paraphrase_all`], with an explicit worker
    /// count (`0` = all cores, `1` = inline). Each example draws from a
    /// per-example RNG stream ([`genie_parallel::item_seed`]), so the output
    /// is deterministic and independent of the thread count.
    pub fn paraphrase_all_with_threads(
        &self,
        examples: &[Example],
        threads: usize,
    ) -> Vec<Example> {
        genie_parallel::par_flat_map(threads, examples, |index, example| {
            let mut rng = StdRng::seed_from_u64(genie_parallel::item_seed(self.config.seed, index));
            self.paraphrase(example, &mut rng)
        })
    }

    /// Paraphrase one example.
    pub fn paraphrase(&self, example: &Example, rng: &mut StdRng) -> Vec<Example> {
        let mut out = Vec::new();
        for _ in 0..self.config.per_sentence {
            let candidate = if rng.gen_bool(self.config.error_rate) {
                self.erroneous_rewrite(&example.utterance, rng)
            } else {
                self.faithful_rewrite(&example.utterance, rng)
            };
            if self.validate_streams(&example.utterance, &candidate) {
                out.push(Example::new(
                    candidate,
                    example.program.clone(),
                    ExampleSource::Paraphrase,
                ));
            }
        }
        out
    }

    /// A faithful rewrite: lexical substitutions, clause reordering, filler
    /// insertion or removal.
    fn faithful_rewrite(&self, utterance: &TokenStream, rng: &mut StdRng) -> TokenStream {
        let mut sentence = utterance.clone();
        // 1–3 lexicon substitutions.
        let substitutions = rng.gen_range(1..=3);
        for _ in 0..substitutions {
            if let Some(next) = self.ppdb.augment_once(&sentence, rng) {
                sentence = next;
            }
        }
        // Clause reordering for when-commands: "when X , Y" <-> "Y when X".
        if rng.gen_bool(0.5) {
            sentence = self.reorder_clauses(&sentence);
        }
        // Politeness prefix or filler.
        match rng.gen_range(0..4) {
            0 => {
                let prefix = self.prefixes.choose(rng).expect("nonempty");
                let mut next = prefix.clone();
                next.extend_from_slice(&sentence);
                sentence = next;
            }
            1 => {
                let filler = self.fillers.choose(rng).expect("nonempty");
                sentence.extend_from_slice(filler);
            }
            2 => {
                // Drop a leading politeness word if present (first matching
                // lead only, like the `strip_prefix` loop it replaces).
                for lead in &self.leads {
                    if sentence.len() > lead.len() && sentence.starts_with(lead.as_slice()) {
                        if sentence.len() - lead.len() >= 3 {
                            sentence = TokenStream::from_slice(&sentence[lead.len()..]);
                        }
                        break;
                    }
                }
            }
            _ => {}
        }
        sentence
    }

    /// An erroneous rewrite: either near-verbatim (lazy worker) or heavily
    /// truncated (worker dropped the second clause).
    fn erroneous_rewrite(&self, utterance: &TokenStream, rng: &mut StdRng) -> TokenStream {
        if rng.gen_bool(0.5) {
            // Minimal modification (will be dropped by validation).
            let mut out = utterance.clone();
            out.push(self.sym_dot);
            out
        } else {
            let keep = (utterance.len() / 2).max(1);
            let mut out = utterance.clone();
            out.truncate(keep);
            out
        }
    }

    /// Swap "when X , Y" into "Y when X" and vice versa, splicing token
    /// runs around the first "," / "when" fragment.
    fn reorder_clauses(&self, sentence: &TokenStream) -> TokenStream {
        let tokens = sentence.as_slice();
        match tokens {
            [first, rest @ ..] if *first == self.sym_when && !rest.is_empty() => {
                if let Some(comma) = rest.iter().position(|&t| t == self.sym_comma) {
                    let (condition, action) = (&rest[..comma], &rest[comma + 1..]);
                    if !condition.is_empty() && !action.is_empty() {
                        let mut out = TokenStream::with_capacity(tokens.len() - 1);
                        out.extend_from_slice(action);
                        out.push(self.sym_when);
                        out.extend_from_slice(condition);
                        return out;
                    }
                }
                sentence.clone()
            }
            _ => {
                if let Some(at) = tokens.iter().position(|&t| t == self.sym_when) {
                    let (action, condition) = (&tokens[..at], &tokens[at + 1..]);
                    if !action.is_empty()
                        && !condition.is_empty()
                        && !self.interner.resolve(action[0]).starts_with("when")
                    {
                        let mut out = TokenStream::with_capacity(tokens.len() + 1);
                        out.push(self.sym_when);
                        out.extend_from_slice(condition);
                        out.push(self.sym_comma);
                        out.extend_from_slice(action);
                        return out;
                    }
                }
                sentence.clone()
            }
        }
    }

    /// The validation heuristics of §3.2 over interned streams: the cached
    /// per-symbol tokenizer expansions stand in for re-tokenizing rendered
    /// text, and symbol comparisons stand in for string comparisons (the
    /// arena is injective, so the decisions are identical).
    pub fn validate_streams(&self, original: &TokenStream, paraphrase: &TokenStream) -> bool {
        validate_tokens(
            &self.interner.tokenized(original),
            &self.interner.tokenized(paraphrase),
        )
    }

    /// The validation heuristics over rendered text (for external callers;
    /// same decision procedure as [`ParaphraseSimulator::validate_streams`]
    /// — both delegate to one token-level implementation).
    pub fn validate(&self, original: &str, paraphrase: &str) -> bool {
        validate_tokens(&tokenize(original), &tokenize(paraphrase))
    }
}

/// The §3.2 validation heuristics over tokenized sentences (token strings
/// or interned symbols — token equality is all they use): discard answers
/// that are too short, too similar to the synthesized sentence (no real
/// paraphrase), or completely unrelated.
fn validate_tokens<T: PartialEq + Ord>(original: &[T], paraphrase: &[T]) -> bool {
    if paraphrase.len() < 3 {
        return false;
    }
    if paraphrase.len() * 2 < original.len() {
        return false;
    }
    if edit_distance(original, paraphrase) <= 1 {
        return false;
    }
    jaccard_similarity(original, paraphrase) >= 0.15
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    fn example() -> Example {
        Example::new(
            "when i receive an email , send a slack message to #general saying check your inbox",
            parse_program(
                "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#general\"^^tt:slack_channel, message = \"check your inbox\")",
            )
            .unwrap(),
            ExampleSource::Synthesized,
        )
    }

    #[test]
    fn paraphrases_differ_but_keep_the_program() {
        let simulator = ParaphraseSimulator::new(ParaphraseConfig {
            per_sentence: 4,
            error_rate: 0.0,
            seed: 1,
        });
        let paraphrases = simulator.paraphrase_all(&[example()]);
        assert!(!paraphrases.is_empty());
        for p in &paraphrases {
            assert_eq!(p.program, example().program);
            assert_eq!(p.source, ExampleSource::Paraphrase);
            assert_ne!(p.utterance, example().utterance);
        }
    }

    #[test]
    fn clause_reordering_roundtrips() {
        let simulator = ParaphraseSimulator::new(ParaphraseConfig::default());
        let interner = genie_templates::intern::shared();
        let reorder = |text: &str| {
            let stream = interner.stream_of(text);
            interner.render(&simulator.reorder_clauses(&stream))
        };
        let forward = reorder("when it rains , bring an umbrella");
        assert_eq!(forward, "bring an umbrella when it rains");
        assert_eq!(reorder(&forward), "when it rains , bring an umbrella");
        assert_eq!(reorder("lock the door"), "lock the door");
        // "whenever" is not a reorderable "when" clause.
        assert_eq!(
            reorder("whenever it rains bring an umbrella"),
            "whenever it rains bring an umbrella"
        );
    }

    /// The stream rewriter must be draw-for-draw identical to the string
    /// implementation it replaced — rewrites are part of the dataset
    /// identity.
    #[test]
    fn stream_rewrites_match_string_rewrites() {
        let simulator = ParaphraseSimulator::new(ParaphraseConfig::default());
        let interner = genie_templates::intern::shared();
        let string_ppdb = Ppdb::builtin();

        let string_reorder = |sentence: &str| -> String {
            if let Some(rest) = sentence.strip_prefix("when ") {
                if let Some((condition, action)) = rest.split_once(" , ") {
                    if !condition.is_empty() && !action.is_empty() {
                        return format!("{action} when {condition}");
                    }
                }
            } else if let Some((action, condition)) = sentence.split_once(" when ") {
                if !action.is_empty() && !condition.is_empty() && !action.starts_with("when") {
                    return format!("when {condition} , {action}");
                }
            }
            sentence.to_owned()
        };
        let string_faithful = |utterance: &str, rng: &mut StdRng| -> String {
            let mut sentence = utterance.to_owned();
            for _ in 0..rng.gen_range(1..=3) {
                if let Some(next) = string_ppdb.augment_once(&sentence, rng) {
                    sentence = next;
                }
            }
            if rng.gen_bool(0.5) {
                sentence = string_reorder(&sentence);
            }
            match rng.gen_range(0..4) {
                0 => {
                    let prefix = PREFIXES.choose(rng).expect("nonempty");
                    sentence = format!("{prefix} {sentence}");
                }
                1 => {
                    let filler = FILLERS.choose(rng).expect("nonempty");
                    sentence = format!("{sentence} {filler}");
                }
                2 => {
                    for lead in ["please ", "get ", "show me "] {
                        if let Some(rest) = sentence.strip_prefix(lead) {
                            if rest.split_whitespace().count() >= 3 {
                                sentence = rest.to_owned();
                            }
                            break;
                        }
                    }
                }
                _ => {}
            }
            sentence
        };

        for (i, text) in [
            "when i receive an email , send a slack message to #general",
            "please post a funny cat picture on facebook",
            "get my dropbox files and then tweet the file name",
            "show me my new emails when i get home",
            "lock the front door",
            "whenever it rains close the windows",
        ]
        .iter()
        .enumerate()
        {
            let stream = interner.stream_of(text);
            for round in 0..40u64 {
                let seed = 31 * (i as u64 + 1) + round;
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let via_string = string_faithful(text, &mut rng_a);
                let via_stream = interner.render(&simulator.faithful_rewrite(&stream, &mut rng_b));
                assert_eq!(via_string, via_stream, "text {text:?} seed {seed}");
            }
        }
    }

    #[test]
    fn validation_rejects_lazy_and_truncated_answers() {
        let simulator = ParaphraseSimulator::new(ParaphraseConfig::default());
        let original = "when i receive an email , send a slack message";
        assert!(!simulator.validate(original, original));
        assert!(!simulator.validate(original, "when i receive an email , send a slack message ."));
        assert!(!simulator.validate(original, "when i"));
        assert!(!simulator.validate(original, "play some jazz music loudly tonight"));
        assert!(simulator.validate(
            original,
            "send a slack message whenever an email arrives for me"
        ));
    }

    #[test]
    fn error_rate_reduces_the_yield() {
        let clean = ParaphraseSimulator::new(ParaphraseConfig {
            per_sentence: 3,
            error_rate: 0.0,
            seed: 2,
        });
        let noisy = ParaphraseSimulator::new(ParaphraseConfig {
            per_sentence: 3,
            error_rate: 0.9,
            seed: 2,
        });
        let examples = vec![example(); 20];
        let clean_count = clean.paraphrase_all(&examples).len();
        let noisy_count = noisy.paraphrase_all(&examples).len();
        assert!(
            clean_count > noisy_count,
            "clean {clean_count} vs noisy {noisy_count}"
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let config = ParaphraseConfig {
            per_sentence: 2,
            error_rate: 0.1,
            seed: 9,
        };
        let a = ParaphraseSimulator::new(config).paraphrase_all(&[example()]);
        let b = ParaphraseSimulator::new(config).paraphrase_all(&[example()]);
        assert_eq!(a, b);
    }
}
