//! Realistic evaluation data (§5.1).
//!
//! The paper validates and tests on three kinds of data that mimic real
//! usage: *developer data* written in Almond's training interface,
//! *cheatsheet data* from crowdworkers who saw a cheatsheet of functions and
//! then wrote commands from memory, and *IFTTT data* adapted from applet
//! descriptions with the cleanup rules of Table 2. Real users are not
//! available to this reproduction, so each set is generated with deliberate
//! distribution shift from the training data (different seeds, held-out
//! lexical rewrites, description-style shortening) — see DESIGN.md.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;
use thingtalk::Program;

use crate::dataset::{Dataset, Example, ExampleSource};
use crate::paraphrase::{ParaphraseConfig, ParaphraseSimulator};

/// Configuration of the evaluation-data generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalDataConfig {
    /// Number of sentences to produce.
    pub size: usize,
    /// RNG seed (kept distinct from the training seed to force new
    /// programs and new parameter values).
    pub seed: u64,
}

impl Default for EvalDataConfig {
    fn default() -> Self {
        EvalDataConfig {
            size: 150,
            seed: 9000,
        }
    }
}

fn base_examples(library: &Thingpedia, config: EvalDataConfig, aggregation: bool) -> Vec<Example> {
    let generator = SentenceGenerator::new(
        library,
        GeneratorConfig {
            target_per_rule: (config.size / 6).max(8),
            max_depth: 5,
            instantiations_per_template: 1,
            seed: config.seed,
            include_aggregation: aggregation,
            include_timers: true,
            threads: 0,
            ..GeneratorConfig::default()
        },
    );
    let mut out: Vec<Example> = generator
        .synthesize()
        .into_iter()
        .map(|e| Example::new(e.utterance, e.program, ExampleSource::Evaluation))
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    out.shuffle(&mut rng);
    out.truncate(config.size);
    out
}

/// Developer data: sentences written by people who know the system well —
/// close to the synthesized phrasing but with natural rewrites.
pub fn developer_data(library: &Thingpedia, config: EvalDataConfig) -> Dataset {
    let simulator = ParaphraseSimulator::new(ParaphraseConfig {
        per_sentence: 1,
        error_rate: 0.0,
        seed: config.seed,
    });
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let examples = base_examples(library, config, false)
        .into_iter()
        .map(|example| {
            let rewritten = simulator
                .paraphrase(&example, &mut rng)
                .into_iter()
                .next()
                .map(|p| p.utterance)
                .unwrap_or_else(|| example.utterance.clone());
            Example::new(rewritten, example.program, ExampleSource::Evaluation)
        })
        .collect();
    Dataset::from_examples(examples)
}

const CASUAL_PREFIXES: &[&str] = &[
    "hey assistant",
    "yo",
    "hi there ,",
    "assistant ,",
    "i wanna",
    "i need to",
    "help me",
];

const CASUAL_SUFFIXES: &[&str] = &["asap", "thanks", "thx", "right away", "ok ?"];

/// Cheatsheet data: crowdworkers saw a cheatsheet of functions, then wrote
/// commands from memory — realistic, casual, lexically far from the
/// synthesized sentences, and covering function combinations that do not
/// appear in training.
pub fn cheatsheet_data(library: &Thingpedia, config: EvalDataConfig) -> Dataset {
    let simulator = ParaphraseSimulator::new(ParaphraseConfig {
        per_sentence: 1,
        error_rate: 0.0,
        seed: config.seed.wrapping_add(7),
    });
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
    let interner = genie_templates::intern::shared();
    let examples = base_examples(
        library,
        EvalDataConfig {
            size: config.size,
            seed: config.seed.wrapping_add(31),
        },
        false,
    )
    .into_iter()
    .map(|example| {
        // Two rounds of rewriting plus casual framing.
        let mut utterance = example.utterance.clone();
        for _ in 0..2 {
            if let Some(p) = simulator.paraphrase(&example, &mut rng).into_iter().next() {
                utterance = p.utterance;
            }
        }
        if rng.gen_bool(0.5) {
            let prefix = CASUAL_PREFIXES.choose(&mut rng).expect("nonempty");
            let mut framed = interner.stream_of(prefix);
            framed.extend_from_slice(&utterance);
            utterance = framed;
        }
        if rng.gen_bool(0.3) {
            let suffix = CASUAL_SUFFIXES.choose(&mut rng).expect("nonempty");
            interner.intern_words(suffix, &mut utterance);
        }
        Example::new(utterance, example.program, ExampleSource::Evaluation)
    })
    .collect();
    Dataset::from_examples(examples)
}

/// Cheatsheet data restricted to TT+A aggregation commands (§6.3).
pub fn aggregation_cheatsheet_data(library: &Thingpedia, config: EvalDataConfig) -> Dataset {
    let examples: Vec<Example> = base_examples(library, config, true)
        .into_iter()
        .filter(|e| e.flags.aggregation)
        .collect();
    Dataset::from_examples(examples)
}

/// The Table 2 cleanup rules, applied to an IFTTT-style description to turn
/// it into a usable command.
pub fn cleanup_ifttt_description(description: &str, program: &Program) -> String {
    let mut sentence = description.to_lowercase();
    // Remove UI-related explanation ("with this button", "using this applet").
    for ui in [
        " with this button",
        " using this applet",
        " with this widget",
    ] {
        sentence = sentence.replace(ui, "");
    }
    // Replace second-person pronouns with first person.
    sentence = sentence
        .replace("your ", "my ")
        .replace(" you ", " i ")
        .replace("yourself", "myself");
    // Replace placeholders with specific values.
    sentence = sentence.replace("___", "25");
    // Append the device name if the sentence is ambiguous about it
    // (mentions no skill name at all).
    let devices: Vec<String> = program
        .devices()
        .iter()
        .map(|d| d.rsplit('.').next().unwrap_or(d).to_owned())
        .collect();
    let mentions_device = devices.iter().any(|d| sentence.contains(d.as_str()));
    if !mentions_device {
        if let Some(device) = devices.last() {
            sentence = format!("{sentence} on {device}");
        }
    }
    sentence.trim().to_owned()
}

/// IFTTT data: high-level descriptions of trigger-action applets, adapted
/// with the Table 2 rules. The raw descriptions are intentionally terse and
/// sometimes use second person or placeholders, as on the real platform.
pub fn ifttt_data(library: &Thingpedia, config: EvalDataConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(3));
    let examples: Vec<Example> = base_examples(
        library,
        EvalDataConfig {
            size: config.size * 3,
            seed: config.seed.wrapping_add(63),
        },
        false,
    )
    .into_iter()
    .filter(|e| !e.flags.primitive && e.flags.event_driven)
    .take(config.size)
    .map(|example| {
        let raw = raw_ifttt_description(&example, &mut rng);
        let cleaned = cleanup_ifttt_description(&raw, &example.program);
        Example::new(cleaned, example.program, ExampleSource::Evaluation)
    })
    .collect();
    Dataset::from_examples(examples)
}

/// Produce the kind of terse description IFTTT applets carry ("Blink your
/// light when it rains", "IG to FB"), including the artifacts the Table 2
/// rules remove.
fn raw_ifttt_description(example: &Example, rng: &mut StdRng) -> String {
    // Evaluation data is built once per experiment (cold path): render the
    // stream and apply the description surgery on text.
    let utterance = example.text();
    match rng.gen_range(0..4) {
        0 => format!("{utterance} with this button"),
        1 => utterance.replace("my ", "your "),
        2 => {
            // Drop the device words to make the description under-specified.
            let devices: Vec<String> = example
                .program
                .devices()
                .iter()
                .map(|d| d.rsplit('.').next().unwrap_or(d).to_owned())
                .collect();
            let mut shortened = utterance;
            for device in devices {
                shortened = shortened.replace(&format!(" on {device}"), "");
                shortened = shortened.replace(&format!(" {device}"), "");
            }
            shortened
        }
        _ => utterance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    #[test]
    fn all_three_sets_are_generated() {
        let library = Thingpedia::builtin();
        let config = EvalDataConfig {
            size: 40,
            seed: 1234,
        };
        let developer = developer_data(&library, config);
        let cheatsheet = cheatsheet_data(&library, config);
        let ifttt = ifttt_data(&library, config);
        assert!(developer.len() >= 30);
        assert!(cheatsheet.len() >= 30);
        assert!(ifttt.len() >= 10);
        for dataset in [&developer, &cheatsheet, &ifttt] {
            for example in &dataset.examples {
                assert_eq!(example.source, ExampleSource::Evaluation);
                assert!(!example.text().trim().is_empty());
            }
        }
    }

    #[test]
    fn ifttt_data_is_compound_and_event_driven() {
        let library = Thingpedia::builtin();
        let ifttt = ifttt_data(&library, EvalDataConfig { size: 30, seed: 77 });
        for example in &ifttt.examples {
            assert!(!example.flags.primitive);
            assert!(example.flags.event_driven);
        }
    }

    #[test]
    fn cleanup_rules_match_table2() {
        let program = parse_program(
            "monitor (@org.thingpedia.weather.current()) => @com.hue.color_loop(name = \"kitchen light\"^^tt:device_name)",
        )
        .unwrap();
        // Second person → first person, UI explanation removed.
        let cleaned =
            cleanup_ifttt_description("Make your Hue Lights color loop with this button", &program);
        assert_eq!(cleaned, "make my hue lights color loop");
        // Placeholders are filled.
        let thermostat = parse_program(
            "now => @org.thingpedia.builtin.thermostat.set_target_temperature(value = 20C)",
        )
        .unwrap();
        let cleaned = cleanup_ifttt_description("set the temperature to ___ degrees", &thermostat);
        assert!(cleaned.contains("25"));
        assert!(cleaned.contains("thermostat"), "device appended: {cleaned}");
    }

    #[test]
    fn cheatsheet_data_shifts_the_lexical_distribution() {
        let library = Thingpedia::builtin();
        let config = EvalDataConfig {
            size: 50,
            seed: 321,
        };
        let developer = developer_data(&library, config);
        let cheatsheet = cheatsheet_data(&library, config);
        // The casual prefixes/suffixes should appear in cheatsheet data only.
        let casual = |d: &Dataset| {
            d.examples
                .iter()
                .filter(|e| CASUAL_PREFIXES.iter().any(|p| e.text().starts_with(p)))
                .count()
        };
        assert!(casual(&cheatsheet) > 0);
        assert_eq!(casual(&developer), 0);
    }

    #[test]
    fn eval_sets_are_deterministic() {
        let library = Thingpedia::builtin();
        let config = EvalDataConfig { size: 25, seed: 5 };
        assert_eq!(
            developer_data(&library, config),
            developer_data(&library, config)
        );
        assert_eq!(
            cheatsheet_data(&library, config),
            cheatsheet_data(&library, config)
        );
    }
}
