//! Evaluation metrics and error analysis (§5, §5.5).
//!
//! The paper's primary metric is *program accuracy*: the output is correct
//! only if it has the right functions, parameters, joins and filters — i.e.
//! it matches the canonicalized gold program exactly. The error analysis
//! additionally reports how often the output is syntactically valid and
//! type-correct, identifies primitive vs. compound correctly, names the
//! right skills, and names the right functions.

use serde::{Deserialize, Serialize};

use thingtalk::canonical::canonicalized;
use thingtalk::nn_syntax::from_tokens;
use thingtalk::typecheck::{typecheck, SchemaRegistry};

use crate::dataset::Example;

/// Aggregate evaluation metrics over a test set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Number of evaluated sentences.
    pub count: usize,
    /// Exact-match program accuracy.
    pub program_accuracy: f64,
    /// The output uses exactly the right set of functions.
    pub function_accuracy: f64,
    /// The output uses exactly the right set of skills (devices).
    pub device_accuracy: f64,
    /// The output correctly identifies primitive vs. compound.
    pub primitive_compound_accuracy: f64,
    /// The output parses as a syntactically valid program.
    pub syntax_correct: f64,
    /// The output parses and typechecks against the library.
    pub type_correct: f64,
}

impl EvalResult {
    fn normalize(mut self) -> Self {
        let n = self.count.max(1) as f64;
        self.program_accuracy /= n;
        self.function_accuracy /= n;
        self.device_accuracy /= n;
        self.primitive_compound_accuracy /= n;
        self.syntax_correct /= n;
        self.type_correct /= n;
        self
    }
}

/// Evaluate predicted token sequences against gold examples.
///
/// `gold_tokens[i]` must be the canonical gold token sequence for
/// `examples[i]` (as produced by `DataPipeline::gold_tokens`), and
/// `predictions[i]` the model output for the same sentence.
pub fn evaluate<R: SchemaRegistry + ?Sized>(
    registry: &R,
    examples: &[Example],
    gold_tokens: &[Vec<String>],
    predictions: &[Vec<String>],
) -> EvalResult {
    assert_eq!(examples.len(), gold_tokens.len());
    assert_eq!(examples.len(), predictions.len());
    let mut result = EvalResult {
        count: examples.len(),
        ..EvalResult::default()
    };
    for ((example, gold), predicted) in examples.iter().zip(gold_tokens).zip(predictions) {
        let exact = predicted == gold;
        let parsed = from_tokens(predicted).ok();
        let mut program_correct = exact;
        if let Some(parsed) = &parsed {
            result.syntax_correct += 1.0;
            if typecheck(registry, parsed).is_ok() {
                result.type_correct += 1.0;
            }
            let gold_canonical = canonicalized(registry, &example.program);
            let predicted_canonical = canonicalized(registry, parsed);
            if predicted_canonical == gold_canonical {
                program_correct = true;
            }
            // Function / device / primitive-vs-compound accuracy.
            let mut gold_functions: Vec<String> = example
                .program
                .functions()
                .iter()
                .map(|f| f.to_string())
                .collect();
            gold_functions.sort();
            let mut predicted_functions: Vec<String> =
                parsed.functions().iter().map(|f| f.to_string()).collect();
            predicted_functions.sort();
            if gold_functions == predicted_functions {
                result.function_accuracy += 1.0;
            }
            let mut gold_devices: Vec<&str> = example.program.devices();
            gold_devices.sort_unstable();
            let mut predicted_devices: Vec<&str> = parsed.devices();
            predicted_devices.sort_unstable();
            if gold_devices == predicted_devices {
                result.device_accuracy += 1.0;
            }
            if parsed.is_compound() == example.program.is_compound() {
                result.primitive_compound_accuracy += 1.0;
            }
        } else if exact {
            // Token-exact but not decodable (e.g. the positional-parameter
            // ablation): count structure metrics as correct too.
            result.syntax_correct += 1.0;
            result.type_correct += 1.0;
            result.function_accuracy += 1.0;
            result.device_accuracy += 1.0;
            result.primitive_compound_accuracy += 1.0;
        }
        if program_correct {
            result.program_accuracy += 1.0;
        }
    }
    result.normalize()
}

/// Mean, minimum and maximum of a set of accuracy values, used for the error
/// bars of Fig. 8 / Fig. 9 and the ± column of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AccuracySummary {
    /// Mean accuracy.
    pub mean: f64,
    /// Minimum over runs.
    pub min: f64,
    /// Maximum over runs.
    pub max: f64,
}

impl AccuracySummary {
    /// Summarize a list of per-run accuracies.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return AccuracySummary::default();
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        AccuracySummary { mean, min, max }
    }

    /// Half the range, the ± value reported in Table 3.
    pub fn half_range(&self) -> f64 {
        (self.max - self.min) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ExampleSource;
    use thingpedia::Thingpedia;
    use thingtalk::nn_syntax::{to_tokens, NnSyntaxOptions};
    use thingtalk::syntax::parse_program;

    fn example(source: &str) -> (Example, Vec<String>) {
        let program = parse_program(source).unwrap();
        let library = Thingpedia::builtin();
        let canonical = canonicalized(&library, &program);
        let tokens = to_tokens(&canonical, NnSyntaxOptions::default());
        (
            Example::new("test sentence", program, ExampleSource::Evaluation),
            tokens,
        )
    }

    #[test]
    fn perfect_predictions_score_one() {
        let library = Thingpedia::builtin();
        let (e1, g1) = example("now => @com.gmail.inbox() => notify");
        let (e2, g2) = example("monitor (@com.twitter.timeline()) => notify");
        let result = evaluate(&library, &[e1, e2], &[g1.clone(), g2.clone()], &[g1, g2]);
        assert_eq!(result.count, 2);
        assert!((result.program_accuracy - 1.0).abs() < 1e-9);
        assert!((result.function_accuracy - 1.0).abs() < 1e-9);
        assert!((result.syntax_correct - 1.0).abs() < 1e-9);
        assert!((result.type_correct - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_function_fails_program_but_counts_syntax() {
        let library = Thingpedia::builtin();
        let (e1, g1) = example("now => @com.gmail.inbox() => notify");
        let (_, wrong) = example("now => @com.twitter.timeline() => notify");
        let result = evaluate(&library, &[e1], &[g1], &[wrong]);
        assert_eq!(result.program_accuracy, 0.0);
        assert_eq!(result.function_accuracy, 0.0);
        assert_eq!(result.syntax_correct, 1.0);
        assert_eq!(result.primitive_compound_accuracy, 1.0);
    }

    #[test]
    fn garbage_output_fails_everything() {
        let library = Thingpedia::builtin();
        let (e1, g1) = example("now => @com.gmail.inbox() => notify");
        let garbage = vec!["now".to_owned(), "=>".to_owned()];
        let result = evaluate(&library, &[e1], &[g1], &[garbage]);
        assert_eq!(result.program_accuracy, 0.0);
        assert_eq!(result.syntax_correct, 0.0);
        assert_eq!(result.function_accuracy, 0.0);
    }

    #[test]
    fn canonically_equivalent_predictions_count_as_correct() {
        let library = Thingpedia::builtin();
        let gold_program = parse_program(
            "now => @com.facebook.post_picture(caption = \"funny cat\", picture_url = \"https://x.example/c.jpg\")",
        )
        .unwrap();
        let gold_canonical = canonicalized(&library, &gold_program);
        let gold_tokens = to_tokens(&gold_canonical, NnSyntaxOptions::default());
        // Prediction has the parameters in the opposite order.
        let predicted_program = parse_program(
            "now => @com.facebook.post_picture(picture_url = \"https://x.example/c.jpg\", caption = \"funny cat\")",
        )
        .unwrap();
        let predicted_tokens = to_tokens(&predicted_program, NnSyntaxOptions::default());
        let e = Example::new(
            "post the funny cat picture",
            gold_program,
            ExampleSource::Evaluation,
        );
        let result = evaluate(&library, &[e], &[gold_tokens], &[predicted_tokens]);
        assert!((result.program_accuracy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_summary_statistics() {
        let summary = AccuracySummary::of(&[0.6, 0.62, 0.58]);
        assert!((summary.mean - 0.6).abs() < 1e-9);
        assert!((summary.half_range() - 0.02).abs() < 1e-9);
        assert_eq!(AccuracySummary::of(&[]), AccuracySummary::default());
    }
}
