//! Crowdsource task generation (§3.2).
//!
//! Genie "automates the process of crowdsourcing paraphrases": it samples
//! synthesized sentences, groups them into Mechanical Turk HITs (each worker
//! sees several sentences and provides two paraphrases per sentence), and
//! validates the returned answers. This module produces the batch structure
//! and applies the same pairing strategy the paper describes: compound
//! sentences should combine easy-to-understand functions with difficult
//! ones, and unrelated functions should not be combined.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use serde::{Deserialize, Serialize};
use thingtalk::typecheck::SchemaRegistry;

use crate::dataset::Example;

/// One crowdsource task: a synthesized sentence shown to `assignments`
/// distinct workers, each asked for `paraphrases_per_worker` paraphrases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdTask {
    /// The synthesized sentence the worker sees.
    pub sentence: String,
    /// The program the sentence denotes (kept for annotation, not shown to
    /// the worker).
    pub program: String,
    /// Whether every function in the program is marked easy to understand.
    pub easy: bool,
}

/// A batch of crowdsource tasks (one MTurk HIT group).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CrowdBatch {
    /// The tasks in the batch.
    pub tasks: Vec<CrowdTask>,
    /// How many workers see each sentence.
    pub assignments: usize,
    /// How many paraphrases each worker must provide per sentence (the
    /// paper uses two).
    pub paraphrases_per_worker: usize,
}

impl CrowdBatch {
    /// Total number of paraphrases the batch will collect if all workers
    /// respond.
    pub fn expected_paraphrases(&self) -> usize {
        self.tasks.len() * self.assignments * self.paraphrases_per_worker
    }

    /// Render the batch as a CSV file suitable for upload (one row per
    /// task), as Genie produces for the MTurk platform.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("sentence,program\n");
        for task in &self.tasks {
            out.push_str(&format!(
                "\"{}\",\"{}\"\n",
                task.sentence.replace('"', "'"),
                task.program.replace('"', "'")
            ));
        }
        out
    }
}

/// Select synthesized sentences for paraphrasing and group them into a
/// batch. Developers "can control the subset of templates to paraphrase as
/// well as their sampling rates"; here the knobs are the sample size and
/// whether hard-to-understand functions are admitted on their own.
pub fn build_batch<R: SchemaRegistry + ?Sized>(
    registry: &R,
    examples: &[Example],
    sample_size: usize,
    seed: u64,
) -> CrowdBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<&Example> = examples
        .iter()
        .filter(|e| {
            let easy_count = e
                .program
                .functions()
                .iter()
                .filter(|f| {
                    registry
                        .function(&f.class, &f.function)
                        .map(|def| def.easy_to_understand)
                        .unwrap_or(true)
                })
                .count();
            // Compound sentences must contain at least one easy function so
            // workers can anchor their understanding.
            easy_count >= 1
        })
        .collect();
    candidates.shuffle(&mut rng);
    let tasks = candidates
        .into_iter()
        .take(sample_size)
        .map(|example| {
            let easy = example.program.functions().iter().all(|f| {
                registry
                    .function(&f.class, &f.function)
                    .map(|def| def.easy_to_understand)
                    .unwrap_or(true)
            });
            CrowdTask {
                sentence: example.text(),
                program: example.program.to_string(),
                easy,
            }
        })
        .collect();
    CrowdBatch {
        tasks,
        assignments: 3,
        paraphrases_per_worker: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ExampleSource;
    use thingpedia::Thingpedia;
    use thingtalk::syntax::parse_program;

    fn examples() -> Vec<Example> {
        vec![
            Example::new(
                "show me my emails",
                parse_program("now => @com.gmail.inbox() => notify").unwrap(),
                ExampleSource::Synthesized,
            ),
            Example::new(
                "tweet good morning",
                parse_program("now => @com.twitter.post(status = \"good morning\")").unwrap(),
                ExampleSource::Synthesized,
            ),
            Example::new(
                "when i get an email , post it on slack",
                parse_program(
                    "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#a\"^^tt:slack_channel, message = snippet)",
                )
                .unwrap(),
                ExampleSource::Synthesized,
            ),
        ]
    }

    #[test]
    fn batch_selects_and_counts() {
        let library = Thingpedia::builtin();
        let batch = build_batch(&library, &examples(), 2, 1);
        assert_eq!(batch.tasks.len(), 2);
        assert_eq!(batch.assignments, 3);
        assert_eq!(batch.paraphrases_per_worker, 2);
        assert_eq!(batch.expected_paraphrases(), 12);
    }

    #[test]
    fn csv_has_one_row_per_task_plus_header() {
        let library = Thingpedia::builtin();
        let batch = build_batch(&library, &examples(), 3, 2);
        let csv = batch.to_csv();
        assert_eq!(csv.lines().count(), batch.tasks.len() + 1);
        assert!(csv.starts_with("sentence,program"));
    }

    #[test]
    fn sampling_is_deterministic() {
        let library = Thingpedia::builtin();
        let a = build_batch(&library, &examples(), 2, 7);
        let b = build_batch(&library, &examples(), 2, 7);
        assert_eq!(a, b);
    }
}
