//! Dataset types: examples, sources, composition statistics (Fig. 7),
//! program-level splits, and the incremental sharded writers of the
//! streaming pipeline.

use std::collections::BTreeSet;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use genie_nlp::intern::{Interner, TokenStream};
use genie_templates::ExampleFlags;
use luinet::ParserExample;
use thingtalk::Program;

/// Where an example came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExampleSource {
    /// Produced directly by the template synthesizer.
    Synthesized,
    /// A (simulated) crowdworker paraphrase of a synthesized sentence.
    Paraphrase,
    /// Produced by parameter expansion or PPDB augmentation of another
    /// example.
    Augmented,
    /// Realistic evaluation data (developer, cheatsheet, IFTTT).
    Evaluation,
}

/// One sentence/program pair flowing through the pipeline.
///
/// The utterance is an interned [`TokenStream`] (see
/// `genie_templates::intern`): pipeline stages splice, compare and
/// fingerprint 4-byte symbols, and the text is materialized exactly once —
/// at TSV-write time or for human-facing output ([`Example::text`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// The natural-language utterance as interned tokens.
    pub utterance: TokenStream,
    /// The target program.
    pub program: Program,
    /// Provenance.
    pub source: ExampleSource,
    /// Structural flags (primitive/compound, filters, parameter passing).
    pub flags: ExampleFlags,
}

/// Conversion into an interned utterance: pre-built token streams pass
/// through untouched; text interns its whitespace words into the shared
/// arena, so the evaluation loaders and tests keep passing plain strings.
pub trait IntoUtterance {
    /// Produce the interned token stream.
    fn into_utterance(self) -> TokenStream;
}

impl IntoUtterance for TokenStream {
    fn into_utterance(self) -> TokenStream {
        self
    }
}

impl IntoUtterance for &str {
    fn into_utterance(self) -> TokenStream {
        genie_templates::intern::shared().stream_of(self)
    }
}

impl IntoUtterance for String {
    fn into_utterance(self) -> TokenStream {
        self.as_str().into_utterance()
    }
}

impl Example {
    /// Create an example, computing flags from the program.
    pub fn new(utterance: impl IntoUtterance, program: Program, source: ExampleSource) -> Self {
        let flags = ExampleFlags::of(&program);
        Example {
            utterance: utterance.into_utterance(),
            program,
            source,
            flags,
        }
    }

    /// Render the utterance through the shared arena (the arena every
    /// pipeline component defaults to).
    pub fn text(&self) -> String {
        genie_templates::intern::shared().render(&self.utterance)
    }

    /// Render the utterance through an explicit arena.
    pub fn text_with(&self, interner: &Interner) -> String {
        interner.render(&self.utterance)
    }

    /// A stable key identifying the program's function combination
    /// (used for the seen/unseen-program splits of §5.1 and §5.4).
    pub fn function_signature(&self) -> String {
        let mut functions: Vec<String> = self
            .program
            .functions()
            .iter()
            .map(|f| f.to_string())
            .collect();
        functions.sort();
        functions.join("+")
    }
}

/// The composition of a dataset, as reported in Fig. 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Composition {
    /// Primitive commands without filters.
    pub primitive: usize,
    /// Primitive commands with filters.
    pub primitive_filters: usize,
    /// Compound commands without parameter passing or filters.
    pub compound: usize,
    /// Compound commands with parameter passing.
    pub compound_param_passing: usize,
    /// Compound commands with filters (including those that also pass
    /// parameters).
    pub compound_filters: usize,
}

impl Composition {
    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.primitive
            + self.primitive_filters
            + self.compound
            + self.compound_param_passing
            + self.compound_filters
    }

    /// The five Fig. 7 shares, in the paper's order, as fractions of the
    /// total.
    pub fn shares(&self) -> [(&'static str, f64); 5] {
        let total = self.total().max(1) as f64;
        [
            ("primitive commands", self.primitive as f64 / total),
            ("+ filters", self.primitive_filters as f64 / total),
            ("compound commands", self.compound as f64 / total),
            (
                "+ parameter passing",
                self.compound_param_passing as f64 / total,
            ),
            ("+ filters", self.compound_filters as f64 / total),
        ]
    }
}

/// A collection of examples with dataset-level statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The examples.
    pub examples: Vec<Example>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Build a dataset from examples.
    pub fn from_examples(examples: Vec<Example>) -> Self {
        Dataset { examples }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Append another dataset.
    pub fn extend(&mut self, other: Dataset) {
        self.examples.extend(other.examples);
    }

    /// The number of distinct programs (by canonical surface form).
    pub fn distinct_programs(&self) -> usize {
        let set: BTreeSet<String> = self
            .examples
            .iter()
            .map(|e| e.program.to_string())
            .collect();
        set.len()
    }

    /// The number of distinct function combinations.
    pub fn distinct_function_combinations(&self) -> usize {
        let set: BTreeSet<String> = self
            .examples
            .iter()
            .map(|e| e.function_signature())
            .collect();
        set.len()
    }

    /// The number of distinct words across all utterances (tokenizer
    /// granularity, via the cached per-symbol expansions — no re-tokenize).
    pub fn distinct_words(&self) -> usize {
        let interner = genie_templates::intern::shared();
        let mut set: BTreeSet<genie_nlp::Symbol> = BTreeSet::new();
        for example in &self.examples {
            for symbol in &example.utterance {
                let mut expansion = TokenStream::new();
                interner.push_tokenized(symbol, &mut expansion);
                set.extend(expansion.iter());
            }
        }
        set.len()
    }

    /// Fraction of examples coming from (simulated) paraphrases.
    pub fn paraphrase_fraction(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        let paraphrases = self
            .examples
            .iter()
            .filter(|e| e.source == ExampleSource::Paraphrase)
            .count();
        paraphrases as f64 / self.examples.len() as f64
    }

    /// The Fig. 7 composition of the dataset.
    pub fn composition(&self) -> Composition {
        let mut composition = Composition::default();
        for example in &self.examples {
            let flags = example.flags;
            if flags.primitive {
                if flags.filter {
                    composition.primitive_filters += 1;
                } else {
                    composition.primitive += 1;
                }
            } else if flags.filter {
                composition.compound_filters += 1;
            } else if flags.param_passing {
                composition.compound_param_passing += 1;
            } else {
                composition.compound += 1;
            }
        }
        composition
    }

    /// Split examples into those whose function combination appears in the
    /// `reference` dataset ("seen programs") and those whose combination does
    /// not ("new programs"), the distinction used in §5.2 and Table 3.
    pub fn split_by_seen_programs(&self, reference: &Dataset) -> (Dataset, Dataset) {
        let seen: BTreeSet<String> = reference
            .examples
            .iter()
            .map(|e| e.function_signature())
            .collect();
        let mut seen_split = Dataset::new();
        let mut new_split = Dataset::new();
        for example in &self.examples {
            if seen.contains(&example.function_signature()) {
                seen_split.examples.push(example.clone());
            } else {
                new_split.examples.push(example.clone());
            }
        }
        (seen_split, new_split)
    }
}

/// An incremental writer that spreads a stream of parser examples across
/// `N` shard files, so arbitrarily large datasets are written with bounded
/// memory and can be consumed shard-by-shard downstream.
///
/// Examples are assigned **round-robin** (`shard = sequence_index % N`):
/// shard files are written in canonical stream order, and
/// [`ShardedDatasetWriter::merge`] interleaves them back into exactly the
/// original sequence. The merged content is therefore byte-identical for any
/// shard count — the layout is storage, not semantics.
pub struct ShardedDatasetWriter {
    writers: Vec<BufWriter<File>>,
    paths: Vec<PathBuf>,
    /// One growable render buffer per shard, reused across rows: rendering
    /// an example reuses the capacity its shard's previous rows grew, so
    /// steady-state writes allocate nothing.
    render_buffers: Vec<String>,
    written: usize,
}

impl ShardedDatasetWriter {
    /// Create `shard_count` shard files `{stem}.shard-NNNN.tsv` under `dir`
    /// (`0` is treated as 1), truncating any existing files.
    pub fn create(dir: impl AsRef<Path>, stem: &str, shard_count: usize) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut writers = Vec::new();
        let mut paths = Vec::new();
        for shard in 0..shard_count.max(1) {
            let path = dir.join(format!("{stem}.shard-{shard:04}.tsv"));
            writers.push(BufWriter::new(File::create(&path)?));
            paths.push(path);
        }
        let render_buffers = vec![String::new(); writers.len()];
        Ok(ShardedDatasetWriter {
            writers,
            paths,
            render_buffers,
            written: 0,
        })
    }

    /// Append one parser example as a `sentence\tprogram` TSV line to the
    /// next shard in round-robin order.
    ///
    /// This is the single point where the streamed utterance becomes text:
    /// the sentence symbols render into the shard's reused buffer (shared
    /// arena), the program tokens follow, and one `write_all` hands the row
    /// to the `BufWriter`.
    pub fn write(&mut self, example: &ParserExample) -> io::Result<()> {
        let shard = self.written % self.writers.len();
        let line = &mut self.render_buffers[shard];
        line.clear();
        example.render_tsv_row(line);
        self.writers[shard].write_all(line.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Number of examples written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// The shard file paths, in shard order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Flush every shard and return the shard paths.
    pub fn finish(mut self) -> io::Result<Vec<PathBuf>> {
        for writer in &mut self.writers {
            writer.flush()?;
        }
        Ok(self.paths)
    }

    /// Interleave round-robin shard files back into the canonical stream,
    /// handing each line to `sink`: round `k` yields line `k` of each
    /// shard, in shard order. The sequence is exactly what was written, for
    /// any shard count, and only one line is resident at a time — the
    /// bounded-memory counterpart of [`ShardedDatasetWriter::merge`].
    pub fn merge_for_each(paths: &[PathBuf], mut sink: impl FnMut(String)) -> io::Result<()> {
        let mut readers = Vec::new();
        for path in paths {
            readers.push(BufReader::new(File::open(path)?).lines());
        }
        loop {
            let mut any = false;
            for reader in &mut readers {
                if let Some(line) = reader.next() {
                    sink(line?);
                    any = true;
                }
            }
            if !any {
                return Ok(());
            }
        }
    }

    /// [`ShardedDatasetWriter::merge_for_each`], collected into a `Vec` —
    /// convenient for tests and small datasets; large consumers should
    /// stream through `merge_for_each` instead.
    pub fn merge(paths: &[PathBuf]) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        Self::merge_for_each(paths, |line| out.push(line))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    fn example(utterance: &str, program: &str, source: ExampleSource) -> Example {
        Example::new(utterance, parse_program(program).unwrap(), source)
    }

    fn sample_dataset() -> Dataset {
        Dataset::from_examples(vec![
            example("show me my emails", "now => @com.gmail.inbox() => notify", ExampleSource::Synthesized),
            example(
                "emails from alice",
                "now => @com.gmail.inbox() filter sender == \"alice\" => notify",
                ExampleSource::Synthesized,
            ),
            example(
                "when i get an email send a slack message",
                "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#x\"^^tt:slack_channel, message = \"mail\")",
                ExampleSource::Paraphrase,
            ),
            example(
                "when i get an email forward the subject to slack",
                "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#x\"^^tt:slack_channel, message = subject)",
                ExampleSource::Paraphrase,
            ),
        ])
    }

    #[test]
    fn composition_buckets() {
        let dataset = sample_dataset();
        let composition = dataset.composition();
        assert_eq!(composition.primitive, 1);
        assert_eq!(composition.primitive_filters, 1);
        assert_eq!(composition.compound, 1);
        assert_eq!(composition.compound_param_passing, 1);
        assert_eq!(composition.total(), 4);
        let shares = composition.shares();
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_counts() {
        let dataset = sample_dataset();
        assert_eq!(dataset.len(), 4);
        assert_eq!(dataset.distinct_programs(), 4);
        assert_eq!(dataset.distinct_function_combinations(), 2);
        assert!(dataset.distinct_words() > 10);
        assert!((dataset.paraphrase_fraction() - 0.5).abs() < 1e-9);
    }

    fn parser_example(i: usize) -> ParserExample {
        ParserExample::new(
            genie_templates::intern::shared().stream_of(&format!("sentence{i} words")),
            vec!["now".to_owned(), "=>".to_owned(), format!("prog{i}")],
        )
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("genie-writer-{tag}-{}", std::process::id()))
    }

    #[test]
    fn sharded_writer_merge_is_shard_count_invariant() {
        let examples: Vec<ParserExample> = (0..37).map(parser_example).collect();
        let mut merged_per_count = Vec::new();
        for shard_count in [1usize, 4, 16] {
            let dir = scratch_dir(&format!("inv{shard_count}"));
            let mut writer = ShardedDatasetWriter::create(&dir, "train", shard_count).unwrap();
            for example in &examples {
                writer.write(example).unwrap();
            }
            assert_eq!(writer.written(), examples.len());
            assert_eq!(writer.paths().len(), shard_count);
            let paths = writer.finish().unwrap();
            merged_per_count.push(ShardedDatasetWriter::merge(&paths).unwrap());
            fs::remove_dir_all(&dir).unwrap();
        }
        assert_eq!(merged_per_count[0].len(), 37);
        assert_eq!(merged_per_count[0], merged_per_count[1]);
        assert_eq!(merged_per_count[1], merged_per_count[2]);
        assert!(merged_per_count[0][0].starts_with("sentence0 words\t"));
        assert!(merged_per_count[0][36].contains("prog36"));
    }

    #[test]
    fn sharded_writer_spreads_lines_across_shards() {
        let dir = scratch_dir("spread");
        let mut writer = ShardedDatasetWriter::create(&dir, "train", 3).unwrap();
        for i in 0..10 {
            writer.write(&parser_example(i)).unwrap();
        }
        let paths = writer.finish().unwrap();
        let lines_per_shard: Vec<usize> = paths
            .iter()
            .map(|p| fs::read_to_string(p).unwrap().lines().count())
            .collect();
        // Round-robin: 10 examples over 3 shards = 4 + 3 + 3.
        assert_eq!(lines_per_shard, vec![4, 3, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seen_unseen_split() {
        let dataset = sample_dataset();
        let reference = Dataset::from_examples(vec![example(
            "list my inbox",
            "now => @com.gmail.inbox() => notify",
            ExampleSource::Synthesized,
        )]);
        let (seen, unseen) = dataset.split_by_seen_programs(&reference);
        assert_eq!(seen.len(), 2);
        assert_eq!(unseen.len(), 2);
    }
}
