//! Dataset types: examples, sources, composition statistics (Fig. 7),
//! program-level splits, and the incremental sharded writers of the
//! streaming pipeline.

use std::collections::{BTreeSet, HashMap};
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use genie_nlp::colfmt::{
    self, ColumnShard, ColumnShardWriter, LoadedTable, StringTable, SHARD_MAGIC,
};
use genie_nlp::intern::{FnvState, Interner, Symbol, TokenStream};
use genie_templates::ExampleFlags;
use luinet::ParserExample;
use thingtalk::Program;

use crate::error::{Error, GenieResult};

/// Where an example came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExampleSource {
    /// Produced directly by the template synthesizer.
    Synthesized,
    /// A (simulated) crowdworker paraphrase of a synthesized sentence.
    Paraphrase,
    /// Produced by parameter expansion or PPDB augmentation of another
    /// example.
    Augmented,
    /// Realistic evaluation data (developer, cheatsheet, IFTTT).
    Evaluation,
}

/// One sentence/program pair flowing through the pipeline.
///
/// The utterance is an interned [`TokenStream`] (see
/// `genie_templates::intern`): pipeline stages splice, compare and
/// fingerprint 4-byte symbols, and the text is materialized exactly once —
/// at TSV-write time or for human-facing output ([`Example::text`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// The natural-language utterance as interned tokens.
    pub utterance: TokenStream,
    /// The target program.
    pub program: Program,
    /// Provenance.
    pub source: ExampleSource,
    /// Structural flags (primitive/compound, filters, parameter passing).
    pub flags: ExampleFlags,
}

/// Conversion into an interned utterance: pre-built token streams pass
/// through untouched; text interns its whitespace words into the shared
/// arena, so the evaluation loaders and tests keep passing plain strings.
pub trait IntoUtterance {
    /// Produce the interned token stream.
    fn into_utterance(self) -> TokenStream;
}

impl IntoUtterance for TokenStream {
    fn into_utterance(self) -> TokenStream {
        self
    }
}

impl IntoUtterance for &str {
    fn into_utterance(self) -> TokenStream {
        genie_templates::intern::shared().stream_of(self)
    }
}

impl IntoUtterance for String {
    fn into_utterance(self) -> TokenStream {
        self.as_str().into_utterance()
    }
}

impl Example {
    /// Create an example, computing flags from the program.
    pub fn new(utterance: impl IntoUtterance, program: Program, source: ExampleSource) -> Self {
        let flags = ExampleFlags::of(&program);
        Example {
            utterance: utterance.into_utterance(),
            program,
            source,
            flags,
        }
    }

    /// Render the utterance through the shared arena (the arena every
    /// pipeline component defaults to).
    pub fn text(&self) -> String {
        genie_templates::intern::shared().render(&self.utterance)
    }

    /// Render the utterance through an explicit arena.
    pub fn text_with(&self, interner: &Interner) -> String {
        interner.render(&self.utterance)
    }

    /// A stable key identifying the program's function combination
    /// (used for the seen/unseen-program splits of §5.1 and §5.4).
    pub fn function_signature(&self) -> String {
        let mut functions: Vec<String> = self
            .program
            .functions()
            .iter()
            .map(|f| f.to_string())
            .collect();
        functions.sort();
        functions.join("+")
    }
}

/// The composition of a dataset, as reported in Fig. 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Composition {
    /// Primitive commands without filters.
    pub primitive: usize,
    /// Primitive commands with filters.
    pub primitive_filters: usize,
    /// Compound commands without parameter passing or filters.
    pub compound: usize,
    /// Compound commands with parameter passing.
    pub compound_param_passing: usize,
    /// Compound commands with filters (including those that also pass
    /// parameters).
    pub compound_filters: usize,
}

impl Composition {
    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.primitive
            + self.primitive_filters
            + self.compound
            + self.compound_param_passing
            + self.compound_filters
    }

    /// The five Fig. 7 shares, in the paper's order, as fractions of the
    /// total.
    pub fn shares(&self) -> [(&'static str, f64); 5] {
        let total = self.total().max(1) as f64;
        [
            ("primitive commands", self.primitive as f64 / total),
            ("+ filters", self.primitive_filters as f64 / total),
            ("compound commands", self.compound as f64 / total),
            (
                "+ parameter passing",
                self.compound_param_passing as f64 / total,
            ),
            ("+ filters", self.compound_filters as f64 / total),
        ]
    }
}

/// A collection of examples with dataset-level statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The examples.
    pub examples: Vec<Example>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Build a dataset from examples.
    pub fn from_examples(examples: Vec<Example>) -> Self {
        Dataset { examples }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Append another dataset.
    pub fn extend(&mut self, other: Dataset) {
        self.examples.extend(other.examples);
    }

    /// The number of distinct programs (by canonical surface form).
    pub fn distinct_programs(&self) -> usize {
        let set: BTreeSet<String> = self
            .examples
            .iter()
            .map(|e| e.program.to_string())
            .collect();
        set.len()
    }

    /// The number of distinct function combinations.
    pub fn distinct_function_combinations(&self) -> usize {
        let set: BTreeSet<String> = self
            .examples
            .iter()
            .map(|e| e.function_signature())
            .collect();
        set.len()
    }

    /// The number of distinct words across all utterances (tokenizer
    /// granularity, via the cached per-symbol expansions — no re-tokenize).
    pub fn distinct_words(&self) -> usize {
        let interner = genie_templates::intern::shared();
        let mut set: BTreeSet<genie_nlp::Symbol> = BTreeSet::new();
        for example in &self.examples {
            for symbol in &example.utterance {
                let mut expansion = TokenStream::new();
                interner.push_tokenized(symbol, &mut expansion);
                set.extend(expansion.iter());
            }
        }
        set.len()
    }

    /// Fraction of examples coming from (simulated) paraphrases.
    pub fn paraphrase_fraction(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        let paraphrases = self
            .examples
            .iter()
            .filter(|e| e.source == ExampleSource::Paraphrase)
            .count();
        paraphrases as f64 / self.examples.len() as f64
    }

    /// The Fig. 7 composition of the dataset.
    pub fn composition(&self) -> Composition {
        let mut composition = Composition::default();
        for example in &self.examples {
            let flags = example.flags;
            if flags.primitive {
                if flags.filter {
                    composition.primitive_filters += 1;
                } else {
                    composition.primitive += 1;
                }
            } else if flags.filter {
                composition.compound_filters += 1;
            } else if flags.param_passing {
                composition.compound_param_passing += 1;
            } else {
                composition.compound += 1;
            }
        }
        composition
    }

    /// Split examples into those whose function combination appears in the
    /// `reference` dataset ("seen programs") and those whose combination does
    /// not ("new programs"), the distinction used in §5.2 and Table 3.
    pub fn split_by_seen_programs(&self, reference: &Dataset) -> (Dataset, Dataset) {
        let seen: BTreeSet<String> = reference
            .examples
            .iter()
            .map(|e| e.function_signature())
            .collect();
        let mut seen_split = Dataset::new();
        let mut new_split = Dataset::new();
        for example in &self.examples {
            if seen.contains(&example.function_signature()) {
                seen_split.examples.push(example.clone());
            } else {
                new_split.examples.push(example.clone());
            }
        }
        (seen_split, new_split)
    }
}

/// The on-disk layout of a sharded dataset.
///
/// Both layouts obey the same canonical-order contract (round-robin shard
/// assignment, merge by interleaving rounds), so the merged stream — and
/// therefore the dataset digest — is identical between them. Choose by
/// consumer: TSV is greppable text for humans and external trainers;
/// columnar is the binary layout of [`genie_nlp::colfmt`] — roughly an
/// order of magnitude smaller, and loadable without re-tokenizing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DatasetFormat {
    /// One `sentence\tprogram` text line per example
    /// (`{stem}.shard-NNNN.tsv`).
    #[default]
    Tsv,
    /// Binary columnar shards (`{stem}.shard-NNNN.col`) sharing one string
    /// table (`{stem}.table.col`).
    Columnar,
}

/// The per-format state behind a [`ShardedDatasetWriter`].
enum ShardBackend {
    Tsv {
        writers: Vec<BufWriter<File>>,
        /// One growable render buffer per shard, reused across rows:
        /// rendering an example reuses the capacity its shard's previous
        /// rows grew, so steady-state writes allocate nothing.
        render_buffers: Vec<String>,
    },
    Columnar {
        shards: Vec<ColumnShardWriter>,
        table: StringTable,
        table_path: PathBuf,
        /// Live-arena symbol → local table id, so repeated utterance tokens
        /// cost one 4-byte hash instead of re-hashing their text.
        symbol_ids: HashMap<Symbol, u32, FnvState>,
        utterance_ids: Vec<u32>,
        program_ids: Vec<u32>,
    },
}

/// An incremental writer that spreads a stream of parser examples across
/// `N` shard files, so arbitrarily large datasets are written with bounded
/// memory and can be consumed shard-by-shard downstream.
///
/// Examples are assigned **round-robin** (`shard = sequence_index % N`):
/// shard files are written in canonical stream order, and
/// [`ShardedDatasetWriter::merge_for_each`] interleaves them back into
/// exactly the original sequence. The merged content is therefore identical
/// for any shard count *and either [`DatasetFormat`]* — the layout is
/// storage, not semantics.
pub struct ShardedDatasetWriter {
    backend: ShardBackend,
    paths: Vec<PathBuf>,
    written: usize,
}

impl ShardedDatasetWriter {
    /// Create `shard_count` TSV shard files `{stem}.shard-NNNN.tsv` under
    /// `dir` (`0` is treated as 1), truncating any existing files.
    pub fn create(dir: impl AsRef<Path>, stem: &str, shard_count: usize) -> io::Result<Self> {
        Self::create_with_format(dir, stem, shard_count, DatasetFormat::Tsv)
    }

    /// [`ShardedDatasetWriter::create`] with an explicit [`DatasetFormat`].
    ///
    /// Columnar shards are buffered as id columns and written at
    /// [`ShardedDatasetWriter::finish`], together with the shared string
    /// table `{stem}.table.col`.
    pub fn create_with_format(
        dir: impl AsRef<Path>,
        stem: &str,
        shard_count: usize,
        format: DatasetFormat,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let shard_count = shard_count.max(1);
        let mut paths = Vec::new();
        let backend = match format {
            DatasetFormat::Tsv => {
                let mut writers = Vec::new();
                for shard in 0..shard_count {
                    let path = dir.join(format!("{stem}.shard-{shard:04}.tsv"));
                    writers.push(BufWriter::new(File::create(&path)?));
                    paths.push(path);
                }
                let render_buffers = vec![String::new(); writers.len()];
                ShardBackend::Tsv {
                    writers,
                    render_buffers,
                }
            }
            DatasetFormat::Columnar => {
                for shard in 0..shard_count {
                    paths.push(dir.join(format!("{stem}.shard-{shard:04}.col")));
                }
                ShardBackend::Columnar {
                    shards: (0..shard_count).map(|_| ColumnShardWriter::new()).collect(),
                    table: StringTable::new(),
                    table_path: dir.join(format!("{stem}.table.col")),
                    symbol_ids: HashMap::default(),
                    utterance_ids: Vec::new(),
                    program_ids: Vec::new(),
                }
            }
        };
        Ok(ShardedDatasetWriter {
            backend,
            paths,
            written: 0,
        })
    }

    /// The format this writer produces.
    pub fn format(&self) -> DatasetFormat {
        match self.backend {
            ShardBackend::Tsv { .. } => DatasetFormat::Tsv,
            ShardBackend::Columnar { .. } => DatasetFormat::Columnar,
        }
    }

    /// The shared string-table path of a columnar writer (`None` for TSV).
    pub fn table_path(&self) -> Option<&Path> {
        match &self.backend {
            ShardBackend::Tsv { .. } => None,
            ShardBackend::Columnar { table_path, .. } => Some(table_path),
        }
    }

    /// Append one parser example to the next shard in round-robin order.
    ///
    /// TSV renders the row text into the shard's reused buffer (this is the
    /// single point where the streamed utterance becomes text). Columnar
    /// never renders: sentence symbols map to local table ids through a
    /// symbol cache, program tokens intern into the shared string table,
    /// and the row is four column appends.
    pub fn write(&mut self, example: &ParserExample) -> io::Result<()> {
        let shard = self.written % self.paths.len();
        match &mut self.backend {
            ShardBackend::Tsv {
                writers,
                render_buffers,
            } => {
                let line = &mut render_buffers[shard];
                line.clear();
                example.render_tsv_row(line);
                writers[shard].write_all(line.as_bytes())?;
            }
            ShardBackend::Columnar {
                shards,
                table,
                symbol_ids,
                utterance_ids,
                program_ids,
                ..
            } => {
                let interner: &'static Interner = genie_templates::intern::shared();
                utterance_ids.clear();
                for symbol in &example.sentence {
                    let id = *symbol_ids
                        .entry(symbol)
                        .or_insert_with(|| table.id_of(interner.resolve(symbol)));
                    utterance_ids.push(id);
                }
                program_ids.clear();
                for token in &example.program {
                    program_ids.push(table.id_of(token));
                }
                shards[shard].push_row(self.written as u64, 0, utterance_ids, program_ids);
            }
        }
        self.written += 1;
        Ok(())
    }

    /// Number of examples written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// The shard file paths, in shard order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Flush (TSV) or write out (columnar, including the shared string
    /// table) every shard, and return the shard paths. Columnar artifacts
    /// are sealed with a checksum footer and renamed into place atomically
    /// (see [`colfmt::write_artifact`]), so a crash mid-write can never
    /// leave a half-written shard under the final name.
    pub fn finish(mut self) -> GenieResult<Vec<PathBuf>> {
        match &mut self.backend {
            ShardBackend::Tsv { writers, .. } => {
                for writer in writers {
                    writer.flush()?;
                }
            }
            ShardBackend::Columnar {
                shards,
                table,
                table_path,
                ..
            } => {
                for (shard, path) in shards.iter().zip(&self.paths) {
                    shard.write_file(path)?;
                }
                table.write_file(table_path)?;
            }
        }
        Ok(self.paths)
    }

    /// Interleave round-robin shard files back into the canonical stream,
    /// handing each `sentence\tprogram` line to `sink`: round `k` yields
    /// line `k` of each shard, in shard order. The sequence is exactly what
    /// was written, for any shard count.
    ///
    /// The format is sniffed from the first shard's magic bytes, and both
    /// formats yield identical lines — columnar rows are rendered through
    /// the shard set's string table on the way out. Only one line is
    /// resident at a time (the columnar path holds the loaded id columns,
    /// which are an order of magnitude smaller than the text).
    pub fn merge_for_each(paths: &[PathBuf], sink: impl FnMut(String)) -> GenieResult<()> {
        let Some(first) = paths.first() else {
            return Ok(());
        };
        match colfmt::file_magic(first)? {
            Some(magic) if magic == SHARD_MAGIC => Self::merge_columnar(paths, sink),
            _ => Self::merge_tsv(paths, sink),
        }
    }

    fn merge_tsv(paths: &[PathBuf], mut sink: impl FnMut(String)) -> GenieResult<()> {
        let mut readers = Vec::new();
        for path in paths {
            readers.push(BufReader::new(File::open(path)?).lines());
        }
        loop {
            let mut any = false;
            for reader in &mut readers {
                if let Some(line) = reader.next() {
                    sink(line.map_err(Error::Io)?);
                    any = true;
                }
            }
            if !any {
                return Ok(());
            }
        }
    }

    fn merge_columnar(paths: &[PathBuf], mut sink: impl FnMut(String)) -> GenieResult<()> {
        let first = paths.first().expect("checked by merge_for_each");
        let table = load_columnar_table(first)?;
        let mut shards = Vec::with_capacity(paths.len());
        for path in paths {
            let bytes = colfmt::read_artifact(path, "colfmt.read")?;
            shards.push(ColumnShard::from_file_bytes(&bytes)?);
        }
        let rounds = shards.iter().map(ColumnShard::rows).max().unwrap_or(0);
        for round in 0..rounds {
            for shard in &shards {
                if round >= shard.rows() {
                    continue;
                }
                let mut line = String::new();
                render_columnar_row(&table, shard, round, &mut line)?;
                sink(line);
            }
        }
        Ok(())
    }
}

/// Derive the shared string-table path of a columnar shard set from any of
/// its shard paths (`{stem}.shard-NNNN.col` → `{stem}.table.col`).
fn columnar_table_path(shard: &Path) -> GenieResult<PathBuf> {
    let name = shard.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let stem =
        name.find(".shard-")
            .map(|at| &name[..at])
            .ok_or_else(|| Error::CorruptArtifact {
                detail: format!(
                    "columnar shard `{}` has no `.shard-` component to derive its table path from",
                    shard.display()
                ),
            })?;
    Ok(shard.with_file_name(format!("{stem}.table.col")))
}

/// Load the shared string table of the columnar shard set `shard` belongs
/// to.
fn load_columnar_table(shard: &Path) -> GenieResult<LoadedTable> {
    let table_path = columnar_table_path(shard)?;
    let bytes = colfmt::read_artifact(&table_path, "colfmt.read")?;
    Ok(LoadedTable::from_file_bytes(&bytes)?)
}

/// Render one columnar row as the `sentence\tprogram` line its TSV twin
/// would carry (without the trailing newline, matching what
/// [`ShardedDatasetWriter::merge_for_each`] yields for TSV shards).
fn render_columnar_row(
    table: &LoadedTable,
    shard: &ColumnShard,
    row: usize,
    out: &mut String,
) -> GenieResult<()> {
    for (i, &id) in shard.utterance(row).iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(table.get(id)?);
    }
    out.push('\t');
    for (i, &id) in shard.program(row).iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(table.get(id)?);
    }
    Ok(())
}

/// Load one columnar shard back into [`ParserExample`]s, in the shard's
/// row order.
///
/// The shard set's string table is re-interned into the live arena in one
/// bulk pass (one hash per *distinct* token text); after that every row is
/// id-to-symbol mapping — no tokenization, no per-token hashing. This is
/// how a worker process gets its slice of a dataset without paying the
/// text costs the columnar format exists to avoid.
pub fn read_columnar_shard(path: &Path) -> GenieResult<Vec<ParserExample>> {
    let table = load_columnar_table(path)?;
    let bytes = colfmt::read_artifact(path, "colfmt.read")?;
    let shard = ColumnShard::from_file_bytes(&bytes)?;
    let interner: &'static Interner = genie_templates::intern::shared();
    let symbols: Vec<Symbol> = table.iter().map(|text| interner.intern(text)).collect();
    let symbol_of = |id: u32| -> GenieResult<Symbol> {
        symbols
            .get(id as usize)
            .copied()
            .ok_or_else(|| Error::CorruptArtifact {
                detail: format!(
                    "columnar shard `{}`: token id {id} out of range (table holds {} strings)",
                    path.display(),
                    symbols.len()
                ),
            })
    };
    let mut examples = Vec::with_capacity(shard.rows());
    for row in 0..shard.rows() {
        let mut sentence = TokenStream::new();
        for &id in shard.utterance(row) {
            sentence.push(symbol_of(id)?);
        }
        let mut program = Vec::with_capacity(shard.program(row).len());
        for &id in shard.program(row) {
            program.push(interner.resolve(symbol_of(id)?).to_owned());
        }
        examples.push(ParserExample::new(sentence, program));
    }
    Ok(examples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thingtalk::syntax::parse_program;

    fn example(utterance: &str, program: &str, source: ExampleSource) -> Example {
        Example::new(utterance, parse_program(program).unwrap(), source)
    }

    fn sample_dataset() -> Dataset {
        Dataset::from_examples(vec![
            example("show me my emails", "now => @com.gmail.inbox() => notify", ExampleSource::Synthesized),
            example(
                "emails from alice",
                "now => @com.gmail.inbox() filter sender == \"alice\" => notify",
                ExampleSource::Synthesized,
            ),
            example(
                "when i get an email send a slack message",
                "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#x\"^^tt:slack_channel, message = \"mail\")",
                ExampleSource::Paraphrase,
            ),
            example(
                "when i get an email forward the subject to slack",
                "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#x\"^^tt:slack_channel, message = subject)",
                ExampleSource::Paraphrase,
            ),
        ])
    }

    #[test]
    fn composition_buckets() {
        let dataset = sample_dataset();
        let composition = dataset.composition();
        assert_eq!(composition.primitive, 1);
        assert_eq!(composition.primitive_filters, 1);
        assert_eq!(composition.compound, 1);
        assert_eq!(composition.compound_param_passing, 1);
        assert_eq!(composition.total(), 4);
        let shares = composition.shares();
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_counts() {
        let dataset = sample_dataset();
        assert_eq!(dataset.len(), 4);
        assert_eq!(dataset.distinct_programs(), 4);
        assert_eq!(dataset.distinct_function_combinations(), 2);
        assert!(dataset.distinct_words() > 10);
        assert!((dataset.paraphrase_fraction() - 0.5).abs() < 1e-9);
    }

    fn parser_example(i: usize) -> ParserExample {
        ParserExample::new(
            genie_templates::intern::shared().stream_of(&format!("sentence{i} words")),
            vec!["now".to_owned(), "=>".to_owned(), format!("prog{i}")],
        )
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("genie-writer-{tag}-{}", std::process::id()))
    }

    fn merge_lines(paths: &[PathBuf]) -> Vec<String> {
        let mut out = Vec::new();
        ShardedDatasetWriter::merge_for_each(paths, |line| out.push(line)).unwrap();
        out
    }

    #[test]
    fn sharded_writer_merge_is_shard_count_invariant() {
        let examples: Vec<ParserExample> = (0..37).map(parser_example).collect();
        let mut merged_per_count = Vec::new();
        for shard_count in [1usize, 4, 16] {
            let dir = scratch_dir(&format!("inv{shard_count}"));
            let mut writer = ShardedDatasetWriter::create(&dir, "train", shard_count).unwrap();
            for example in &examples {
                writer.write(example).unwrap();
            }
            assert_eq!(writer.written(), examples.len());
            assert_eq!(writer.paths().len(), shard_count);
            assert_eq!(writer.format(), DatasetFormat::Tsv);
            assert!(writer.table_path().is_none());
            let paths = writer.finish().unwrap();
            merged_per_count.push(merge_lines(&paths));
            fs::remove_dir_all(&dir).unwrap();
        }
        assert_eq!(merged_per_count[0].len(), 37);
        assert_eq!(merged_per_count[0], merged_per_count[1]);
        assert_eq!(merged_per_count[1], merged_per_count[2]);
        assert!(merged_per_count[0][0].starts_with("sentence0 words\t"));
        assert!(merged_per_count[0][36].contains("prog36"));
    }

    #[test]
    fn columnar_writer_merges_identically_to_tsv() {
        let examples: Vec<ParserExample> = (0..37).map(parser_example).collect();
        let mut merged_per_format = Vec::new();
        for format in [DatasetFormat::Tsv, DatasetFormat::Columnar] {
            let dir = scratch_dir(&format!("fmt-{format:?}"));
            let mut writer =
                ShardedDatasetWriter::create_with_format(&dir, "train", 4, format).unwrap();
            for example in &examples {
                writer.write(example).unwrap();
            }
            assert_eq!(writer.format(), format);
            if format == DatasetFormat::Columnar {
                assert!(writer.table_path().unwrap().ends_with("train.table.col"));
            }
            let paths = writer.finish().unwrap();
            merged_per_format.push(merge_lines(&paths));
            fs::remove_dir_all(&dir).unwrap();
        }
        assert_eq!(merged_per_format[0].len(), 37);
        assert_eq!(merged_per_format[0], merged_per_format[1]);
    }

    #[test]
    fn columnar_shards_read_back_as_examples() {
        let examples: Vec<ParserExample> = (0..10).map(parser_example).collect();
        let dir = scratch_dir("readback");
        let mut writer =
            ShardedDatasetWriter::create_with_format(&dir, "train", 3, DatasetFormat::Columnar)
                .unwrap();
        for example in &examples {
            writer.write(example).unwrap();
        }
        let paths = writer.finish().unwrap();
        // Round-robin: shard s holds examples s, s+3, s+6, ...
        let mut roundtripped = vec![Vec::new(); 3];
        for (shard, path) in paths.iter().enumerate() {
            roundtripped[shard] = read_columnar_shard(path).unwrap();
        }
        assert_eq!(
            roundtripped.iter().map(Vec::len).sum::<usize>(),
            examples.len()
        );
        for (i, example) in examples.iter().enumerate() {
            assert_eq!(&roundtripped[i % 3][i / 3], example, "example {i}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_columnar_artifacts_are_typed_errors() {
        let dir = scratch_dir("corrupt");
        let mut writer =
            ShardedDatasetWriter::create_with_format(&dir, "train", 2, DatasetFormat::Columnar)
                .unwrap();
        for i in 0..6 {
            writer.write(&parser_example(i)).unwrap();
        }
        let paths = writer.finish().unwrap();
        // Truncating the string table corrupts the whole shard set.
        let table_path = dir.join("train.table.col");
        let table_bytes = fs::read(&table_path).unwrap();
        fs::write(&table_path, &table_bytes[..table_bytes.len() / 2]).unwrap();
        let error = ShardedDatasetWriter::merge_for_each(&paths, |_| {}).unwrap_err();
        assert!(
            matches!(error, Error::CorruptArtifact { .. }),
            "got {error:?}"
        );
        let error = read_columnar_shard(&paths[0]).unwrap_err();
        assert!(
            matches!(error, Error::CorruptArtifact { .. }),
            "got {error:?}"
        );
        // A missing table is an I/O error, not a panic.
        fs::remove_file(&table_path).unwrap();
        let error = ShardedDatasetWriter::merge_for_each(&paths, |_| {}).unwrap_err();
        assert!(matches!(error, Error::Io(_)), "got {error:?}");
        // A shard path without the `.shard-` component cannot name a table.
        let odd = dir.join("noshard.col");
        fs::copy(&paths[0], &odd).unwrap();
        let error = read_columnar_shard(&odd).unwrap_err();
        assert!(
            matches!(error, Error::CorruptArtifact { .. }),
            "got {error:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_writer_spreads_lines_across_shards() {
        let dir = scratch_dir("spread");
        let mut writer = ShardedDatasetWriter::create(&dir, "train", 3).unwrap();
        for i in 0..10 {
            writer.write(&parser_example(i)).unwrap();
        }
        let paths = writer.finish().unwrap();
        let lines_per_shard: Vec<usize> = paths
            .iter()
            .map(|p| fs::read_to_string(p).unwrap().lines().count())
            .collect();
        // Round-robin: 10 examples over 3 shards = 4 + 3 + 3.
        assert_eq!(lines_per_shard, vec![4, 3, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seen_unseen_split() {
        let dataset = sample_dataset();
        let reference = Dataset::from_examples(vec![example(
            "list my inbox",
            "now => @com.gmail.inbox() => notify",
            ExampleSource::Synthesized,
        )]);
        let (seen, unseen) = dataset.split_by_seen_programs(&reference);
        assert_eq!(seen.len(), 2);
        assert_eq!(unseen.len(), 2);
    }
}
