//! The training-set builder (Fig. 2, §3.4).
//!
//! The pipeline synthesizes sentences with the template engine, samples a
//! subset for (simulated) paraphrasing, expands parameters, applies PPDB
//! augmentation, and assembles the final training set. Three training
//! strategies are supported, matching Fig. 8: synthesized-only,
//! paraphrase-only (the traditional methodology), and the Genie strategy
//! that combines both. Ablation switches (Table 3) control
//! canonicalization, keyword parameters, type annotations, parameter
//! expansion and the pretrained decoder LM.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use std::sync::Arc;

use genie_nlp::Ppdb;
use genie_templates::dedup::fingerprint;
use genie_templates::{
    BatchObserver, BatchProvider, GeneratorConfig, Interner, SentenceGenerator, SynthesisStats,
    SynthesizedExample,
};
use luinet::{ParserExample, ProgramLm};
use thingpedia::{ParamDatasets, Thingpedia};
use thingtalk::canonical::canonicalized;
use thingtalk::nn_syntax::{to_tokens, NnSyntaxOptions};

use genie_parallel::item_seed;

use crate::dataset::{Dataset, Example, ExampleSource, ShardedDatasetWriter};
use crate::error::{Error, GenieResult};
use crate::expansion::{augment_ppdb, expand_dataset, expand_parameters};
use crate::paraphrase::{ParaphraseConfig, ParaphraseSimulator};

/// Which data the parser is trained on (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingStrategy {
    /// Only synthesized sentences.
    SynthesizedOnly,
    /// Only (simulated) paraphrases — the Wang-et-al methodology.
    ParaphraseOnly,
    /// Synthesized + paraphrases + augmentation — the Genie strategy.
    Genie,
}

impl TrainingStrategy {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TrainingStrategy::SynthesizedOnly => "Synthesized Only",
            TrainingStrategy::ParaphraseOnly => "Paraphrase Only",
            TrainingStrategy::Genie => "Genie",
        }
    }
}

/// Options controlling how programs are rendered into parser tokens,
/// bundling the NN-syntax settings with the canonicalization switch of the
/// Table 3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NnOptions {
    /// Keyword parameters / type annotations (NN syntax).
    pub syntax: NnSyntaxOptions,
    /// Canonicalize programs before serialization. Disabling this randomly
    /// shuffles keyword parameters per training example (the paper's
    /// "− canonicalization" row).
    pub canonicalize: bool,
}

impl Default for NnOptions {
    fn default() -> Self {
        NnOptions {
            syntax: NnSyntaxOptions::default(),
            canonicalize: true,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Template-synthesis settings.
    pub synthesis: GeneratorConfig,
    /// Paraphrase-simulation settings.
    pub paraphrase: ParaphraseConfig,
    /// How many synthesized sentences are sent for paraphrasing.
    pub paraphrase_sample: usize,
    /// Parameter-expansion factor for paraphrases (paper: 10–30×).
    pub expansion_paraphrase: usize,
    /// Parameter-expansion factor for synthesized sentences (paper: 1–4×).
    pub expansion_synthesized: usize,
    /// Master switch for parameter expansion (Table 3 ablation).
    pub parameter_expansion: bool,
    /// Seed for sampling decisions in the pipeline itself.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            synthesis: GeneratorConfig::default(),
            paraphrase: ParaphraseConfig::default(),
            paraphrase_sample: 400,
            expansion_paraphrase: 3,
            expansion_synthesized: 1,
            parameter_expansion: true,
            seed: 0,
        }
    }
}

impl PipelineConfig {
    /// Start a validating builder seeded with the default configuration.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::default(),
        }
    }

    /// Check an already-assembled configuration, including the nested
    /// synthesis and paraphrase configs.
    pub fn validate(&self) -> Result<(), genie_templates::ConfigError> {
        self.synthesis.validate()?;
        self.paraphrase.validate()?;
        Ok(())
    }
}

/// Validating builder for [`PipelineConfig`]. Nested configs are taken
/// whole (build them with their own builders); `build()` re-validates the
/// complete assembly.
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Template-synthesis settings.
    pub fn synthesis(mut self, value: GeneratorConfig) -> Self {
        self.config.synthesis = value;
        self
    }

    /// Paraphrase-simulation settings.
    pub fn paraphrase(mut self, value: ParaphraseConfig) -> Self {
        self.config.paraphrase = value;
        self
    }

    /// How many synthesized sentences are sent for paraphrasing.
    pub fn paraphrase_sample(mut self, value: usize) -> Self {
        self.config.paraphrase_sample = value;
        self
    }

    /// Parameter-expansion factor for paraphrases.
    pub fn expansion_paraphrase(mut self, value: usize) -> Self {
        self.config.expansion_paraphrase = value;
        self
    }

    /// Parameter-expansion factor for synthesized sentences.
    pub fn expansion_synthesized(mut self, value: usize) -> Self {
        self.config.expansion_synthesized = value;
        self
    }

    /// Master switch for parameter expansion.
    pub fn parameter_expansion(mut self, value: bool) -> Self {
        self.config.parameter_expansion = value;
        self
    }

    /// Seed for sampling decisions in the pipeline itself.
    pub fn seed(mut self, value: u64) -> Self {
        self.config.seed = value;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<PipelineConfig, genie_templates::ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Counters from one fused streaming run ([`DataPipeline::run_streaming`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Synthesized sentences that entered the fused stages (post-dedup).
    pub synthesized: usize,
    /// Paraphrases produced by the simulated crowdworkers.
    pub paraphrases: usize,
    /// Parameter-expanded / PPDB-augmented variants.
    pub augmented: usize,
    /// Parser examples handed to the sink in total.
    pub emitted: usize,
    /// Counters of the underlying synthesis stream.
    pub synthesis: SynthesisStats,
}

/// The assembled training material, kept separated by provenance so the
/// training strategies and Fig. 7 statistics can be computed.
#[derive(Debug, Clone, Default)]
pub struct TrainingData {
    /// Synthesized examples.
    pub synthesized: Dataset,
    /// Simulated crowdworker paraphrases.
    pub paraphrases: Dataset,
    /// Parameter-expanded / PPDB-augmented examples.
    pub augmented: Dataset,
}

impl TrainingData {
    /// The dataset a given training strategy sees.
    pub fn for_strategy(&self, strategy: TrainingStrategy) -> Dataset {
        let mut out = Dataset::new();
        match strategy {
            TrainingStrategy::SynthesizedOnly => out.extend(self.synthesized.clone()),
            TrainingStrategy::ParaphraseOnly => out.extend(self.paraphrases.clone()),
            TrainingStrategy::Genie => {
                out.extend(self.synthesized.clone());
                out.extend(self.paraphrases.clone());
                out.extend(self.augmented.clone());
            }
        }
        out
    }

    /// The full Genie training set.
    pub fn combined(&self) -> Dataset {
        self.for_strategy(TrainingStrategy::Genie)
    }
}

/// The end-to-end training-set builder.
pub struct DataPipeline<'a> {
    library: &'a Thingpedia,
    datasets: ParamDatasets,
    config: PipelineConfig,
    /// Snapshot-scoped synthesis arena (live worlds). `None` — the default —
    /// synthesizes straight into the process-shared arena, exactly as
    /// before the live subsystem existed.
    synth_interner: Option<Arc<Interner>>,
}

impl<'a> DataPipeline<'a> {
    /// Create a pipeline over a skill library.
    pub fn new(library: &'a Thingpedia, config: PipelineConfig) -> Self {
        DataPipeline {
            library,
            datasets: ParamDatasets::builtin(),
            config,
            synth_interner: None,
        }
    }

    /// Create a pipeline whose *synthesis half* (phrase pools, construct
    /// vocabulary, dedup keys) interns into a caller-owned snapshot arena
    /// instead of the process-shared one. The arena is pre-seeded for the
    /// library, so symbol assignment inside the snapshot is worker-count-
    /// and snapshot-count-invariant. Downstream fused stages (paraphrase,
    /// expansion, parser-example conversion) still speak the shared arena:
    /// each synthesized utterance is re-interned at the sequential fuse
    /// boundary, which keeps the model layer's `&'static str` vocabulary
    /// untouched and the emitted text byte-identical either way.
    pub fn with_interner(
        library: &'a Thingpedia,
        config: PipelineConfig,
        interner: Arc<Interner>,
    ) -> Self {
        DataPipeline {
            library,
            datasets: ParamDatasets::builtin(),
            config,
            synth_interner: Some(interner),
        }
    }

    /// The skill library the pipeline targets.
    pub fn library(&self) -> &Thingpedia {
        self.library
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The snapshot arena the synthesis half interns into, when one was
    /// attached with [`DataPipeline::with_interner`].
    pub fn synth_interner(&self) -> Option<&Arc<Interner>> {
        self.synth_interner.as_ref()
    }

    /// The sentence generator this pipeline runs: snapshot-arena-scoped
    /// when one is attached, shared-arena otherwise.
    fn generator(&self) -> SentenceGenerator<'a> {
        match &self.synth_interner {
            Some(arena) => {
                SentenceGenerator::with_interner(self.library, self.config.synthesis, arena.clone())
            }
            None => SentenceGenerator::new(self.library, self.config.synthesis),
        }
    }

    /// Re-intern a synthesized utterance from the snapshot arena into the
    /// process-shared one (a no-op without a snapshot arena). Called at
    /// sequential points only, so shared-arena growth stays deterministic
    /// for a fixed call sequence; rendering is injective, so the text is
    /// unchanged.
    fn bridge_to_shared(&self, example: &mut SynthesizedExample) {
        if let Some(snapshot) = &self.synth_interner {
            let text = snapshot.render(&example.utterance);
            example.utterance = genie_templates::intern::shared().stream_of(&text);
        }
    }

    /// Run synthesis, paraphrasing and augmentation.
    ///
    /// # Errors
    ///
    /// Propagates parameter-expansion failures (missing dataset in a
    /// hand-assembled registry); infallible with the builtin datasets.
    pub fn build(&self) -> GenieResult<TrainingData> {
        // Validate even hand-assembled configs at the choke point: the
        // fields are still `pub`, and e.g. an out-of-range `error_rate`
        // would otherwise panic inside the paraphrase simulation.
        self.config.validate()?;
        let generator = self.generator();
        let mut synthesized_raw = generator.synthesize();
        for example in &mut synthesized_raw {
            self.bridge_to_shared(example);
        }
        let synthesized = Dataset::from_examples(
            synthesized_raw
                .iter()
                .map(|e| {
                    Example::new(
                        e.utterance.clone(),
                        e.program.clone(),
                        ExampleSource::Synthesized,
                    )
                })
                .collect(),
        );

        // Sample synthesized sentences for paraphrasing.
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut to_paraphrase: Vec<&Example> = synthesized.examples.iter().collect();
        to_paraphrase.shuffle(&mut rng);
        to_paraphrase.truncate(self.config.paraphrase_sample);
        let simulator = ParaphraseSimulator::new(self.config.paraphrase);
        let paraphrases = Dataset::from_examples(simulator.paraphrase_all_with_threads(
            &to_paraphrase.into_iter().cloned().collect::<Vec<_>>(),
            self.config.synthesis.threads,
        ));

        // Parameter expansion / augmentation.
        let augmented = if self.config.parameter_expansion {
            let mut expanded = expand_dataset(
                &paraphrases.examples,
                &self.datasets,
                |_| self.config.expansion_paraphrase,
                self.config.seed.wrapping_add(1),
                self.config.synthesis.threads,
            )?;
            expanded.extend(expand_dataset(
                &synthesized.examples,
                &self.datasets,
                |e| {
                    if e.flags.primitive {
                        self.config.expansion_synthesized
                    } else {
                        self.config.expansion_synthesized.saturating_sub(1)
                    }
                },
                self.config.seed.wrapping_add(2),
                self.config.synthesis.threads,
            )?);
            Dataset::from_examples(expanded)
        } else {
            Dataset::new()
        };

        Ok(TrainingData {
            synthesized,
            paraphrases,
            augmented,
        })
    }

    /// Run the fused streaming pipeline: every batch of synthesized
    /// sentences flows synthesize → paraphrase → parameter expansion →
    /// parser-example conversion and is handed to `sink` before the next
    /// batch is produced, so the full dataset is **never resident** — peak
    /// memory is one fused batch plus the dedup keys.
    ///
    /// Differences from the materializing [`DataPipeline::build`]:
    /// paraphrase candidates are selected by a deterministic fingerprint of
    /// the stream index at a rate targeting
    /// [`PipelineConfig::paraphrase_sample`] sentences over the expected
    /// stream — an unbiased spread across every construct rule without the
    /// whole-dataset shuffle (and barrier) `build` uses, though the realized
    /// count is approximate rather than exact. All per-example randomness is
    /// keyed on the example's global stream index, so the emitted sequence
    /// is byte-identical across thread counts and dedup shard counts.
    pub fn run_streaming(
        &self,
        options: NnOptions,
        sink: impl FnMut(ParserExample),
    ) -> GenieResult<StreamStats> {
        self.run_streaming_observed(options, None, None, sink)
    }

    /// [`DataPipeline::run_streaming`] with the incremental-re-synthesis
    /// hooks of the live subsystem threaded through to
    /// [`SentenceGenerator::synthesize_streaming_observed`]:
    ///
    /// * `provider` — consulted per `(rule, batch)` synthesis work item; a
    ///   `Some` return substitutes cached candidates for live sampling
    ///   (batches whose phrase pools a skill delta did not touch);
    /// * `observer` — receives every completed batch (candidates,
    ///   fingerprints, pool draws) at the canonical sink, which is what the
    ///   live subsystem memoizes for the *next* delta.
    pub fn run_streaming_observed(
        &self,
        options: NnOptions,
        provider: Option<BatchProvider<'_>>,
        observer: Option<BatchObserver<'_>>,
        mut sink: impl FnMut(ParserExample),
    ) -> GenieResult<StreamStats> {
        self.config.validate()?;
        let generator = self.generator();
        let simulator = ParaphraseSimulator::new(self.config.paraphrase);
        let ppdb = Ppdb::builtin().compile(genie_templates::intern::shared());
        let fuse = match self.config.synthesis.batch_size {
            0 => 256,
            n => n,
        };
        // Select ~paraphrase_sample of the expected pre-dedup candidates,
        // spread over the whole stream: an index is selected when its
        // fingerprint falls under `paraphrase_sample / expected` of the
        // 64-bit space.
        let registry = genie_templates::RuleRegistry::builtin();
        let expected = registry
            .enabled_rules(&self.config.synthesis)
            .len()
            .saturating_mul(self.config.synthesis.target_per_rule)
            .max(1);
        let paraphrase_threshold = if self.config.paraphrase_sample >= expected {
            u64::MAX
        } else {
            ((self.config.paraphrase_sample as u128 * u64::MAX as u128) / expected as u128) as u64
        };
        let mut stats = StreamStats::default();
        let mut pending: Vec<SynthesizedExample> = Vec::new();
        let mut next_index = 0usize;
        // The synthesis driver's sink is infallible, so the first fuse
        // error is parked here and returned after the driver finishes;
        // synthesis itself still runs to completion (it has no cancellation
        // channel), but its remaining output is discarded unprocessed.
        let mut failure: Option<Error> = None;
        let synthesis = generator.synthesize_streaming_observed(
            &registry,
            provider,
            observer,
            |mut example| {
                if failure.is_some() {
                    return;
                }
                self.bridge_to_shared(&mut example);
                pending.push(example);
                if pending.len() >= fuse {
                    if let Err(error) = self.fuse_batch(
                        &simulator,
                        &ppdb,
                        options,
                        paraphrase_threshold,
                        &mut pending,
                        &mut next_index,
                        &mut stats,
                        &mut sink,
                    ) {
                        failure = Some(error);
                    }
                }
            },
        );
        if let Some(error) = failure {
            return Err(error);
        }
        self.fuse_batch(
            &simulator,
            &ppdb,
            options,
            paraphrase_threshold,
            &mut pending,
            &mut next_index,
            &mut stats,
            &mut sink,
        )?;
        stats.synthesis = synthesis;
        Ok(stats)
    }

    /// [`DataPipeline::run_streaming`] writing into an incremental
    /// [`ShardedDatasetWriter`]; the first write error aborts further writes
    /// and is returned after the stream drains.
    pub fn run_streaming_sharded(
        &self,
        options: NnOptions,
        writer: &mut ShardedDatasetWriter,
    ) -> GenieResult<StreamStats> {
        let mut io_error: Option<std::io::Error> = None;
        let stats = self.run_streaming(options, |example| {
            if io_error.is_none() {
                if let Err(error) = writer.write(&example) {
                    io_error = Some(error);
                }
            }
        })?;
        match io_error {
            Some(error) => Err(error.into()),
            None => Ok(stats),
        }
    }

    /// Fuse one batch: convert, paraphrase, expand and emit the pending
    /// synthesized examples in parallel, then drain them to the sink in
    /// canonical order.
    #[allow(clippy::too_many_arguments)]
    fn fuse_batch(
        &self,
        simulator: &ParaphraseSimulator,
        ppdb: &genie_nlp::ppdb::CompiledPpdb,
        options: NnOptions,
        paraphrase_threshold: u64,
        pending: &mut Vec<SynthesizedExample>,
        next_index: &mut usize,
        stats: &mut StreamStats,
        sink: &mut dyn FnMut(ParserExample),
    ) -> GenieResult<()> {
        if pending.is_empty() {
            return Ok(());
        }
        let start = *next_index;
        *next_index += pending.len();
        let config = &self.config;
        let conversion_base = config.seed.wrapping_add(99);

        type FusedBatch = (Vec<ParserExample>, usize, usize);
        let produced = genie_parallel::par_map(
            config.synthesis.threads,
            pending,
            |offset, synthesized| -> GenieResult<FusedBatch> {
                // All randomness below is keyed on the global stream index,
                // so batch boundaries, threads and shards never change it.
                let global = start + offset;
                let example = Example::new(
                    synthesized.utterance.clone(),
                    synthesized.program.clone(),
                    ExampleSource::Synthesized,
                );
                let mut derived: Vec<Example> = Vec::new();
                let mut paraphrased = 0usize;
                let mut augmented = 0usize;

                // Fingerprint-based selection spreads the paraphrase budget
                // over the whole stream instead of its head, so every
                // construct rule contributes paraphrase-derived data.
                let selector = fingerprint(&(config.paraphrase.seed, global as u64));
                if paraphrase_threshold == u64::MAX || selector < paraphrase_threshold {
                    let mut rng = StdRng::seed_from_u64(item_seed(config.paraphrase.seed, global));
                    let rewrites = simulator.paraphrase(&example, &mut rng);
                    paraphrased = rewrites.len();
                    derived.extend(rewrites);
                }

                if config.parameter_expansion {
                    let mut rng =
                        StdRng::seed_from_u64(item_seed(config.seed.wrapping_add(1), global));
                    let mut expanded: Vec<Example> = Vec::new();
                    for rewrite in &derived {
                        expanded.extend(expand_parameters(
                            rewrite,
                            &self.datasets,
                            config.expansion_paraphrase,
                            &mut rng,
                        )?);
                    }
                    let synthesized_factor = if example.flags.primitive {
                        config.expansion_synthesized
                    } else {
                        config.expansion_synthesized.saturating_sub(1)
                    };
                    expanded.extend(expand_parameters(
                        &example,
                        &self.datasets,
                        synthesized_factor,
                        &mut rng,
                    )?);
                    if rng.gen_bool(0.3) {
                        expanded.extend(augment_ppdb(&example, ppdb, 1, &mut rng));
                    }
                    augmented = expanded.len();
                    derived.extend(expanded);
                }

                let mut out = Vec::with_capacity(1 + derived.len());
                let mut rng = StdRng::seed_from_u64(item_seed(conversion_base, global));
                out.push(self.to_parser_example(&example, options, &mut rng));
                for (position, rewrite) in derived.iter().enumerate() {
                    let mut rng = StdRng::seed_from_u64(item_seed(
                        item_seed(conversion_base, global),
                        position + 1,
                    ));
                    out.push(self.to_parser_example(rewrite, options, &mut rng));
                }
                Ok((out, paraphrased, augmented))
            },
        );

        stats.synthesized += pending.len();
        for produced in produced {
            let (examples, paraphrased, augmented) = produced?;
            stats.paraphrases += paraphrased;
            stats.augmented += augmented;
            for example in examples {
                stats.emitted += 1;
                sink(example);
            }
        }
        pending.clear();
        Ok(())
    }

    /// Convert a dataset into parser examples under the given NN options.
    ///
    /// Examples are converted in parallel, each with a per-example RNG
    /// stream, so the (shuffling) "− canonicalization" ablation stays
    /// deterministic regardless of the worker count.
    pub fn to_parser_examples(&self, dataset: &Dataset, options: NnOptions) -> Vec<ParserExample> {
        let base = self.config.seed.wrapping_add(99);
        genie_parallel::par_map(
            self.config.synthesis.threads,
            &dataset.examples,
            |index, example| {
                let mut rng = StdRng::seed_from_u64(item_seed(base, index));
                self.to_parser_example(example, options, &mut rng)
            },
        )
    }

    /// Convert a single example.
    ///
    /// The sentence side is the concatenation of the cached per-symbol
    /// tokenizer expansions of the raw utterance — exactly what
    /// `genie_nlp::tokenize` produced for the rendered text, without
    /// rendering or re-tokenizing anything.
    pub fn to_parser_example(
        &self,
        example: &Example,
        options: NnOptions,
        rng: &mut StdRng,
    ) -> ParserExample {
        let sentence = genie_templates::intern::shared().tokenized(&example.utterance);
        let mut program = if options.canonicalize {
            canonicalized(self.library, &example.program)
        } else {
            example.program.clone()
        };
        if !options.canonicalize {
            // The "− canonicalization" ablation: shuffle keyword parameters
            // independently per training example.
            for invocation in program.invocations_mut() {
                invocation.in_params.shuffle(rng);
            }
        }
        let program_tokens = to_tokens(&program, options.syntax);
        ParserExample::new(sentence, program_tokens)
    }

    /// The gold parser tokens of an example for evaluation (always
    /// canonicalized, as the paper evaluates against the canonicalized
    /// program regardless of the training-time ablation).
    pub fn gold_tokens(&self, example: &Example, options: NnOptions) -> Vec<String> {
        let program = canonicalized(self.library, &example.program);
        to_tokens(&program, options.syntax)
    }

    /// Pretrain the program language model on a larger synthesized-only
    /// corpus (§4.2), `scale`× the size of the main synthesis.
    pub fn pretrain_lm(&self, scale: usize) -> ProgramLm {
        let mut config = self.config.synthesis;
        config.target_per_rule *= scale.max(1);
        config.seed = config.seed.wrapping_add(4242);
        let generator = SentenceGenerator::new(self.library, config);
        let mut lm = ProgramLm::new();
        let programs: Vec<Vec<String>> = generator
            .synthesize()
            .iter()
            .map(|e| {
                to_tokens(
                    &canonicalized(self.library, &e.program),
                    NnSyntaxOptions::default(),
                )
            })
            .collect();
        lm.train(&programs);
        lm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            synthesis: GeneratorConfig {
                target_per_rule: 15,
                max_depth: 5,
                instantiations_per_template: 1,
                seed: 1,
                include_aggregation: false,
                include_timers: true,
                threads: 0,
                ..GeneratorConfig::default()
            },
            paraphrase: ParaphraseConfig {
                per_sentence: 2,
                error_rate: 0.05,
                seed: 1,
            },
            paraphrase_sample: 60,
            expansion_paraphrase: 2,
            expansion_synthesized: 1,
            parameter_expansion: true,
            seed: 1,
        }
    }

    #[test]
    fn pipeline_produces_all_three_sources() {
        let library = Thingpedia::builtin();
        let pipeline = DataPipeline::new(&library, small_config());
        let data = pipeline.build().unwrap();
        assert!(!data.synthesized.is_empty());
        assert!(!data.paraphrases.is_empty());
        assert!(!data.augmented.is_empty());
        let combined = data.combined();
        assert!(combined.len() > data.synthesized.len());
        assert!(combined.paraphrase_fraction() > 0.0);
    }

    #[test]
    fn strategies_select_different_subsets() {
        let library = Thingpedia::builtin();
        let pipeline = DataPipeline::new(&library, small_config());
        let data = pipeline.build().unwrap();
        let synthesized = data.for_strategy(TrainingStrategy::SynthesizedOnly);
        let paraphrase = data.for_strategy(TrainingStrategy::ParaphraseOnly);
        let genie = data.for_strategy(TrainingStrategy::Genie);
        assert_eq!(synthesized.len(), data.synthesized.len());
        assert_eq!(paraphrase.len(), data.paraphrases.len());
        assert!(genie.len() > synthesized.len().max(paraphrase.len()));
    }

    #[test]
    fn hand_assembled_invalid_configs_error_instead_of_panicking() {
        let library = Thingpedia::builtin();
        // Struct literals bypass the builders; the entry points re-validate
        // so an out-of-range error_rate cannot reach `gen_bool` and panic.
        let mut config = small_config();
        config.paraphrase.error_rate = 1.5;
        let pipeline = DataPipeline::new(&library, config);
        assert!(matches!(pipeline.build(), Err(crate::Error::Config(_))));
        assert!(matches!(
            pipeline.run_streaming(NnOptions::default(), |_| {}),
            Err(crate::Error::Config(_))
        ));
    }

    #[test]
    fn parameter_expansion_can_be_disabled() {
        let library = Thingpedia::builtin();
        let mut config = small_config();
        config.parameter_expansion = false;
        let data = DataPipeline::new(&library, config).build().unwrap();
        assert!(data.augmented.is_empty());
    }

    #[test]
    fn streaming_pipeline_fuses_all_stages() {
        let library = Thingpedia::builtin();
        let pipeline = DataPipeline::new(&library, small_config());
        let mut emitted = Vec::new();
        let stats = pipeline
            .run_streaming(NnOptions::default(), |e| emitted.push(e))
            .unwrap();
        assert_eq!(stats.emitted, emitted.len());
        assert!(stats.synthesized > 50);
        assert!(stats.paraphrases > 0, "no paraphrases in stream");
        assert!(stats.augmented > 0, "no augmented examples in stream");
        assert_eq!(
            stats.emitted,
            stats.synthesized + stats.paraphrases + stats.augmented
        );
        assert_eq!(stats.synthesis.emitted, stats.synthesized);
        for example in emitted.iter().take(50) {
            assert!(!example.sentence.is_empty());
            assert!(example.program.iter().any(|t| t == "=>"));
        }
    }

    #[test]
    fn streaming_output_is_thread_and_shard_invariant() {
        let library = Thingpedia::builtin();
        let run = |threads: usize, shards: usize| {
            let mut config = small_config();
            config.synthesis.threads = threads;
            config.synthesis.shards = shards;
            config.synthesis.batch_size = 16;
            let pipeline = DataPipeline::new(&library, config);
            let mut out = Vec::new();
            pipeline
                .run_streaming(NnOptions::default(), |e| {
                    out.push((e.sentence_text(), e.program.join(" ")))
                })
                .unwrap();
            out
        };
        let sequential = run(1, 1);
        assert!(!sequential.is_empty());
        assert_eq!(run(2, 4), sequential);
        assert_eq!(run(8, 16), sequential);
        assert_eq!(run(0, 1), sequential);
    }

    #[test]
    fn streaming_writes_through_sharded_writer() {
        let library = Thingpedia::builtin();
        let pipeline = DataPipeline::new(&library, small_config());
        let dir = std::env::temp_dir().join(format!("genie-stream-writer-{}", std::process::id()));
        let mut writer = ShardedDatasetWriter::create(&dir, "train", 4).unwrap();
        let stats = pipeline
            .run_streaming_sharded(NnOptions::default(), &mut writer)
            .unwrap();
        assert_eq!(writer.written(), stats.emitted);
        let paths = writer.finish().unwrap();
        let mut merged = 0usize;
        ShardedDatasetWriter::merge_for_each(&paths, |_| merged += 1).unwrap();
        assert_eq!(merged, stats.emitted);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parser_examples_have_aligned_tokens() {
        let library = Thingpedia::builtin();
        let pipeline = DataPipeline::new(&library, small_config());
        let data = pipeline.build().unwrap();
        let examples = pipeline.to_parser_examples(&data.synthesized, NnOptions::default());
        assert_eq!(examples.len(), data.synthesized.len());
        for example in examples.iter().take(50) {
            assert!(!example.sentence.is_empty());
            assert!(example.program.len() >= 4);
            assert!(example.program.iter().any(|t| t == "=>"));
        }
    }

    #[test]
    fn canonicalization_ablation_shuffles_parameters() {
        let library = Thingpedia::builtin();
        let pipeline = DataPipeline::new(&library, small_config());
        let example = Example::new(
            "post the picture on facebook with caption funny cat",
            thingtalk::syntax::parse_program(
                "now => @com.facebook.post_picture(picture_url = \"https://x.example/p.jpg\", caption = \"funny cat\")",
            )
            .unwrap(),
            ExampleSource::Synthesized,
        );
        let canonical = pipeline.gold_tokens(&example, NnOptions::default());
        // Canonical order is alphabetical: caption before picture_url.
        let caption_pos = canonical.iter().position(|t| t == "param:caption").unwrap();
        let picture_pos = canonical
            .iter()
            .position(|t| t == "param:picture_url")
            .unwrap();
        assert!(caption_pos < picture_pos);
    }

    #[test]
    fn pretrained_lm_covers_program_structure() {
        let library = Thingpedia::builtin();
        let pipeline = DataPipeline::new(&library, small_config());
        let lm = pipeline.pretrain_lm(1);
        assert!(lm.trained_programs() > 100);
        assert!(lm.log_prob("<s>", "now", "=>") > lm.log_prob("<s>", "now", "notify"));
    }
}
