//! World bundles: one sealed binary artifact holding a complete versioned
//! world — library, synthesis memo (pool digests + `(rule, batch)` work
//! items with their pool draws), and the trained LUInet snapshot.
//!
//! A restarted server (or a freshly resyncing replica) recovers by loading
//! the bundle at version `V` and replaying journal records `> V`, instead
//! of re-synthesizing from scratch. The layout is colfmt-style
//! little-endian sections:
//!
//! ```text
//! "GENBNDL1" | u32 format | u64 world_version | u64 config_digest
//!            | library (classes + spliced template vec)
//!            | pool digests (6 × u32 count + u64 entries)
//!            | batch records (draws, fingerprints, candidates)
//!            | u64 len + LUInet snapshot payload
//! ```
//!
//! Candidate utterances are stored as rendered text and re-interned into a
//! fresh arena at load — sound because replay renders through the memo
//! arena and re-interns into each rebuild's arena anyway (dedup keys are
//! injective per arena, so absolute symbol ids never matter). Candidate
//! flags are recomputed from the decoded program. Writes ride the shared
//! sealed discipline ([`genie_nlp::sealed::write_artifact`]) under the
//! `bundle.write` failpoint; a torn write is *detected* at the next load
//! and recovery falls back to cold bootstrap + full journal replay.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use genie_nlp::colfmt::{put_u32, put_u64, put_u8, ColfmtError, ColfmtResult, Reader};
use genie_nlp::sealed;
use genie_templates::{
    BatchRecord, Interner, PoolDigests, PoolDraw, PoolId, RuleRegistry, SynthesizedExample,
    TokenStream,
};
use thingpedia::{ParamDatasets, Thingpedia};
use thingtalk::syntax::parse_program;

use super::journal::{decode_class, decode_template, encode_class, encode_template, read_str};
use super::SynthesisMemo;
use crate::error::{Error, GenieResult};

/// Magic bytes opening a world bundle.
pub const BUNDLE_MAGIC: [u8; 8] = *b"GENBNDL1";
/// Bundle format version.
pub const BUNDLE_FORMAT: u32 = 2;

/// A decoded world bundle, ready to install.
pub struct WorldBundle {
    /// The world version the bundle snapshots.
    pub world_version: u64,
    /// Digest of the (pipeline, model, options) configuration the world was
    /// built under; a mismatch at load forces cold bootstrap (the memo and
    /// model are config-scoped).
    pub config_digest: u64,
    /// The skill library, template splice order preserved exactly.
    pub library: Thingpedia,
    /// The snapshot arena the decoded candidates were re-interned into.
    pub arena: Arc<Interner>,
    /// Per-entry pool content digests at build time.
    pub digests: PoolDigests,
    /// Every memoized `(rule, batch)` work item.
    pub batches: HashMap<(u64, u64), BatchRecord>,
    /// The serialized LUInet parser ([`luinet::snapshot::to_bytes`]).
    pub snapshot: Vec<u8>,
}

impl WorldBundle {
    /// Consume the bundle into the pieces [`super::LiveWorld`] installs:
    /// library, synthesis memo, and snapshot bytes.
    pub(super) fn into_parts(self) -> (Arc<Thingpedia>, SynthesisMemo, Vec<u8>, u64) {
        (
            Arc::new(self.library),
            SynthesisMemo {
                arena: self.arena,
                digests: self.digests,
                batches: self.batches,
            },
            self.snapshot,
            self.world_version,
        )
    }
}

/// Encode a world into bundle payload bytes (unsealed).
pub(super) fn encode(
    world_version: u64,
    config_digest: u64,
    library: &Thingpedia,
    memo: &SynthesisMemo,
    snapshot: &[u8],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&BUNDLE_MAGIC);
    put_u32(&mut out, BUNDLE_FORMAT);
    put_u64(&mut out, world_version);
    put_u64(&mut out, config_digest);
    // Library: classes in name order, then the template vec verbatim — the
    // splice order is part of the synthesis identity.
    let classes: Vec<_> = library.classes().collect();
    put_u32(&mut out, classes.len() as u32);
    for class in classes {
        encode_class(&mut out, class);
    }
    put_u32(&mut out, library.templates().len() as u32);
    for template in library.templates() {
        encode_template(&mut out, template);
    }
    // Pool digests, PoolId::ALL order.
    for entries in memo.digests.entries() {
        put_u32(&mut out, entries.len() as u32);
        for digest in entries {
            put_u64(&mut out, *digest);
        }
    }
    // Batch records, sorted by key so the artifact is byte-stable.
    let mut keys: Vec<(u64, u64)> = memo.batches.keys().copied().collect();
    keys.sort_unstable();
    put_u32(&mut out, keys.len() as u32);
    for key in keys {
        let record = &memo.batches[&key];
        put_u64(&mut out, record.rule_id);
        put_u64(&mut out, record.batch);
        put_u8(&mut out, u8::from(record.provided));
        put_u32(&mut out, record.draws.len() as u32);
        for draw in &record.draws {
            put_u8(&mut out, draw.pool.index() as u8);
            put_u32(&mut out, draw.index);
        }
        put_u32(&mut out, record.fingerprints.len() as u32);
        for (a, b) in &record.fingerprints {
            put_u64(&mut out, *a);
            put_u64(&mut out, *b);
        }
        put_u32(&mut out, record.candidates.len() as u32);
        for candidate in &record.candidates {
            encode_candidate(&mut out, candidate, &memo.arena);
        }
    }
    put_u64(&mut out, snapshot.len() as u64);
    out.extend_from_slice(snapshot);
    out
}

fn encode_candidate(out: &mut Vec<u8>, candidate: &SynthesizedExample, arena: &Interner) {
    super::journal::put_str(out, &arena.render(&candidate.utterance));
    super::journal::put_str(out, &candidate.program.to_string());
    put_u32(out, candidate.depth as u32);
    super::journal::put_str(out, candidate.construct);
}

/// Decode bundle payload bytes into an installable world.
pub fn decode(payload: &[u8]) -> GenieResult<WorldBundle> {
    decode_inner(payload).map_err(Error::from)
}

fn decode_inner(payload: &[u8]) -> ColfmtResult<WorldBundle> {
    let mut reader = Reader::new(payload);
    reader.expect_magic(&BUNDLE_MAGIC, "world bundle")?;
    reader.expect_version(BUNDLE_FORMAT, "world bundle")?;
    let world_version = reader.u64()?;
    let config_digest = reader.u64()?;
    let class_count = reader.u32()? as usize;
    let mut classes = Vec::with_capacity(reader.capacity_hint(class_count, 8));
    for _ in 0..class_count {
        classes.push(decode_class(&mut reader)?);
    }
    let template_count = reader.u32()? as usize;
    let mut templates = Vec::with_capacity(reader.capacity_hint(template_count, 8));
    for _ in 0..template_count {
        templates.push(decode_template(&mut reader)?);
    }
    let library = Thingpedia::from_parts(classes, templates);
    let mut entries: [Vec<u64>; 6] = Default::default();
    for slot in &mut entries {
        let count = reader.u32()? as usize;
        *slot = reader.u64_vec(count, "pool digests")?;
    }
    let digests = PoolDigests::from_entries(entries);
    // A fresh arena pre-seeded for the decoded library: candidates
    // re-intern below, and future deltas diff against it exactly as they
    // would against the bootstrap arena.
    let arena = genie_templates::intern::fresh(&library, &ParamDatasets::builtin());
    let constructs = construct_labels();
    let batch_count = reader.u32()? as usize;
    let mut batches = HashMap::with_capacity(reader.capacity_hint(batch_count, 16));
    for _ in 0..batch_count {
        let rule_id = reader.u64()?;
        let batch = reader.u64()?;
        let provided = reader.u8()? != 0;
        let draw_count = reader.u32()? as usize;
        let mut draws = Vec::with_capacity(reader.capacity_hint(draw_count, 5));
        for _ in 0..draw_count {
            let pool_index = reader.u8()? as usize;
            let pool = *PoolId::ALL
                .get(pool_index)
                .ok_or_else(|| ColfmtError::Corrupt(format!("unknown pool index {pool_index}")))?;
            let index = reader.u32()?;
            draws.push(PoolDraw { pool, index });
        }
        let fp_count = reader.u32()? as usize;
        let mut fingerprints = Vec::with_capacity(reader.capacity_hint(fp_count, 16));
        for _ in 0..fp_count {
            fingerprints.push((reader.u64()?, reader.u64()?));
        }
        let candidate_count = reader.u32()? as usize;
        let mut candidates = Vec::with_capacity(reader.capacity_hint(candidate_count, 16));
        for _ in 0..candidate_count {
            candidates.push(decode_candidate(&mut reader, &arena, &constructs)?);
        }
        batches.insert(
            (rule_id, batch),
            BatchRecord {
                rule_id,
                batch,
                candidates,
                fingerprints,
                draws,
                provided,
            },
        );
    }
    let snapshot_len = reader.u64()? as usize;
    let snapshot = reader.u8_vec(snapshot_len, "luinet snapshot")?;
    if !reader.is_done() {
        return Err(ColfmtError::Corrupt(format!(
            "world bundle has {} trailing bytes",
            reader.remaining()
        )));
    }
    Ok(WorldBundle {
        world_version,
        config_digest,
        library,
        arena,
        digests,
        batches,
        snapshot,
    })
}

fn decode_candidate(
    reader: &mut Reader<'_>,
    arena: &Interner,
    constructs: &HashMap<&'static str, &'static str>,
) -> ColfmtResult<SynthesizedExample> {
    let text = read_str(reader, "candidate utterance")?;
    let source = read_str(reader, "candidate program")?;
    let depth = reader.u32()? as usize;
    let label = read_str(reader, "candidate construct")?;
    let construct = *constructs
        .get(label.as_str())
        .ok_or_else(|| ColfmtError::Corrupt(format!("unknown construct label `{label}`")))?;
    let program = parse_program(&source)
        .map_err(|error| ColfmtError::Corrupt(format!("candidate program `{source}`: {error}")))?;
    let mut utterance = TokenStream::with_capacity(8);
    arena.intern_words(&text, &mut utterance);
    Ok(SynthesizedExample::new(
        utterance, program, depth, construct,
    ))
}

/// The `&'static str` identity map for construct labels: serialized labels
/// decode back onto the registry's static strings.
fn construct_labels() -> HashMap<&'static str, &'static str> {
    RuleRegistry::builtin()
        .rules()
        .iter()
        .map(|rule| (rule.label(), rule.label()))
        .collect()
}

/// Seal and atomically persist bundle payload bytes (the `bundle.write`
/// failpoint site).
///
/// # Errors
///
/// [`Error::Io`] when the write fails or a fault is injected.
pub(super) fn save(path: &Path, payload: &[u8]) -> GenieResult<()> {
    sealed::write_artifact(path, payload, "bundle.write").map_err(Error::from)
}

/// Read and unseal the bundle at `path`, then decode it (the `bundle.read`
/// failpoint site).
///
/// # Errors
///
/// [`Error::Io`] when unreadable, [`Error::CorruptArtifact`] when torn or
/// malformed — recovery treats both as "no usable bundle" and falls back to
/// cold bootstrap + full journal replay.
pub fn load(path: &Path) -> GenieResult<WorldBundle> {
    let payload = sealed::read_artifact(path, "bundle.read").map_err(Error::from)?;
    decode(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveWorld;
    use crate::paraphrase::ParaphraseConfig;
    use crate::pipeline::PipelineConfig;
    use genie_templates::GeneratorConfig;
    use luinet::ModelConfig;

    /// Encode → decode → re-encode must be a byte fixed point: the memo a
    /// recovered world replays from must be indistinguishable from the one
    /// the live world held, or replay diverges from the served digest.
    #[test]
    fn the_bundle_codec_is_a_byte_fixed_point() {
        let pipeline = PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(10)
                    .max_depth(4)
                    .instantiations_per_template(1)
                    .seed(7)
                    .threads(1)
                    .shards(4)
                    .quiet(true)
                    .build()
                    .unwrap(),
            )
            .paraphrase(
                ParaphraseConfig::builder()
                    .per_sentence(1)
                    .error_rate(0.0)
                    .seed(7)
                    .build()
                    .unwrap(),
            )
            .paraphrase_sample(20)
            .parameter_expansion(false)
            .seed(7)
            .build()
            .unwrap();
        let model = ModelConfig {
            epochs: 2,
            seed: 7,
            threads: 1,
            ..ModelConfig::default()
        };
        let world =
            LiveWorld::bootstrap(thingpedia::Thingpedia::builtin(), pipeline, model).unwrap();
        let state = world.state.lock().unwrap();
        let snapshot = luinet::snapshot::to_bytes(&world.engine.model());
        let first = encode(1, 0xABCD, &state.library, &state.memo, &snapshot);
        let decoded = decode(&first).unwrap();
        let (library, memo, snapshot, version) = decoded.into_parts();
        assert_eq!(version, 1);
        let second = encode(1, 0xABCD, &library, &memo, &snapshot);
        assert_eq!(first.len(), second.len(), "bundle re-encode changed length");
        let diverges_at = first.iter().zip(second.iter()).position(|(a, b)| a != b);
        assert_eq!(
            diverges_at,
            None,
            "bundle re-encode diverges at byte {diverges_at:?} of {}",
            first.len()
        );
    }
}

#[cfg(test)]
mod memo_fidelity {
    use super::*;
    use crate::live::LiveWorld;
    use crate::paraphrase::ParaphraseConfig;
    use crate::pipeline::PipelineConfig;
    use genie_templates::GeneratorConfig;
    use luinet::ModelConfig;

    #[test]
    fn decoded_candidates_equal_the_live_ones() {
        let pipeline = PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(10)
                    .max_depth(4)
                    .instantiations_per_template(1)
                    .seed(7)
                    .threads(1)
                    .shards(4)
                    .quiet(true)
                    .build()
                    .unwrap(),
            )
            .paraphrase(
                ParaphraseConfig::builder()
                    .per_sentence(1)
                    .error_rate(0.0)
                    .seed(7)
                    .build()
                    .unwrap(),
            )
            .paraphrase_sample(20)
            .parameter_expansion(false)
            .seed(7)
            .build()
            .unwrap();
        let model = ModelConfig {
            epochs: 1,
            seed: 7,
            threads: 1,
            ..ModelConfig::default()
        };
        let world =
            LiveWorld::bootstrap(thingpedia::Thingpedia::builtin(), pipeline, model).unwrap();
        let state = world.state.lock().unwrap();
        let snapshot = luinet::snapshot::to_bytes(&world.engine.model());
        let bytes = encode(1, 0xABCD, &state.library, &state.memo, &snapshot);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.batches.len(), state.memo.batches.len());
        for (key, original) in &state.memo.batches {
            let replica = decoded.batches.get(key).expect("batch survived");
            assert_eq!(
                original.candidates.len(),
                replica.candidates.len(),
                "{key:?}"
            );
            for (a, b) in original.candidates.iter().zip(&replica.candidates) {
                assert_eq!(
                    state.memo.arena.render(&a.utterance),
                    decoded.arena.render(&b.utterance),
                    "utterance text {key:?}"
                );
                assert_eq!(a.utterance.len(), b.utterance.len(), "token count {key:?}");
                assert_eq!(a.depth, b.depth, "depth {key:?}");
                assert_eq!(a.construct, b.construct, "construct {key:?}");
                assert_eq!(a.flags, b.flags, "flags {key:?}");
                assert_eq!(
                    a.program.to_string(),
                    b.program.to_string(),
                    "program text {key:?}"
                );
                assert_eq!(a.program, b.program, "program AST {key:?}");
            }
            assert_eq!(original.fingerprints, replica.fingerprints, "{key:?}");
            assert_eq!(original.draws, replica.draws, "{key:?}");
            assert_eq!(original.provided, replica.provided, "{key:?}");
        }
        assert_eq!(state.memo.digests.entries(), decoded.digests.entries());

        // The decisive check: rebuilding the next version from the decoded
        // memo must produce the same weights as rebuilding from the live
        // one — this is exactly what journal replay over a stale bundle
        // does.
        let delta = {
            let class = thingtalk::syntax::parse_class(
                "class @com.test.lights { action set_power(in req power : Enum(on, off)); }",
            )
            .unwrap();
            let template = thingpedia::PrimitiveTemplate::new(
                &class.name,
                "set_power",
                thingpedia::PhraseCategory::VerbPhrase,
                "flip the test lights $power".to_owned(),
            );
            crate::SkillDelta::Upsert {
                class,
                templates: vec![template],
            }
        };
        let mut patched = (*state.library).clone();
        delta.apply(&mut patched);
        let (library2, memo2, _, _) = decoded.into_parts();
        for (a, b) in state.library.classes().zip(library2.classes()) {
            assert_eq!(a, b, "class `{}` lost fidelity through the bundle", a.name);
        }
        assert_eq!(
            state.library.templates(),
            library2.templates(),
            "template vec lost fidelity through the bundle"
        );
        let live_build = super::super::build_world(
            &patched,
            &world.pipeline,
            &world.model,
            world.options,
            Some(&state.memo),
            super::super::TrainPlan::Scratch,
        )
        .unwrap();
        let decoded_build = super::super::build_world(
            &patched,
            &world.pipeline,
            &world.model,
            world.options,
            Some(&memo2),
            super::super::TrainPlan::Scratch,
        )
        .unwrap();
        assert_eq!(
            live_build.examples, decoded_build.examples,
            "example counts diverge"
        );
        assert_eq!(
            live_build.reused_batches, decoded_build.reused_batches,
            "reuse sets diverge"
        );
        assert_eq!(
            live_build.parser.weights_digest(),
            decoded_build.parser.weights_digest(),
            "rebuild from the decoded memo diverges from the live memo"
        );
    }
}
