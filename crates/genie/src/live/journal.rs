//! The delta journal: a write-ahead log of accepted skill deltas.
//!
//! Every accepted [`SkillDelta`] is appended — with its [`RetrainMode`],
//! the world version it will produce, and a content digest — *before* the
//! rebuild runs, so a crash at any later point can replay the delta from
//! disk. The journal is one sealed artifact (see [`genie_nlp::sealed`]):
//!
//! ```text
//! "GENJRNL1" | u32 format | frame* | checksum footer
//! frame     = u32 len | u64 fnv64(payload) | payload
//! payload   = u8 kind(1=delta, 2=abort) | u64 version | kind-specific body
//! ```
//!
//! Appends rewrite the whole sealed file through the atomic
//! write-temp→fsync→rename path (`journal.append` failpoint) — journals
//! hold one frame per *skill delta*, which arrive at human cadence, so the
//! rewrite stays small while every append gets full crash-atomicity. A
//! truncated or torn tail frame surfaces as a typed [`TornTail`] condition
//! at open; every intact frame before it replays.
//!
//! A reload that journals its delta but then dies mid-rebuild appends an
//! **abort** frame for the same version (the client saw an error, so
//! recovery must not apply the delta); [`DeltaJournal::records_since`]
//! resolves delta/abort pairs and returns only the effective history.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use genie_nlp::colfmt::{put_u32, put_u64, put_u8, ColfmtError, ColfmtResult, Reader};
use genie_nlp::failpoint::fnv64;
use genie_nlp::sealed::{self, TornTail};
use thingpedia::{PhraseCategory, PrimitiveTemplate, Thingpedia};
use thingtalk::syntax::{parse_class, Parser};

use super::{RetrainMode, SkillDelta};
use crate::error::{Error, GenieResult};

/// Magic bytes opening a delta journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"GENJRNL1";
/// Journal format version.
pub const JOURNAL_FORMAT: u32 = 2;
/// Bytes of the journal header (magic + format version).
const HEADER_LEN: usize = 12;

/// One journaled skill delta, as replayed at recovery.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// The world version this delta produced (or would have produced).
    pub version: u64,
    /// The delta itself.
    pub delta: SkillDelta,
    /// How the reload retrained.
    pub mode: RetrainMode,
    /// FNV-1a digest of the record's encoded body — the content identity
    /// replication compares.
    pub digest: u64,
}

/// One decoded journal frame.
#[derive(Debug, Clone)]
enum JournalEntry {
    Delta(JournalRecord),
    /// The delta journaled for `version` failed mid-rebuild; recovery must
    /// skip it.
    Abort {
        version: u64,
    },
}

struct JournalState {
    /// The unsealed file image: header + every intact frame. Appends extend
    /// this and rewrite the sealed file from it.
    payload: Vec<u8>,
    entries: Vec<JournalEntry>,
}

/// An open delta journal. Appends serialize internally; reloads additionally
/// serialize on the live world's state lock, so frames land in version
/// order.
pub struct DeltaJournal {
    path: PathBuf,
    state: Mutex<JournalState>,
}

impl DeltaJournal {
    /// Open (or lazily create) the journal at `path`, replaying every
    /// intact frame. A torn or corrupt tail is returned as a typed
    /// [`TornTail`] — not an error — and the in-memory image keeps only the
    /// intact prefix, so the next append heals the file.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file exists but cannot be read (including an
    /// injected `journal.read` fault); [`Error::CorruptArtifact`] when a
    /// checksum-valid frame fails to decode (format drift, not a torn
    /// write).
    pub fn open(path: &Path) -> GenieResult<(Self, Option<TornTail>)> {
        genie_nlp::failpoint::fail_io("journal.read")?;
        let raw = match std::fs::read(path) {
            Ok(raw) => raw,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                let mut payload = Vec::with_capacity(HEADER_LEN);
                payload.extend_from_slice(&JOURNAL_MAGIC);
                put_u32(&mut payload, JOURNAL_FORMAT);
                return Ok((
                    DeltaJournal {
                        path: path.to_owned(),
                        state: Mutex::new(JournalState {
                            payload,
                            entries: Vec::new(),
                        }),
                    },
                    None,
                ));
            }
            Err(error) => return Err(error.into()),
        };
        // A cleanly sealed file unseals; a torn one (crash mid-write under
        // an injected `Torn` fault) does not — its raw bytes are then the
        // payload prefix, and frame checksums recover the intact history.
        let body: &[u8] = match sealed::unseal(&raw) {
            Ok(body) => body,
            Err(_) => &raw[..],
        };
        if body.len() < HEADER_LEN || body[..8] != JOURNAL_MAGIC {
            // Too torn to even carry the header: treat as empty history.
            let mut payload = Vec::with_capacity(HEADER_LEN);
            payload.extend_from_slice(&JOURNAL_MAGIC);
            put_u32(&mut payload, JOURNAL_FORMAT);
            return Ok((
                DeltaJournal {
                    path: path.to_owned(),
                    state: Mutex::new(JournalState {
                        payload,
                        entries: Vec::new(),
                    }),
                },
                Some(TornTail {
                    offset: 0,
                    detail: "journal shorter than its header — torn first write".to_owned(),
                }),
            ));
        }
        let format = u32::from_le_bytes([body[8], body[9], body[10], body[11]]);
        if format != JOURNAL_FORMAT {
            return Err(Error::CorruptArtifact {
                detail: format!("journal format {format} (supported: {JOURNAL_FORMAT})"),
            });
        }
        let (frames, torn) = sealed::read_records(&body[HEADER_LEN..]);
        let mut payload = Vec::with_capacity(HEADER_LEN + body.len());
        payload.extend_from_slice(&JOURNAL_MAGIC);
        put_u32(&mut payload, JOURNAL_FORMAT);
        let mut entries = Vec::with_capacity(frames.len());
        for frame in frames {
            entries.push(decode_entry(frame)?);
            sealed::append_record(&mut payload, frame);
        }
        Ok((
            DeltaJournal {
                path: path.to_owned(),
                state: Mutex::new(JournalState { payload, entries }),
            },
            torn,
        ))
    }

    /// Append one accepted delta (WAL step: runs before the rebuild).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the sealed rewrite fails (including an injected
    /// `journal.append` fault) — the in-memory image is untouched and the
    /// reload must not proceed.
    pub fn append_delta(
        &self,
        version: u64,
        delta: &SkillDelta,
        mode: RetrainMode,
    ) -> GenieResult<u64> {
        let mut body = Vec::new();
        put_u8(&mut body, 1);
        put_u64(&mut body, version);
        encode_mode(&mut body, mode);
        encode_delta(&mut body, delta);
        let digest = fnv64(&body);
        put_u64(&mut body, digest);
        self.append_frame(
            &body,
            JournalEntry::Delta(JournalRecord {
                version,
                delta: delta.clone(),
                mode,
                digest,
            }),
        )?;
        Ok(digest)
    }

    /// Append an abort frame: the delta journaled for `version` failed
    /// mid-rebuild and must not replay.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the sealed rewrite fails. Callers tolerate this
    /// (the abort is best-effort; a lost abort replays a delta the primary
    /// rejected, which recovery resolves deterministically).
    pub fn append_abort(&self, version: u64) -> GenieResult<()> {
        let mut body = Vec::new();
        put_u8(&mut body, 2);
        put_u64(&mut body, version);
        self.append_frame(&body, JournalEntry::Abort { version })
    }

    fn append_frame(&self, body: &[u8], entry: JournalEntry) -> GenieResult<()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut payload = state.payload.clone();
        sealed::append_record(&mut payload, body);
        sealed::write_artifact(&self.path, &payload, "journal.append")?;
        state.payload = payload;
        state.entries.push(entry);
        Ok(())
    }

    /// The effective history after `since` (exclusive), in version order:
    /// delta frames minus any abort-cancelled ones.
    pub fn records_since(&self, since: u64) -> Vec<JournalRecord> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let aborted: Vec<u64> = state
            .entries
            .iter()
            .filter_map(|entry| match entry {
                JournalEntry::Abort { version } => Some(*version),
                JournalEntry::Delta(_) => None,
            })
            .collect();
        state
            .entries
            .iter()
            .filter_map(|entry| match entry {
                JournalEntry::Delta(record)
                    if record.version > since && !aborted.contains(&record.version) =>
                {
                    Some(record.clone())
                }
                _ => None,
            })
            .collect()
    }

    /// The last effectively journaled version (0 when the history is
    /// empty) — the version a recovered server must land on.
    pub fn last_version(&self) -> u64 {
        self.records_since(0)
            .last()
            .map_or(0, |record| record.version)
    }

    /// The first effectively journaled version (0 when empty). A follower
    /// whose local version predates this cannot catch up record-by-record
    /// and must resync from a bundle.
    pub fn first_version(&self) -> u64 {
        self.records_since(0)
            .first()
            .map_or(0, |record| record.version)
    }

    /// Total frames currently journaled (deltas + aborts).
    pub fn frames(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }
}

fn encode_mode(out: &mut Vec<u8>, mode: RetrainMode) {
    match mode {
        RetrainMode::Full => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
        RetrainMode::FineTune { epochs } => {
            put_u8(out, 1);
            put_u64(out, epochs as u64);
        }
    }
}

fn encode_delta(out: &mut Vec<u8>, delta: &SkillDelta) {
    match delta {
        SkillDelta::Remove { name } => {
            put_u8(out, 0);
            put_str(out, name);
        }
        SkillDelta::Upsert { class, templates } => {
            put_u8(out, 1);
            // `ClassDef`'s Display omits the presentation metadata, so it
            // rides alongside the parseable source.
            put_str(out, &class.to_string());
            put_str(out, &class.display_name);
            put_str(out, &class.domain);
            put_u32(out, templates.len() as u32);
            for template in templates {
                encode_template(out, template);
            }
        }
    }
}

pub(super) fn encode_template(out: &mut Vec<u8>, template: &PrimitiveTemplate) {
    put_str(out, &template.class);
    put_str(out, &template.function);
    put_u8(out, category_tag(template.category));
    put_str(out, &template.utterance);
    put_u32(out, template.preset_params.len() as u32);
    for (name, value) in &template.preset_params {
        put_str(out, name);
        put_str(out, &value.to_string());
    }
}

pub(super) fn decode_template(reader: &mut Reader<'_>) -> ColfmtResult<PrimitiveTemplate> {
    let class = read_str(reader, "template class")?;
    let function = read_str(reader, "template function")?;
    let category = category_from_tag(reader.u8()?)?;
    let utterance = read_str(reader, "template utterance")?;
    let presets = reader.u32()? as usize;
    let mut template = PrimitiveTemplate::new(class, function, category, utterance);
    for _ in 0..presets {
        let name = read_str(reader, "preset name")?;
        let text = read_str(reader, "preset value")?;
        let value = parse_value(&text)?;
        template = template.with_preset(name, value);
    }
    Ok(template)
}

fn category_tag(category: PhraseCategory) -> u8 {
    match category {
        PhraseCategory::NounPhrase => 0,
        PhraseCategory::VerbPhrase => 1,
        PhraseCategory::WhenPhrase => 2,
    }
}

fn category_from_tag(tag: u8) -> ColfmtResult<PhraseCategory> {
    match tag {
        0 => Ok(PhraseCategory::NounPhrase),
        1 => Ok(PhraseCategory::VerbPhrase),
        2 => Ok(PhraseCategory::WhenPhrase),
        other => Err(ColfmtError::Corrupt(format!(
            "unknown phrase category tag {other}"
        ))),
    }
}

pub(super) fn parse_value(text: &str) -> ColfmtResult<thingtalk::Value> {
    let mut parser = Parser::new(text)
        .map_err(|error| ColfmtError::Corrupt(format!("preset value `{text}`: {error}")))?;
    parser
        .value()
        .map_err(|error| ColfmtError::Corrupt(format!("preset value `{text}`: {error}")))
}

pub(super) fn put_str(out: &mut Vec<u8>, text: &str) {
    put_u32(out, text.len() as u32);
    out.extend_from_slice(text.as_bytes());
}

pub(super) fn read_str(reader: &mut Reader<'_>, what: &str) -> ColfmtResult<String> {
    let len = reader.u32()? as usize;
    let bytes = reader.u8_vec(len, what)?;
    String::from_utf8(bytes).map_err(|_| ColfmtError::Corrupt(format!("{what}: invalid UTF-8")))
}

fn decode_entry(frame: &[u8]) -> GenieResult<JournalEntry> {
    decode_entry_inner(frame).map_err(Error::from)
}

fn decode_entry_inner(frame: &[u8]) -> ColfmtResult<JournalEntry> {
    let mut reader = Reader::new(frame);
    let kind = reader.u8()?;
    let version = reader.u64()?;
    match kind {
        1 => {
            let mode = match reader.u8()? {
                0 => {
                    reader.u64()?;
                    RetrainMode::Full
                }
                1 => RetrainMode::FineTune {
                    epochs: reader.u64()? as usize,
                },
                other => {
                    return Err(ColfmtError::Corrupt(format!(
                        "unknown retrain mode tag {other}"
                    )))
                }
            };
            let delta = match reader.u8()? {
                0 => SkillDelta::Remove {
                    name: read_str(&mut reader, "removed class name")?,
                },
                1 => {
                    let source = read_str(&mut reader, "class source")?;
                    let display_name = read_str(&mut reader, "class display name")?;
                    let domain = read_str(&mut reader, "class domain")?;
                    let class = parse_class(&source)
                        .map_err(|error| {
                            ColfmtError::Corrupt(format!("journaled class source: {error}"))
                        })?
                        .with_display_name(display_name)
                        .with_domain(domain);
                    let count = reader.u32()? as usize;
                    let mut templates = Vec::with_capacity(count.min(1024));
                    for _ in 0..count {
                        templates.push(decode_template(&mut reader)?);
                    }
                    SkillDelta::Upsert { class, templates }
                }
                other => {
                    return Err(ColfmtError::Corrupt(format!(
                        "unknown skill delta tag {other}"
                    )))
                }
            };
            let digest = reader.u64()?;
            let stored = fnv64(&frame[..frame.len() - 8]);
            if digest != stored {
                return Err(ColfmtError::Corrupt(format!(
                    "journal record v{version}: content digest mismatch"
                )));
            }
            Ok(JournalEntry::Delta(JournalRecord {
                version,
                delta,
                mode,
                digest,
            }))
        }
        2 => Ok(JournalEntry::Abort { version }),
        other => Err(ColfmtError::Corrupt(format!(
            "unknown journal frame kind {other}"
        ))),
    }
}

/// Encode one delta the way [`DeltaJournal::append_delta`] does, returning
/// the content digest it would journal — used by the admin API to report a
/// digest without appending.
pub fn content_digest(version: u64, delta: &SkillDelta, mode: RetrainMode) -> u64 {
    let mut body = Vec::new();
    put_u8(&mut body, 1);
    put_u64(&mut body, version);
    encode_mode(&mut body, mode);
    encode_delta(&mut body, delta);
    fnv64(&body)
}

/// Re-encode a library class as the journal does — shared with the bundle
/// codec so both artifacts round-trip classes identically.
pub(super) fn encode_class(out: &mut Vec<u8>, class: &thingtalk::class::ClassDef) {
    put_str(out, &class.to_string());
    put_str(out, &class.display_name);
    put_str(out, &class.domain);
    // The ThingTalk source carries the declarations but NOT the
    // natural-language metadata (canonical phrases, descriptions, the
    // understandability rating) — reparsing alone would silently fall back
    // to name-derived defaults, and synthesis renders utterances from the
    // canonicals, so that loss changes the dataset and breaks byte-level
    // recovery. Serialize the metadata explicitly, function by function.
    put_u32(out, class.functions.len() as u32);
    for function in class.functions.values() {
        put_str(out, &function.name);
        put_str(out, &function.canonical);
        put_str(out, &function.description);
        put_u8(out, u8::from(function.easy_to_understand));
        put_u32(out, function.params.len() as u32);
        for param in &function.params {
            put_str(out, &param.name);
            put_str(out, &param.canonical);
        }
    }
}

/// Decode one class (source + presentation and NL metadata).
pub(super) fn decode_class(reader: &mut Reader<'_>) -> ColfmtResult<thingtalk::class::ClassDef> {
    let source = read_str(reader, "class source")?;
    let display_name = read_str(reader, "class display name")?;
    let domain = read_str(reader, "class domain")?;
    let mut class = parse_class(&source)
        .map_err(|error| ColfmtError::Corrupt(format!("bundled class source: {error}")))?
        .with_display_name(display_name)
        .with_domain(domain);
    let function_count = reader.u32()? as usize;
    for _ in 0..function_count {
        let name = read_str(reader, "function name")?;
        let canonical = read_str(reader, "function canonical")?;
        let description = read_str(reader, "function description")?;
        let easy_to_understand = reader.u8()? != 0;
        let param_count = reader.u32()? as usize;
        let function = class.functions.get_mut(&name).ok_or_else(|| {
            ColfmtError::Corrupt(format!("metadata for undeclared function `{name}`"))
        })?;
        function.canonical = canonical;
        function.description = description;
        function.easy_to_understand = easy_to_understand;
        for _ in 0..param_count {
            let param_name = read_str(reader, "param name")?;
            let param_canonical = read_str(reader, "param canonical")?;
            let param = function
                .params
                .iter_mut()
                .find(|param| param.name == param_name)
                .ok_or_else(|| {
                    ColfmtError::Corrupt(format!(
                        "metadata for undeclared parameter `{name}.{param_name}`"
                    ))
                })?;
            param.canonical = param_canonical;
        }
    }
    Ok(class)
}

/// The digest of a whole library, in class order — a cheap identity check
/// the follower uses after a resync.
pub fn library_digest(library: &Thingpedia) -> u64 {
    let mut body = Vec::new();
    for class in library.classes() {
        encode_class(&mut body, class);
    }
    for template in library.templates() {
        encode_template(&mut body, template);
    }
    fnv64(&body)
}
