//! # genie — the data-acquisition and evaluation pipeline
//!
//! This crate is the toolkit layer of the reproduction (Fig. 2 of the
//! paper): it takes the formal language (`thingtalk`), the skill library and
//! parameter datasets (`thingpedia`), the NL-template synthesis
//! (`genie-templates`), the NLP substrate (`genie-nlp`) and the parser
//! (`luinet`), and wires them into the end-to-end system the evaluation
//! section measures:
//!
//! * [`dataset`] — typed examples, dataset assembly, Fig. 7 composition
//!   statistics and the seen/unseen-program splits of §5;
//! * [`paraphrase`] — the crowdsourced-paraphrasing substitute (§3.2),
//!   including the worker-error model and the validation heuristics;
//! * [`crowdsource`] — MTurk batch generation and answer validation;
//! * [`expansion`] — parameter replacement (§3.3) and PPDB augmentation;
//! * [`pipeline`] — the training-set builder with the three training
//!   strategies of Fig. 8 (synthesized-only, paraphrase-only, Genie), the
//!   ablation switches of Table 3, and the fused streaming mode
//!   ([`pipeline::DataPipeline::run_streaming`]) that pipes each batch
//!   synthesize → paraphrase → expand → parser examples into incremental
//!   sharded writers without materializing the dataset;
//! * [`evaldata`] — the realistic evaluation sets (developer, cheatsheet,
//!   IFTTT with the Table 2 cleanup rules);
//! * [`eval`] — program accuracy and the §5.5 error analysis;
//! * [`experiments`] — reusable runners that regenerate every figure and
//!   table (used by the `genie-bench` binaries and the integration tests);
//! * [`engine`] — the **serving facade**: a long-lived, thread-safe
//!   [`engine::GenieEngine`] that answers `ParseRequest → GenieResult<ParseResponse>`
//!   with decoded, typechecked, policy-checked candidate programs;
//! * [`live`] — versioned world snapshots with atomic hot swap: a
//!   [`live::LiveWorld`] applies skill deltas at runtime by incrementally
//!   re-synthesizing only the affected `(rule, batch)` closure, retraining,
//!   and swapping library + model + policies as one new world version.
//!
//! # Builder-API migration notes
//!
//! As of the serving redesign, the public entry points are fallible and the
//! config structs have validating builders:
//!
//! * construct configs with `GeneratorConfig::builder()`,
//!   [`ParaphraseConfig::builder`] and [`PipelineConfig::builder`] — each
//!   `build()` returns `Result<_, ConfigError>` and rejects out-of-range
//!   values up front (struct literals still compile for backward
//!   compatibility, but skip validation; call `validate()` on them before
//!   use);
//! * [`DataPipeline::build`](pipeline::DataPipeline::build),
//!   [`DataPipeline::run_streaming`](pipeline::DataPipeline::run_streaming) and
//!   [`DataPipeline::run_streaming_sharded`](pipeline::DataPipeline::run_streaming_sharded)
//!   now return [`GenieResult`]; dataset-expansion helpers
//!   ([`expansion::expand_parameters`], [`expansion::expand_dataset`])
//!   propagate missing-dataset errors instead of panicking;
//! * everything funnels into one [`enum@Error`] (`Config` / `ThingTalk` /
//!   `Io` / serving variants), so `?` composes across layers;
//! * the seed-mixing helpers are unified in `genie-parallel`
//!   ([`genie_parallel::item_seed`], [`genie_parallel::stream_seed`]) —
//!   `genie`'s private `per_item_seed` is gone.

pub mod crowdsource;
pub mod dataset;
pub mod engine;
pub mod error;
pub mod eval;
pub mod evaldata;
pub mod expansion;
pub mod experiments;
pub mod live;
pub mod paraphrase;
pub mod pipeline;

pub use dataset::{
    read_columnar_shard, Dataset, DatasetFormat, Example, ExampleSource, ShardedDatasetWriter,
};
pub use engine::{
    EngineBuilder, EngineStats, EngineStatsHandle, GenieEngine, ParseCandidate, ParseFlags,
    ParseRequest, ParseResponse,
};
pub use error::{Error, GenieResult};
pub use eval::{evaluate, EvalResult};
pub use live::{
    DeltaJournal, JournalRecord, LiveWorld, RecoveryReport, RetrainMode, SkillDelta, SwapReport,
};
pub use paraphrase::{ParaphraseConfig, ParaphraseSimulator};
pub use pipeline::{DataPipeline, NnOptions, PipelineConfig, StreamStats, TrainingStrategy};
