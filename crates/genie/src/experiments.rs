//! Reusable experiment runners that regenerate every table and figure of the
//! paper's evaluation (§5 and §6). The `genie-bench` binaries call these
//! with the default scale and print the results; the integration tests call
//! them with [`ExperimentScale::tiny`] to keep CI fast.

use serde::{Deserialize, Serialize};

use genie_templates::{construct_template_counts, GeneratorConfig};
use luinet::{BaselineParser, LuinetParser, ModelConfig, ParserExample};
use thingpedia::Thingpedia;

use crate::dataset::{Composition, Dataset};
use crate::error::GenieResult;
use crate::eval::{evaluate, AccuracySummary, EvalResult};
use crate::evaldata::{
    aggregation_cheatsheet_data, cheatsheet_data, developer_data, ifttt_data, EvalDataConfig,
};
use crate::paraphrase::{ParaphraseConfig, ParaphraseSimulator};
use crate::pipeline::{DataPipeline, NnOptions, PipelineConfig, TrainingStrategy};

/// Knobs that scale every experiment from CI-sized to paper-sized runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Template-synthesis samples per construct rule.
    pub target_per_rule: usize,
    /// How many synthesized sentences are paraphrased.
    pub paraphrase_sample: usize,
    /// Training epochs of the parser.
    pub epochs: usize,
    /// Independently seeded training runs (the paper uses 3).
    pub seeds: usize,
    /// Size of each realistic evaluation set.
    pub eval_size: usize,
    /// Synthesis worker threads (`0` = all cores; never changes output).
    pub threads: usize,
    /// Synthesis dedup shards (`0` = 1; never changes output).
    pub shards: usize,
    /// Synthesis streaming batch size (`0` = one batch per rule; part of
    /// the dataset identity).
    pub batch_size: usize,
}

impl ExperimentScale {
    /// The default scale used by the benchmark binaries: minutes of CPU
    /// time, large enough for the qualitative trends to be stable.
    pub fn standard() -> Self {
        ExperimentScale {
            target_per_rule: 120,
            paraphrase_sample: 500,
            epochs: 3,
            seeds: 3,
            eval_size: 150,
            threads: 0,
            shards: 8,
            batch_size: 64,
        }
    }

    /// A tiny scale for tests.
    pub fn tiny() -> Self {
        ExperimentScale {
            target_per_rule: 10,
            paraphrase_sample: 40,
            epochs: 1,
            seeds: 1,
            eval_size: 25,
            threads: 0,
            shards: 8,
            batch_size: 64,
        }
    }

    /// Multiply the data-related knobs by a factor (`--scale` flag of the
    /// binaries).
    pub fn scaled_by(mut self, factor: usize) -> Self {
        let factor = factor.max(1);
        self.target_per_rule *= factor;
        self.paraphrase_sample *= factor;
        self.eval_size *= factor;
        self
    }

    fn pipeline_config(&self, seed: u64, aggregation: bool) -> GenieResult<PipelineConfig> {
        let synthesis = GeneratorConfig::builder()
            .target_per_rule(self.target_per_rule)
            .max_depth(5)
            .instantiations_per_template(2)
            .seed(seed)
            .include_aggregation(aggregation)
            .include_timers(true)
            .threads(self.threads)
            .shards(self.shards)
            .batch_size(self.batch_size)
            .build()?;
        let paraphrase = ParaphraseConfig::builder()
            .per_sentence(2)
            .error_rate(0.08)
            .seed(seed)
            .build()?;
        Ok(PipelineConfig::builder()
            .synthesis(synthesis)
            .paraphrase(paraphrase)
            .paraphrase_sample(self.paraphrase_sample)
            .expansion_paraphrase(3)
            .expansion_synthesized(1)
            .parameter_expansion(true)
            .seed(seed)
            .build()?)
    }
}

/// The four test sets of Fig. 8.
#[derive(Debug, Clone)]
pub struct TestSets {
    /// Paraphrases of programs not seen in training (the paraphrase test).
    pub paraphrase: Dataset,
    /// The realistic validation set (developer data).
    pub validation: Dataset,
    /// Cheatsheet test data.
    pub cheatsheet: Dataset,
    /// IFTTT test data.
    pub ifttt: Dataset,
}

/// Build the four test sets with seeds disjoint from training.
pub fn build_test_sets(library: &Thingpedia, scale: ExperimentScale) -> TestSets {
    let eval_config = EvalDataConfig {
        size: scale.eval_size,
        seed: 987_654,
    };
    let validation = developer_data(library, eval_config);
    let cheatsheet = cheatsheet_data(library, eval_config);
    let ifttt = ifttt_data(
        library,
        EvalDataConfig {
            size: (scale.eval_size / 2).max(10),
            seed: 987_654,
        },
    );
    // Paraphrase test: paraphrases of a *held-out* synthesis (different seed
    // than training), so the function combinations differ from training.
    let held_out = developer_data(
        library,
        EvalDataConfig {
            size: scale.eval_size,
            seed: 555_111,
        },
    );
    let simulator = ParaphraseSimulator::new(ParaphraseConfig {
        per_sentence: 1,
        error_rate: 0.0,
        seed: 31,
    });
    let paraphrase = Dataset::from_examples(simulator.paraphrase_all(&held_out.examples));
    TestSets {
        paraphrase,
        validation,
        cheatsheet,
        ifttt,
    }
}

/// Train one parser under a strategy and evaluate it on a list of test sets,
/// returning the program accuracy per test set.
#[allow(clippy::too_many_arguments)]
fn run_once(
    library: &Thingpedia,
    scale: ExperimentScale,
    strategy: TrainingStrategy,
    options: NnOptions,
    use_pretrained_lm: bool,
    parameter_expansion: bool,
    seed: u64,
    test_sets: &[(&str, &Dataset)],
) -> GenieResult<Vec<(String, EvalResult)>> {
    let mut config = scale.pipeline_config(seed, false)?;
    config.parameter_expansion = parameter_expansion;
    let pipeline = DataPipeline::new(library, config);
    let data = pipeline.build()?;
    let training = data.for_strategy(strategy);
    let train_examples = pipeline.to_parser_examples(&training, options);

    let mut parser = LuinetParser::new(ModelConfig {
        epochs: scale.epochs,
        max_length: 48,
        lm_weight: if use_pretrained_lm { 2.0 } else { 0.0 },
        seed,
        threads: scale.threads,
        ..ModelConfig::default()
    });
    if use_pretrained_lm {
        parser = parser.with_pretrained_lm(pipeline.pretrain_lm(2));
    }
    parser.train(&train_examples);

    Ok(test_sets
        .iter()
        .map(|(name, dataset)| {
            let sentences: Vec<genie_nlp::TokenStream> = dataset
                .examples
                .iter()
                .map(|e| genie_templates::intern::shared().tokenized(&e.utterance))
                .collect();
            let gold: Vec<Vec<String>> = dataset
                .examples
                .iter()
                .map(|e| pipeline.gold_tokens(e, options))
                .collect();
            let predictions = parser.predict_batch(&sentences);
            let result = evaluate(library, &dataset.examples, &gold, &predictions);
            ((*name).to_owned(), result)
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Fig. 8 — training strategies
// ---------------------------------------------------------------------------

/// One bar group of Fig. 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Training strategy label.
    pub strategy: String,
    /// Accuracy on the paraphrase test set.
    pub paraphrase: AccuracySummary,
    /// Accuracy on the validation (developer) set.
    pub validation: AccuracySummary,
    /// Accuracy on the cheatsheet test set.
    pub cheatsheet: AccuracySummary,
    /// Accuracy on the IFTTT test set.
    pub ifttt: AccuracySummary,
}

/// Reproduce Fig. 8: train with synthesized-only, paraphrase-only, and the
/// Genie strategy, and evaluate each on the four test sets.
pub fn training_strategies(
    library: &Thingpedia,
    scale: ExperimentScale,
) -> GenieResult<Vec<Fig8Row>> {
    let test_sets = build_test_sets(library, scale);
    let sets: Vec<(&str, &Dataset)> = vec![
        ("paraphrase", &test_sets.paraphrase),
        ("validation", &test_sets.validation),
        ("cheatsheet", &test_sets.cheatsheet),
        ("ifttt", &test_sets.ifttt),
    ];
    [
        TrainingStrategy::SynthesizedOnly,
        TrainingStrategy::ParaphraseOnly,
        TrainingStrategy::Genie,
    ]
    .into_iter()
    .map(|strategy| {
        let mut per_set: Vec<Vec<f64>> = vec![Vec::new(); sets.len()];
        for seed in 0..scale.seeds {
            let results = run_once(
                library,
                scale,
                strategy,
                NnOptions::default(),
                true,
                true,
                seed as u64,
                &sets,
            )?;
            for (idx, (_, result)) in results.iter().enumerate() {
                per_set[idx].push(result.program_accuracy);
            }
        }
        Ok(Fig8Row {
            strategy: strategy.label().to_owned(),
            paraphrase: AccuracySummary::of(&per_set[0]),
            validation: AccuracySummary::of(&per_set[1]),
            cheatsheet: AccuracySummary::of(&per_set[2]),
            ifttt: AccuracySummary::of(&per_set[3]),
        })
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Table 3 — ablation study
// ---------------------------------------------------------------------------

/// One row of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Row label ("Genie", "− canonicalization", …).
    pub name: String,
    /// Accuracy on the paraphrase test set.
    pub paraphrase: AccuracySummary,
    /// Accuracy on the validation set.
    pub validation: AccuracySummary,
    /// Accuracy on validation sentences whose function combination is not in
    /// training ("New Program").
    pub new_program: AccuracySummary,
}

/// Reproduce Table 3: remove one feature at a time from the Genie
/// configuration.
pub fn ablation(library: &Thingpedia, scale: ExperimentScale) -> GenieResult<Vec<Table3Row>> {
    use thingtalk::nn_syntax::NnSyntaxOptions;

    let test_sets = build_test_sets(library, scale);

    // The "new program" subset is computed against a reference synthesis
    // with the training seed, approximating which function combinations the
    // training set contains.
    let reference_pipeline = DataPipeline::new(library, scale.pipeline_config(0, false)?);
    let reference = reference_pipeline.build()?.combined();
    let (_, new_programs) = test_sets.validation.split_by_seen_programs(&reference);

    let configurations: Vec<(&str, NnOptions, bool, bool)> = vec![
        (
            "Genie",
            NnOptions {
                syntax: NnSyntaxOptions::full(),
                canonicalize: true,
            },
            true,
            true,
        ),
        (
            "- canonicalization",
            NnOptions {
                syntax: NnSyntaxOptions::full(),
                canonicalize: false,
            },
            true,
            true,
        ),
        (
            "- keyword param.",
            NnOptions {
                syntax: NnSyntaxOptions {
                    keyword_params: false,
                    type_annotations: false,
                },
                canonicalize: true,
            },
            true,
            true,
        ),
        (
            "- type annotations",
            NnOptions {
                syntax: NnSyntaxOptions::default(),
                canonicalize: true,
            },
            true,
            true,
        ),
        (
            "- param. expansion",
            NnOptions {
                syntax: NnSyntaxOptions::full(),
                canonicalize: true,
            },
            true,
            false,
        ),
        (
            "- decoder LM",
            NnOptions {
                syntax: NnSyntaxOptions::full(),
                canonicalize: true,
            },
            false,
            true,
        ),
    ];

    let sets: Vec<(&str, &Dataset)> = vec![
        ("paraphrase", &test_sets.paraphrase),
        ("validation", &test_sets.validation),
        ("new_program", &new_programs),
    ];

    configurations
        .into_iter()
        .map(|(name, options, use_lm, expansion)| {
            let mut per_set: Vec<Vec<f64>> = vec![Vec::new(); sets.len()];
            for seed in 0..scale.seeds {
                let results = run_once(
                    library,
                    scale,
                    TrainingStrategy::Genie,
                    options,
                    use_lm,
                    expansion,
                    seed as u64,
                    &sets,
                )?;
                for (idx, (_, result)) in results.iter().enumerate() {
                    per_set[idx].push(result.program_accuracy);
                }
            }
            Ok(Table3Row {
                name: name.to_owned(),
                paraphrase: AccuracySummary::of(&per_set[0]),
                validation: AccuracySummary::of(&per_set[1]),
                new_program: AccuracySummary::of(&per_set[2]),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 9 — case studies
// ---------------------------------------------------------------------------

/// One bar group of Fig. 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Case-study label (Spotify, TACL, TT+A).
    pub case_study: String,
    /// Accuracy of the Baseline model (paraphrase-only, no augmentation, no
    /// parameter expansion).
    pub baseline: AccuracySummary,
    /// Accuracy of the Genie model.
    pub genie: AccuracySummary,
}

/// Reproduce Fig. 9: the Spotify skill, TACL, and TT+A case studies,
/// comparing the Wang-et-al Baseline with Genie on cheatsheet test data.
pub fn case_studies(scale: ExperimentScale) -> GenieResult<Vec<Fig9Row>> {
    Ok(vec![
        spotify_case_study(scale)?,
        tacl_case_study(scale)?,
        aggregation_case_study(scale)?,
    ])
}

fn program_accuracy_for(
    library: &Thingpedia,
    pipeline: &DataPipeline<'_>,
    parser_output: &[Vec<String>],
    dataset: &Dataset,
) -> f64 {
    let gold: Vec<Vec<String>> = dataset
        .examples
        .iter()
        .map(|e| pipeline.gold_tokens(e, NnOptions::default()))
        .collect();
    evaluate(library, &dataset.examples, &gold, parser_output).program_accuracy
}

fn spotify_case_study(scale: ExperimentScale) -> GenieResult<Fig9Row> {
    let library = Thingpedia::builtin_with_spotify();
    let mut baseline_accs = Vec::new();
    let mut genie_accs = Vec::new();
    for seed in 0..scale.seeds {
        let pipeline = DataPipeline::new(&library, scale.pipeline_config(seed as u64, false)?);
        let data = pipeline.build()?;
        // Test set: cheatsheet commands that use the Spotify skill.
        let cheatsheet = cheatsheet_data(
            &library,
            EvalDataConfig {
                size: scale.eval_size * 3,
                seed: 42_000 + seed as u64,
            },
        );
        let spotify_test = Dataset::from_examples(
            cheatsheet
                .examples
                .into_iter()
                .filter(|e| e.program.devices().contains(&"com.spotify"))
                .take(scale.eval_size)
                .collect(),
        );
        if spotify_test.is_empty() {
            continue;
        }
        let sentences: Vec<genie_nlp::TokenStream> = spotify_test
            .examples
            .iter()
            .map(|e| genie_templates::intern::shared().tokenized(&e.utterance))
            .collect();

        // Baseline: paraphrases only, no augmentation or expansion.
        let mut baseline = BaselineParser::new();
        baseline.train(&pipeline.to_parser_examples(&data.paraphrases, NnOptions::default()));
        let baseline_predictions = baseline.predict_batch(&sentences);
        baseline_accs.push(program_accuracy_for(
            &library,
            &pipeline,
            &baseline_predictions,
            &spotify_test,
        ));

        // Genie: the full strategy with the trained parser.
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: scale.epochs,
            max_length: 48,
            lm_weight: 2.0,
            seed: seed as u64,
            threads: scale.threads,
            ..ModelConfig::default()
        })
        .with_pretrained_lm(pipeline.pretrain_lm(2));
        parser.train(&pipeline.to_parser_examples(&data.combined(), NnOptions::default()));
        let genie_predictions = parser.predict_batch(&sentences);
        genie_accs.push(program_accuracy_for(
            &library,
            &pipeline,
            &genie_predictions,
            &spotify_test,
        ));
    }
    Ok(Fig9Row {
        case_study: "Spotify".to_owned(),
        baseline: AccuracySummary::of(&baseline_accs),
        genie: AccuracySummary::of(&genie_accs),
    })
}

/// Tokenize a TACL policy for sequence prediction (whitespace, with quoted
/// strings split into word tokens surrounded by quote tokens).
pub fn policy_tokens(policy: &thingtalk::policy::Policy) -> Vec<String> {
    let text = policy.to_string();
    let mut tokens = Vec::new();
    let mut rest = text.as_str();
    while let Some(start) = rest.find('"') {
        for piece in rest[..start].split_whitespace() {
            tokens.push(piece.to_owned());
        }
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else {
            rest = "";
            break;
        };
        tokens.push("\"".to_owned());
        for word in after[..end].split_whitespace() {
            tokens.push(word.to_owned());
        }
        tokens.push("\"".to_owned());
        rest = &after[end + 1..];
    }
    for piece in rest.split_whitespace() {
        tokens.push(piece.to_owned());
    }
    tokens
}

fn tacl_case_study(scale: ExperimentScale) -> GenieResult<Fig9Row> {
    let library = Thingpedia::builtin();
    let mut baseline_accs = Vec::new();
    let mut genie_accs = Vec::new();
    for seed in 0..scale.seeds {
        let generator = genie_templates::SentenceGenerator::new(
            &library,
            GeneratorConfig::builder()
                .target_per_rule(scale.target_per_rule * 2)
                .max_depth(3)
                .instantiations_per_template(1)
                .seed(seed as u64)
                .include_aggregation(false)
                .include_timers(false)
                .threads(0)
                .build()?,
        );
        let policies = generator.synthesize_policies();
        if policies.len() < 10 {
            continue;
        }
        // Split: most for training, a held-out cheatsheet-style test set
        // rewritten by the paraphrase simulator.
        let split = (policies.len() * 4) / 5;
        let (train_policies, test_policies) = policies.split_at(split);
        let simulator = ParaphraseSimulator::new(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(17 + seed as u64)
                .build()?,
        );
        let train_paraphrase_examples: Vec<ParserExample> = train_policies
            .iter()
            .flat_map(|(utterance, policy)| {
                let mut rng = rand::SeedableRng::seed_from_u64(seed as u64);
                let example = crate::dataset::Example::new(
                    utterance.clone(),
                    thingtalk::Program::do_action(thingtalk::ast::Invocation::new(
                        "builtin", "noop",
                    )),
                    crate::dataset::ExampleSource::Synthesized,
                );
                let rewrites = simulator.paraphrase(&example, &mut rng);
                let interner = genie_templates::intern::shared();
                let mut out = vec![ParserExample::new(
                    interner.tokenize_text(utterance),
                    policy_tokens(policy),
                )];
                for rewrite in rewrites {
                    out.push(ParserExample::new(
                        interner.tokenized(&rewrite.utterance),
                        policy_tokens(policy),
                    ));
                }
                out
            })
            .collect();
        let test_examples: Vec<ParserExample> = test_policies
            .iter()
            .map(|(utterance, policy)| {
                ParserExample::new(
                    genie_templates::intern::shared().tokenize_text(utterance),
                    policy_tokens(policy),
                )
            })
            .collect();

        // Baseline: paraphrase matching over the (small) paraphrase portion
        // only — approximated by training on the non-synthesized rewrites.
        let mut baseline = BaselineParser::new();
        baseline.train(&train_paraphrase_examples[..train_paraphrase_examples.len() / 3]);
        baseline_accs.push(baseline.exact_match_accuracy(&test_examples));

        // Genie: train the parser on everything (synthesized + rewrites).
        let mut parser = LuinetParser::new(ModelConfig {
            epochs: scale.epochs,
            max_length: 40,
            lm_weight: 0.0,
            seed: seed as u64,
            threads: scale.threads,
            ..ModelConfig::default()
        });
        parser.train(&train_paraphrase_examples);
        genie_accs.push(parser.exact_match_accuracy(&test_examples));
    }
    Ok(Fig9Row {
        case_study: "TACL".to_owned(),
        baseline: AccuracySummary::of(&baseline_accs),
        genie: AccuracySummary::of(&genie_accs),
    })
}

fn aggregation_case_study(scale: ExperimentScale) -> GenieResult<Fig9Row> {
    let library = Thingpedia::builtin();
    let mut baseline_accs = Vec::new();
    let mut genie_accs = Vec::new();
    for seed in 0..scale.seeds {
        let mut config = scale.pipeline_config(seed as u64, true)?;
        config.synthesis.include_aggregation = true;
        let pipeline = DataPipeline::new(&library, config);
        let data = pipeline.build()?;
        let test = aggregation_cheatsheet_data(
            &library,
            EvalDataConfig {
                size: scale.eval_size,
                seed: 61_000 + seed as u64,
            },
        );
        if test.is_empty() {
            continue;
        }
        let sentences: Vec<genie_nlp::TokenStream> = test
            .examples
            .iter()
            .map(|e| genie_templates::intern::shared().tokenized(&e.utterance))
            .collect();

        let mut baseline = BaselineParser::new();
        baseline.train(&pipeline.to_parser_examples(&data.paraphrases, NnOptions::default()));
        baseline_accs.push(program_accuracy_for(
            &library,
            &pipeline,
            &baseline.predict_batch(&sentences),
            &test,
        ));

        let mut parser = LuinetParser::new(ModelConfig {
            epochs: scale.epochs,
            max_length: 48,
            lm_weight: 2.0,
            seed: seed as u64,
            threads: scale.threads,
            ..ModelConfig::default()
        })
        .with_pretrained_lm(pipeline.pretrain_lm(1));
        parser.train(&pipeline.to_parser_examples(&data.combined(), NnOptions::default()));
        genie_accs.push(program_accuracy_for(
            &library,
            &pipeline,
            &parser.predict_batch(&sentences),
            &test,
        ));
    }
    Ok(Fig9Row {
        case_study: "TT+A".to_owned(),
        baseline: AccuracySummary::of(&baseline_accs),
        genie: AccuracySummary::of(&genie_accs),
    })
}

// ---------------------------------------------------------------------------
// Fig. 7 and §5.2 statistics
// ---------------------------------------------------------------------------

/// Dataset statistics reported in §5.2 and Fig. 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Fig. 7 composition of the combined training set.
    pub composition: Composition,
    /// Number of synthesized sentences.
    pub synthesized_sentences: usize,
    /// Number of paraphrases.
    pub paraphrases: usize,
    /// Total training sentences after augmentation.
    pub total_sentences: usize,
    /// Distinct programs in the training set.
    pub distinct_programs: usize,
    /// Distinct function combinations.
    pub distinct_function_combinations: usize,
    /// Distinct words in synthesized sentences only.
    pub synthesized_words: usize,
    /// Distinct words in the full training set.
    pub total_words: usize,
    /// Fraction of the training set that is paraphrases.
    pub paraphrase_fraction: f64,
    /// Construct-template counts (primitive, compound, filters).
    pub construct_templates: (usize, usize, usize),
    /// Number of primitive templates in the library.
    pub primitive_templates: usize,
    /// Primitive templates per function.
    pub templates_per_function: f64,
}

/// Compute the dataset characteristics (Fig. 7 + the §5.2 statistics).
pub fn dataset_characteristics(
    library: &Thingpedia,
    scale: ExperimentScale,
) -> GenieResult<DatasetStats> {
    let pipeline = DataPipeline::new(library, scale.pipeline_config(0, false)?);
    let data = pipeline.build()?;
    let combined = data.combined();
    Ok(DatasetStats {
        composition: combined.composition(),
        synthesized_sentences: data.synthesized.len(),
        paraphrases: data.paraphrases.len(),
        total_sentences: combined.len(),
        distinct_programs: combined.distinct_programs(),
        distinct_function_combinations: combined.distinct_function_combinations(),
        synthesized_words: data.synthesized.distinct_words(),
        total_words: combined.distinct_words(),
        paraphrase_fraction: combined.paraphrase_fraction(),
        construct_templates: construct_template_counts(),
        primitive_templates: library.templates().len(),
        templates_per_function: library.templates_per_function(),
    })
}

/// Reproduce the §5.5 error analysis: run the Genie configuration once and
/// report the fine-grained metrics on the validation set.
pub fn error_analysis(library: &Thingpedia, scale: ExperimentScale) -> GenieResult<EvalResult> {
    let test_sets = build_test_sets(library, scale);
    let sets: Vec<(&str, &Dataset)> = vec![("validation", &test_sets.validation)];
    let results = run_once(
        library,
        scale,
        TrainingStrategy::Genie,
        NnOptions::default(),
        true,
        true,
        0,
        &sets,
    )?;
    Ok(results[0].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_characteristics_are_sane() {
        let library = Thingpedia::builtin();
        let stats = dataset_characteristics(&library, ExperimentScale::tiny()).unwrap();
        assert!(stats.synthesized_sentences > 50);
        assert!(stats.paraphrases > 10);
        assert!(stats.total_sentences >= stats.synthesized_sentences + stats.paraphrases);
        assert!(stats.paraphrase_fraction > 0.0 && stats.paraphrase_fraction < 1.0);
        assert!(stats.distinct_programs > 30);
        assert!(stats.total_words >= stats.synthesized_words);
        assert!(stats.composition.total() == stats.total_sentences);
        assert!(stats.primitive_templates > 250);
    }

    #[test]
    fn policy_tokens_handle_quoted_strings() {
        let policy = thingtalk::syntax::parse_policy(
            "source == \"secretary\" : now => @com.gmail.inbox() filter labels contains \"work\" => notify",
        )
        .unwrap();
        let tokens = policy_tokens(&policy);
        assert!(tokens.contains(&"secretary".to_owned()));
        assert!(tokens.contains(&"work".to_owned()));
        assert_eq!(tokens.iter().filter(|t| *t == "\"").count(), 4);
    }

    #[test]
    fn test_sets_are_built_and_disjoint_in_seeds() {
        let library = Thingpedia::builtin();
        let sets = build_test_sets(&library, ExperimentScale::tiny());
        assert!(!sets.validation.is_empty());
        assert!(!sets.cheatsheet.is_empty());
        assert!(!sets.ifttt.is_empty());
        assert!(!sets.paraphrase.is_empty());
    }
}
