//! The unified error story of the toolkit layer.
//!
//! Everything fallible in `genie` — config validation, dataset I/O,
//! ThingTalk parsing/typechecking, and the serving engine — funnels into
//! one [`enum@Error`], so a caller holding a [`GenieResult`] can match on
//! *why* a request failed without knowing which layer rejected it.

use std::fmt;

use genie_templates::ConfigError;

/// A specialized `Result` for toolkit and serving operations.
pub type GenieResult<T> = std::result::Result<T, Error>;

/// The error type of the `genie` crate: pipeline assembly, dataset
/// production, and the [`crate::engine::GenieEngine`] serving facade.
#[derive(Debug)]
pub enum Error {
    /// An invalid configuration rejected by a validating builder.
    Config(ConfigError),
    /// An error from the ThingTalk layer (parse, typecheck, policy, missing
    /// resource).
    ThingTalk(thingtalk::Error),
    /// A dataset read or write failed.
    Io(std::io::Error),
    /// A parse request carried an empty (or whitespace-only) utterance.
    EmptyUtterance,
    /// A parse request exceeded the engine's utterance length bound.
    UtteranceTooLong {
        /// Tokens in the offending utterance.
        tokens: usize,
        /// The engine's bound.
        limit: usize,
    },
    /// The model produced no candidate that decodes, typechecks and passes
    /// the access-control policies.
    NoParse {
        /// The rejected utterance.
        utterance: String,
        /// Candidates the model proposed (all rejected), with the reason
        /// each one was discarded.
        rejected: Vec<(String, thingtalk::Error)>,
    },
    /// The engine was built without a usable model.
    ModelUntrained,
    /// A binary artifact (columnar dataset shard, string table, or model
    /// snapshot) failed structural validation: bad magic, unsupported
    /// version, truncated section, or an out-of-range id. Distinct from
    /// [`Error::Io`] — the file was readable, its bytes were not.
    CorruptArtifact {
        /// What failed validation, and where.
        detail: String,
    },
}

impl Error {
    /// The rejected candidates of a [`Error::NoParse`], if that is what
    /// this error is.
    pub fn rejected_candidates(&self) -> Option<&[(String, thingtalk::Error)]> {
        match self {
            Error::NoParse { rejected, .. } => Some(rejected),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(error) => write!(f, "{error}"),
            Error::ThingTalk(error) => write!(f, "{error}"),
            Error::Io(error) => write!(f, "i/o error: {error}"),
            Error::EmptyUtterance => write!(f, "empty utterance"),
            Error::UtteranceTooLong { tokens, limit } => {
                write!(
                    f,
                    "utterance of {tokens} tokens exceeds the limit of {limit}"
                )
            }
            Error::NoParse {
                utterance,
                rejected,
            } => {
                write!(
                    f,
                    "no valid parse for `{utterance}` ({} candidate(s) rejected)",
                    rejected.len()
                )
            }
            Error::ModelUntrained => write!(f, "the engine's model has seen no training data"),
            Error::CorruptArtifact { detail } => write!(f, "corrupt artifact: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(error) => Some(error),
            Error::ThingTalk(error) => Some(error),
            Error::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(error: ConfigError) -> Self {
        Error::Config(error)
    }
}

impl From<thingtalk::Error> for Error {
    fn from(error: thingtalk::Error) -> Self {
        Error::ThingTalk(error)
    }
}

impl From<std::io::Error> for Error {
    fn from(error: std::io::Error) -> Self {
        Error::Io(error)
    }
}

impl From<genie_nlp::colfmt::ColfmtError> for Error {
    fn from(error: genie_nlp::colfmt::ColfmtError) -> Self {
        match error {
            genie_nlp::colfmt::ColfmtError::Io(error) => Error::Io(error),
            genie_nlp::colfmt::ColfmtError::Corrupt(detail) => Error::CorruptArtifact { detail },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_cause() {
        let config: Error = ConfigError::new("max_depth", "must be at least 1").into();
        assert!(config.to_string().contains("max_depth"));

        let tt: Error = thingtalk::Error::parse("dangling `=>`").into();
        assert!(tt.to_string().contains("dangling"));

        let io: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));

        let corrupt: Error = genie_nlp::colfmt::ColfmtError::Corrupt("bad magic".into()).into();
        assert!(matches!(corrupt, Error::CorruptArtifact { .. }));
        assert!(corrupt.to_string().contains("bad magic"));

        let nested_io = std::io::Error::new(std::io::ErrorKind::NotFound, "vanished");
        let io: Error = genie_nlp::colfmt::ColfmtError::Io(nested_io).into();
        assert!(matches!(io, Error::Io(_)), "colfmt Io maps onto Error::Io");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn no_parse_exposes_rejections() {
        let error = Error::NoParse {
            utterance: "frobnicate the cat".into(),
            rejected: vec![("now =>".into(), thingtalk::Error::parse("truncated"))],
        };
        assert_eq!(error.rejected_candidates().unwrap().len(), 1);
        assert!(error.to_string().contains("1 candidate(s) rejected"));
    }
}
