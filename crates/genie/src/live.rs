//! Live Thingpedia: versioned world snapshots with atomic hot swap,
//! incremental re-synthesis and delta retraining.
//!
//! A [`LiveWorld`] owns a [`GenieEngine`] plus everything needed to rebuild
//! its serving world when the skill library changes at runtime:
//!
//! 1. **Bootstrap** synthesizes a training set into a *snapshot-scoped*
//!    interner arena ([`genie_templates::intern::fresh`]), memoizing every
//!    `(rule, batch)` synthesis work item — candidates, program
//!    fingerprints and the pool draws it made — via the
//!    [`BatchObserver`](genie_templates::BatchObserver) hook, trains a
//!    [`LuinetParser`], and builds the engine (world version 1).
//! 2. **Reload** applies a [`SkillDelta`] to a copy of the library,
//!    pre-seeds a fresh snapshot arena for the *new* library, and diffs the
//!    new phrase pools against the memoized build
//!    ([`PoolDigests::diff`](genie_templates::PoolDigests)). Work items
//!    whose recorded draws never touched a changed pool entry are served
//!    from the memo by a [`BatchProvider`](genie_templates::BatchProvider)
//!    (their utterances re-interned into the new arena); only the affected
//!    closure is re-instantiated. The full example stream is retrained and
//!    [`GenieEngine::swap_world`] publishes library + model + policies as
//!    one new version.
//!
//! # Determinism contract
//!
//! An incremental reload emits a dataset **byte-identical** to a cold
//! bootstrap at the post-delta library, for any thread and shard count:
//!
//! * unaffected batches replay the exact candidates a live instantiation
//!   would produce (sound because a batch's control flow reads pool
//!   *content* only at its recorded draw indices; pool length changes force
//!   a full rebuild via
//!   [`PoolsDelta::lengths_changed`](genie_templates::PoolsDelta));
//! * batches still arrive at the canonical sink in `(registry order,
//!   batch index)` order, and dedup keys are injective per arena, so the
//!   keep/drop decisions equal the cold run's even where absolute symbol
//!   ids drift;
//! * downstream fuse stages (paraphrase, expansion, parser-example
//!   conversion) key their randomness on the global stream index, never on
//!   wall-clock or scheduling.
//!
//! Retraining from scratch on the byte-identical stream therefore yields a
//! byte-identical model ([`LuinetParser::weights_digest`] equality is the
//! cheap proxy the tests and the CI gate check). The optional
//! [`RetrainMode::FineTune`] path trades that equivalence for latency: it
//! clones the serving model and runs a few [`LuinetParser::fine_tune`]
//! epochs over the new stream instead.
//!
//! In-flight requests are never torn: they capture one immutable world
//! `Arc` at entry and finish on it even if a swap lands mid-request.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use genie_nlp::failpoint::fnv64;
use genie_templates::{
    BatchRecord, ConfigError, Interner, PoolDigests, PoolsDelta, ProvidedBatch, SentenceGenerator,
    TokenStream,
};
use luinet::{LuinetParser, ModelConfig, ParserExample};
use thingpedia::{ParamDatasets, PrimitiveTemplate, Thingpedia};
use thingtalk::class::ClassDef;
use thingtalk::policy::Policy;

use crate::engine::GenieEngine;
use crate::error::{Error, GenieResult};
use crate::pipeline::{DataPipeline, NnOptions, PipelineConfig, StreamStats};

pub mod bundle;
pub mod journal;

pub use journal::{DeltaJournal, JournalRecord};

/// One runtime change to the skill library.
#[derive(Debug, Clone)]
pub enum SkillDelta {
    /// Add a class, or replace an existing class in place (same template
    /// splice position, so unrelated pool entries keep their indices).
    Upsert {
        /// The class definition.
        class: ClassDef,
        /// Its primitive templates (replacing any previous ones).
        templates: Vec<PrimitiveTemplate>,
    },
    /// Remove a class and all its primitive templates.
    Remove {
        /// The class name (e.g. `com.spotify`).
        name: String,
    },
}

impl SkillDelta {
    /// The class name the delta targets.
    pub fn class_name(&self) -> &str {
        match self {
            SkillDelta::Upsert { class, .. } => &class.name,
            SkillDelta::Remove { name } => name,
        }
    }

    /// Apply the delta to a library copy.
    fn apply(&self, library: &mut Thingpedia) {
        match self {
            SkillDelta::Upsert { class, templates } => {
                library.upsert_class(class.clone(), templates.clone());
            }
            SkillDelta::Remove { name } => {
                library.remove_class(name);
            }
        }
    }
}

/// How a reload produces the next model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainMode {
    /// Retrain from scratch on the (incrementally re-synthesized) stream —
    /// the byte-identical path: the swapped model equals a cold bootstrap
    /// at the new library.
    Full,
    /// Clone the serving model and run this many
    /// [`LuinetParser::fine_tune`] epochs over the new stream — the
    /// low-latency approximate path (the new stream contains the full
    /// dataset, so rehearsal against forgetting is built in).
    FineTune {
        /// Fine-tuning epochs (0 falls back to [`RetrainMode::Full`]).
        epochs: usize,
    },
}

/// What one completed reload did, returned by [`LiveWorld::reload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// The world version now serving.
    pub version: u64,
    /// Synthesis `(rule, batch)` work items in the new build.
    pub total_batches: usize,
    /// Work items served from the memo instead of re-instantiated.
    pub reused_batches: usize,
    /// Pool entries whose content the delta changed.
    pub changed_pool_entries: usize,
    /// Whether a pool length change forced a full re-synthesis.
    pub full_rebuild: bool,
    /// Parser examples the retraining consumed.
    pub emitted_examples: usize,
    /// Whether the model was fine-tuned instead of retrained from scratch.
    pub fine_tuned: bool,
    /// End-to-end reload latency (delta apply → re-synthesis → retrain →
    /// swap), as surfaced by [`crate::engine::EngineStats::last_swap_us`].
    pub swap_latency_us: u64,
    /// Whether the new world was persisted as a bundle after the swap
    /// (vacuously `true` for worlds without durability). A `false` here is
    /// survivable — the delta is journaled, so recovery replays it — but
    /// the next restart pays a replay instead of a bundle load.
    pub persisted: bool,
}

/// What [`LiveWorld::open_durable`] did to get back to serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a usable world bundle was loaded (`false` = cold bootstrap,
    /// because the bundle was missing, torn, or built under a different
    /// configuration).
    pub recovered_from_bundle: bool,
    /// The bundle's world version (0 when none was loaded).
    pub bundle_version: u64,
    /// Journal records replayed on top of the starting world.
    pub replayed: usize,
    /// Journal records skipped because the starting world already included
    /// them (their version ≤ the bundle's).
    pub skipped: usize,
    /// Whether the journal ended in a torn/corrupt tail record (ignored;
    /// everything before it replayed).
    pub torn_tail: bool,
    /// The world version now serving.
    pub version: u64,
}

/// The memoized synthesis of the serving world: everything the next delta
/// needs to decide which work items it can replay.
struct SynthesisMemo {
    /// The snapshot arena the memoized candidates' utterances live in.
    arena: Arc<Interner>,
    /// Per-entry content digests of the phrase pools at build time.
    digests: PoolDigests,
    /// Every completed `(rule, batch)` work item, keyed by `(rule_id,
    /// batch)`.
    batches: HashMap<(u64, u64), BatchRecord>,
}

/// Mutable half of a [`LiveWorld`], held behind a mutex so concurrent
/// reloads serialize (requests never wait on it — they go straight to the
/// engine's world slot).
struct LiveState {
    library: Arc<Thingpedia>,
    memo: SynthesisMemo,
}

/// Everything one synthesis + training pass produced.
struct BuildOutcome {
    parser: LuinetParser,
    memo: SynthesisMemo,
    stats: StreamStats,
    examples: usize,
    reused_batches: usize,
    changed_pool_entries: usize,
    full_rebuild: bool,
    fine_tuned: bool,
}

/// The on-disk side of a durable world: the delta journal plus the bundle
/// path appends and recoveries go through.
struct Durability {
    journal: DeltaJournal,
    bundle_path: PathBuf,
}

/// A hot-swappable serving world: a [`GenieEngine`] plus the synthesis
/// memo and configuration needed to rebuild it incrementally on a skill
/// delta. See the [module docs](self) for the lifecycle.
pub struct LiveWorld {
    engine: GenieEngine,
    pipeline: PipelineConfig,
    model: ModelConfig,
    options: NnOptions,
    policies: Vec<Policy>,
    config_digest: u64,
    state: Mutex<LiveState>,
    durability: Option<Durability>,
}

/// The configuration identity a bundle is scoped to: a world rebuilt under
/// a different pipeline/model/options tuple is a different world, so its
/// bundle must not warm-start this one.
fn config_digest(pipeline: &PipelineConfig, model: &ModelConfig, options: &NnOptions) -> u64 {
    fnv64(format!("{pipeline:?}|{model:?}|{options:?}").as_bytes())
}

impl LiveWorld {
    /// Bootstrap a live world over `library`: synthesize + train with the
    /// given configs, memoize the synthesis, and build the engine (world
    /// version 1). Forces [`genie_templates::GeneratorConfig::pool_streams`]
    /// (genie_templates) on — per-template pool RNG streams are what keep
    /// a delta's pool damage local, and the knob is part of the dataset
    /// identity, so it must be fixed for the world's whole lifetime.
    ///
    /// # Errors
    ///
    /// Propagates config validation, pipeline and engine-build failures.
    pub fn bootstrap(
        library: Thingpedia,
        pipeline: PipelineConfig,
        model: ModelConfig,
    ) -> GenieResult<Self> {
        Self::bootstrap_with(library, pipeline, model, NnOptions::default(), Vec::new())
    }

    /// [`LiveWorld::bootstrap`] with explicit parser-token options and
    /// TACL policies (re-installed verbatim on every swap).
    pub fn bootstrap_with(
        library: Thingpedia,
        mut pipeline: PipelineConfig,
        model: ModelConfig,
        options: NnOptions,
        policies: Vec<Policy>,
    ) -> GenieResult<Self> {
        pipeline.synthesis.pool_streams = true;
        pipeline.validate()?;
        let library = Arc::new(library);
        let outcome = build_world(
            &library,
            &pipeline,
            &model,
            options,
            None,
            TrainPlan::Scratch,
        )?;
        let engine = GenieEngine::builder()
            .thingpedia_shared(library.clone())
            .model(outcome.parser)
            .policies(policies.clone())
            .build()?;
        let config_digest = config_digest(&pipeline, &model, &options);
        Ok(LiveWorld {
            engine,
            pipeline,
            model,
            options,
            policies,
            config_digest,
            state: Mutex::new(LiveState {
                library,
                memo: outcome.memo,
            }),
            durability: None,
        })
    }

    /// Open a **durable** live world rooted at `dir`: recover from the
    /// world bundle and delta journal if they exist, else bootstrap cold
    /// from `library` and create them.
    ///
    /// Recovery order:
    ///
    /// 1. load `world.bundle` — if it unseals, decodes, and was built under
    ///    this exact (pipeline, model, options) configuration, the world
    ///    warm-starts at the bundle's version with the bundled model and
    ///    synthesis memo (no re-synthesis, no retraining);
    /// 2. otherwise (missing, torn, or config drift) bootstrap cold at
    ///    `library` — version 1, exactly like [`LiveWorld::bootstrap`];
    /// 3. replay every effective journal record newer than the starting
    ///    version, in order (a torn journal tail is ignored as a typed
    ///    condition; abort-cancelled records are skipped);
    /// 4. persist a consolidated bundle at the recovered version.
    ///
    /// The result is deterministic: the recovered `weights_digest` equals
    /// the digest the primary served at that version (see the
    /// [determinism contract](self)).
    ///
    /// # Errors
    ///
    /// Propagates journal/bundle I/O failures, a journal whose intact
    /// records fail to decode, a version gap in the journal (history lost
    /// beyond what cold bootstrap can rebuild), and pipeline/engine errors.
    pub fn open_durable(
        dir: &Path,
        library: Thingpedia,
        pipeline: PipelineConfig,
        model: ModelConfig,
    ) -> GenieResult<(Self, RecoveryReport)> {
        Self::open_durable_with(
            dir,
            library,
            pipeline,
            model,
            NnOptions::default(),
            Vec::new(),
        )
    }

    /// [`LiveWorld::open_durable`] with explicit parser-token options and
    /// TACL policies.
    pub fn open_durable_with(
        dir: &Path,
        library: Thingpedia,
        mut pipeline: PipelineConfig,
        model: ModelConfig,
        options: NnOptions,
        policies: Vec<Policy>,
    ) -> GenieResult<(Self, RecoveryReport)> {
        pipeline.synthesis.pool_streams = true;
        pipeline.validate()?;
        std::fs::create_dir_all(dir)?;
        let digest = config_digest(&pipeline, &model, &options);
        let bundle_path = dir.join("world.bundle");
        let (journal, torn) = DeltaJournal::open(&dir.join("deltas.journal"))?;
        let durability = Durability {
            journal,
            bundle_path: bundle_path.clone(),
        };
        // A bundle that is missing, torn, or config-scoped to a different
        // world is simply unusable — recovery falls back to cold bootstrap
        // plus a full journal replay, which rebuilds the identical world.
        let warm = match bundle::load(&bundle_path) {
            Ok(bundle) if bundle.config_digest == digest => Some(bundle),
            _ => None,
        };
        let (world, recovered_from_bundle, bundle_version) = match warm {
            Some(bundle) => {
                let (library, memo, snapshot, version) = bundle.into_parts();
                let parser = luinet::snapshot::from_bytes(&snapshot)?;
                let engine = GenieEngine::builder()
                    .thingpedia_shared(library.clone())
                    .model(parser)
                    .policies(policies.clone())
                    .world_version(version)
                    .build()?;
                (
                    LiveWorld {
                        engine,
                        pipeline,
                        model,
                        options,
                        policies,
                        config_digest: digest,
                        state: Mutex::new(LiveState { library, memo }),
                        durability: Some(durability),
                    },
                    true,
                    version,
                )
            }
            None => {
                let mut world = Self::bootstrap_with(library, pipeline, model, options, policies)?;
                world.durability = Some(durability);
                (world, false, 0)
            }
        };
        let mut replayed = 0;
        let mut skipped = 0;
        let records = match &world.durability {
            Some(durability) => durability.journal.records_since(0),
            None => Vec::new(),
        };
        for record in records {
            let current = world.engine.world_version();
            if record.version <= current {
                skipped += 1;
                continue;
            }
            if record.version != current + 1 {
                return Err(Error::CorruptArtifact {
                    detail: format!(
                        "journal record v{} does not follow recovered world v{current} — \
                         history gap",
                        record.version
                    ),
                });
            }
            world.reload_inner(&record.delta, record.mode, false, false)?;
            replayed += 1;
        }
        if replayed > 0 || !recovered_from_bundle {
            world.persist_current()?;
        }
        let version = world.engine.world_version();
        Ok((
            world,
            RecoveryReport {
                recovered_from_bundle,
                bundle_version,
                replayed,
                skipped,
                torn_tail: torn.is_some(),
                version,
            },
        ))
    }

    /// Seal and atomically persist the serving world as a bundle at its
    /// current version. No-op for non-durable worlds.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the sealed write fails (including an injected
    /// `bundle.write` fault).
    pub fn persist_current(&self) -> GenieResult<()> {
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let snapshot = luinet::snapshot::to_bytes(&self.engine.model());
        let payload = bundle::encode(
            self.engine.world_version(),
            self.config_digest,
            &state.library,
            &state.memo,
            &snapshot,
        );
        bundle::save(&durability.bundle_path, &payload)
    }

    /// The engine this world serves through. Clones share the world slot,
    /// so a handle captured before a reload observes the swap.
    pub fn engine(&self) -> &GenieEngine {
        &self.engine
    }

    /// The world version currently serving.
    pub fn version(&self) -> u64 {
        self.engine.world_version()
    }

    /// The library of the serving world.
    pub fn library(&self) -> Arc<Thingpedia> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .library
            .clone()
    }

    /// Apply a skill delta with byte-identical retraining
    /// ([`RetrainMode::Full`]).
    ///
    /// # Errors
    ///
    /// Propagates pipeline and training failures; the serving world is
    /// untouched unless the whole rebuild succeeds.
    pub fn reload(&self, delta: &SkillDelta) -> GenieResult<SwapReport> {
        self.reload_with(delta, RetrainMode::Full)
    }

    /// Apply a skill delta: copy + patch the library, incrementally
    /// re-synthesize, retrain per `mode`, and atomically swap the new
    /// world in. Concurrent reloads serialize; requests in flight finish
    /// on the world they started with.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and training failures; the serving world is
    /// untouched unless the whole rebuild succeeds.
    pub fn reload_with(&self, delta: &SkillDelta, mode: RetrainMode) -> GenieResult<SwapReport> {
        self.reload_inner(delta, mode, true, true)
    }

    /// The reload engine. `journal` appends the delta as a WAL record
    /// before the rebuild (and an abort record on rebuild failure);
    /// recovery replay passes `false` because the record already exists.
    /// `persist` rewrites the world bundle after a successful swap.
    fn reload_inner(
        &self,
        delta: &SkillDelta,
        mode: RetrainMode,
        journal: bool,
        persist: bool,
    ) -> GenieResult<SwapReport> {
        let start = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // The state lock serializes reloads, so `world_version` cannot move
        // between this read and the swap below.
        let next_version = self.engine.world_version() + 1;
        if journal {
            if let Some(durability) = &self.durability {
                // WAL discipline: the delta is durable *before* the rebuild
                // runs. An append failure is a typed error and the old
                // world keeps serving — nothing was rebuilt or swapped.
                durability.journal.append_delta(next_version, delta, mode)?;
            }
        }
        let rebuilt = (|| {
            // Chaos-harness injection point: a fault here (error or panic)
            // must leave the old world serving and the version untouched —
            // the swap below only happens after the whole rebuild succeeds.
            genie_nlp::failpoint::fail_io("reload.retrain")?;
            let mut library = (*state.library).clone();
            delta.apply(&mut library);
            let library = Arc::new(library);
            let plan = match mode {
                RetrainMode::Full | RetrainMode::FineTune { epochs: 0 } => TrainPlan::Scratch,
                RetrainMode::FineTune { epochs } => TrainPlan::FineTune {
                    base: self.engine.model(),
                    epochs,
                },
            };
            let outcome = build_world(
                &library,
                &self.pipeline,
                &self.model,
                self.options,
                Some(&state.memo),
                plan,
            )?;
            Ok((library, outcome))
        })();
        let (library, outcome) = match rebuilt {
            Ok(rebuilt) => rebuilt,
            Err(error) => {
                if journal {
                    if let Some(durability) = &self.durability {
                        // Best-effort: the journaled delta failed, so mark
                        // it dead for recovery. If this append is itself
                        // lost to a crash, replay applies the delta — a
                        // deterministic world the version accounting still
                        // agrees with.
                        let _ = durability.journal.append_abort(next_version);
                    }
                }
                return Err(error);
            }
        };
        let parser = Arc::new(outcome.parser);
        let swap_latency_us = start.elapsed().as_micros() as u64;
        let version = self.engine.swap_world_at(
            next_version,
            library.clone(),
            parser.clone(),
            self.policies.clone(),
            swap_latency_us,
        );
        state.library = library;
        state.memo = outcome.memo;
        let mut persisted = true;
        if persist {
            if let Some(durability) = &self.durability {
                // Bundle-write failure is survivable (the journal already
                // has the delta; the next restart replays it), so it is
                // reported, not propagated.
                let payload = bundle::encode(
                    version,
                    self.config_digest,
                    &state.library,
                    &state.memo,
                    &luinet::snapshot::to_bytes(&parser),
                );
                persisted = bundle::save(&durability.bundle_path, &payload).is_ok();
            }
        }
        Ok(SwapReport {
            version,
            total_batches: outcome.stats.synthesis.batches,
            reused_batches: outcome.reused_batches,
            changed_pool_entries: outcome.changed_pool_entries,
            full_rebuild: outcome.full_rebuild,
            emitted_examples: outcome.examples,
            fine_tuned: outcome.fine_tuned,
            swap_latency_us,
            persisted,
        })
    }

    /// The FNV-1a digest of the serving model's weights — the byte-identity
    /// proxy replication and recovery compare.
    pub fn weights_digest(&self) -> u64 {
        self.engine.model().weights_digest()
    }

    /// Whether this world journals deltas and persists bundles.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The effective journal history after `since` (exclusive). Empty for
    /// non-durable worlds.
    pub fn journal_records_since(&self, since: u64) -> Vec<JournalRecord> {
        match &self.durability {
            Some(durability) => durability.journal.records_since(since),
            None => Vec::new(),
        }
    }

    /// The first effectively journaled version (0 when empty or
    /// non-durable) — a follower older than this must resync from a bundle.
    pub fn journal_first_version(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |durability| durability.journal.first_version())
    }

    /// The last effectively journaled version (0 when empty or
    /// non-durable).
    pub fn journal_last_version(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |durability| durability.journal.last_version())
    }

    /// The sealed bytes of the current world bundle, as served to a
    /// resyncing follower (the follower unseals and decodes them with
    /// [`LiveWorld::install_bundle`]).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for non-durable worlds; [`Error::Io`] when the
    /// bundle file is unreadable.
    pub fn bundle_bytes(&self) -> GenieResult<Vec<u8>> {
        let Some(durability) = &self.durability else {
            return Err(Error::Config(ConfigError::new(
                "durability",
                "this world was not opened durable — no bundle exists",
            )));
        };
        // The sealed image ships verbatim: the checksum footer crosses the
        // wire, so a truncated transfer is detected at the receiver.
        Ok(std::fs::read(&durability.bundle_path)?)
    }

    /// Install a primary's sealed bundle — the follower resync path. The
    /// bundle must match this world's configuration digest; versions at or
    /// below the serving one are a no-op. Returns the serving version.
    ///
    /// # Errors
    ///
    /// [`Error::CorruptArtifact`] when the bytes fail validation or the
    /// configuration digests differ.
    pub fn install_bundle(&self, sealed_bytes: &[u8]) -> GenieResult<u64> {
        let payload = genie_nlp::sealed::unseal(sealed_bytes).map_err(Error::from)?;
        let decoded = bundle::decode(payload)?;
        if decoded.config_digest != self.config_digest {
            return Err(Error::CorruptArtifact {
                detail: format!(
                    "bundle configuration digest {:#018x} does not match this world's {:#018x}",
                    decoded.config_digest, self.config_digest
                ),
            });
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let current = self.engine.world_version();
        if decoded.world_version <= current {
            return Ok(current);
        }
        let (library, memo, snapshot, version) = decoded.into_parts();
        let parser = luinet::snapshot::from_bytes(&snapshot)?;
        let installed = self.engine.swap_world_at(
            version,
            library.clone(),
            Arc::new(parser),
            self.policies.clone(),
            0,
        );
        state.library = library;
        state.memo = memo;
        Ok(installed)
    }
}

/// How [`build_world`] turns the example stream into a parser.
enum TrainPlan {
    /// `LuinetParser::new` + full training — byte-identical to a cold
    /// bootstrap at the same library.
    Scratch,
    /// Clone `base` (via a snapshot round-trip; the parser is deliberately
    /// not `Clone`) and fine-tune for `epochs`.
    FineTune {
        base: Arc<LuinetParser>,
        epochs: usize,
    },
}

/// One full synthesis + training pass over `library`, incrementally reusing
/// `previous` where the pool diff proves a work item unaffected.
fn build_world(
    library: &Thingpedia,
    pipeline: &PipelineConfig,
    model: &ModelConfig,
    options: NnOptions,
    previous: Option<&SynthesisMemo>,
    plan: TrainPlan,
) -> GenieResult<BuildOutcome> {
    let datasets = ParamDatasets::builtin();
    let arena = genie_templates::intern::fresh(library, &datasets);
    // The digest pass builds the new pools once up front (a pure function
    // of `(library, seed)`); the pipeline's own generator rebuilds them
    // identically, so the diff below describes exactly the pools the run
    // will draw from.
    let digests = {
        let generator =
            SentenceGenerator::with_interner(library, pipeline.synthesis, arena.clone());
        generator.pools().content_digests(generator.interner())
    };
    let delta: Option<PoolsDelta> = previous.map(|memo| memo.digests.diff(&digests));
    let full_rebuild = match &delta {
        Some(delta) => delta.lengths_changed(),
        None => false,
    };
    let changed_pool_entries = delta.as_ref().map_or(0, |d| d.changed_entries);
    let reusable = match (&delta, previous) {
        (Some(delta), Some(memo)) if !delta.lengths_changed() => Some((delta, memo)),
        _ => None,
    };
    let provider = reusable.map(|(delta, memo)| {
        move |rule_id: u64, batch: u64, local: &mut genie_templates::LocalInterner<'_>| {
            let record = memo.batches.get(&(rule_id, batch))?;
            if delta.affects(&record.draws) {
                return None;
            }
            let candidates = record
                .candidates
                .iter()
                .map(|example| {
                    let mut replay = example.clone();
                    let text = memo.arena.render(&example.utterance);
                    let mut stream = TokenStream::with_capacity(example.utterance.len());
                    local.intern_words(&text, &mut stream);
                    replay.utterance = stream;
                    replay
                })
                .collect();
            Some(ProvidedBatch {
                candidates,
                fingerprints: record.fingerprints.clone(),
                draws: record.draws.clone(),
            })
        }
    });
    let data_pipeline = DataPipeline::with_interner(library, *pipeline, arena.clone());
    let mut batches: HashMap<(u64, u64), BatchRecord> = HashMap::new();
    let mut observer = |record: BatchRecord| {
        batches.insert((record.rule_id, record.batch), record);
    };
    let mut examples: Vec<ParserExample> = Vec::new();
    let stats =
        data_pipeline.run_streaming_observed(
            options,
            provider.as_ref().map(|f| {
                f
                    as &(dyn Fn(
                        u64,
                        u64,
                        &mut genie_templates::LocalInterner<'_>,
                    ) -> Option<ProvidedBatch>
                          + Sync)
            }),
            Some(&mut observer),
            |example| examples.push(example),
        )?;
    let reused_batches = batches.values().filter(|record| record.provided).count();
    let (parser, fine_tuned) = match plan {
        TrainPlan::Scratch => {
            let mut parser = LuinetParser::new(model.clone());
            parser.train(&examples);
            (parser, false)
        }
        TrainPlan::FineTune { base, epochs } => {
            let bytes = luinet::snapshot::to_bytes(&base);
            let mut parser = luinet::snapshot::from_bytes(&bytes)?;
            parser.fine_tune(&examples, epochs);
            (parser, true)
        }
    };
    Ok(BuildOutcome {
        parser,
        memo: SynthesisMemo {
            arena,
            digests,
            batches,
        },
        stats,
        examples: examples.len(),
        reused_batches,
        changed_pool_entries,
        full_rebuild,
        fine_tuned,
    })
}
