//! Live Thingpedia: versioned world snapshots with atomic hot swap,
//! incremental re-synthesis and delta retraining.
//!
//! A [`LiveWorld`] owns a [`GenieEngine`] plus everything needed to rebuild
//! its serving world when the skill library changes at runtime:
//!
//! 1. **Bootstrap** synthesizes a training set into a *snapshot-scoped*
//!    interner arena ([`genie_templates::intern::fresh`]), memoizing every
//!    `(rule, batch)` synthesis work item — candidates, program
//!    fingerprints and the pool draws it made — via the
//!    [`BatchObserver`](genie_templates::BatchObserver) hook, trains a
//!    [`LuinetParser`], and builds the engine (world version 1).
//! 2. **Reload** applies a [`SkillDelta`] to a copy of the library,
//!    pre-seeds a fresh snapshot arena for the *new* library, and diffs the
//!    new phrase pools against the memoized build
//!    ([`PoolDigests::diff`](genie_templates::PoolDigests)). Work items
//!    whose recorded draws never touched a changed pool entry are served
//!    from the memo by a [`BatchProvider`](genie_templates::BatchProvider)
//!    (their utterances re-interned into the new arena); only the affected
//!    closure is re-instantiated. The full example stream is retrained and
//!    [`GenieEngine::swap_world`] publishes library + model + policies as
//!    one new version.
//!
//! # Determinism contract
//!
//! An incremental reload emits a dataset **byte-identical** to a cold
//! bootstrap at the post-delta library, for any thread and shard count:
//!
//! * unaffected batches replay the exact candidates a live instantiation
//!   would produce (sound because a batch's control flow reads pool
//!   *content* only at its recorded draw indices; pool length changes force
//!   a full rebuild via
//!   [`PoolsDelta::lengths_changed`](genie_templates::PoolsDelta));
//! * batches still arrive at the canonical sink in `(registry order,
//!   batch index)` order, and dedup keys are injective per arena, so the
//!   keep/drop decisions equal the cold run's even where absolute symbol
//!   ids drift;
//! * downstream fuse stages (paraphrase, expansion, parser-example
//!   conversion) key their randomness on the global stream index, never on
//!   wall-clock or scheduling.
//!
//! Retraining from scratch on the byte-identical stream therefore yields a
//! byte-identical model ([`LuinetParser::weights_digest`] equality is the
//! cheap proxy the tests and the CI gate check). The optional
//! [`RetrainMode::FineTune`] path trades that equivalence for latency: it
//! clones the serving model and runs a few [`LuinetParser::fine_tune`]
//! epochs over the new stream instead.
//!
//! In-flight requests are never torn: they capture one immutable world
//! `Arc` at entry and finish on it even if a swap lands mid-request.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use genie_templates::{
    BatchRecord, Interner, PoolDigests, PoolsDelta, ProvidedBatch, SentenceGenerator, TokenStream,
};
use luinet::{LuinetParser, ModelConfig, ParserExample};
use thingpedia::{ParamDatasets, PrimitiveTemplate, Thingpedia};
use thingtalk::class::ClassDef;
use thingtalk::policy::Policy;

use crate::engine::GenieEngine;
use crate::error::GenieResult;
use crate::pipeline::{DataPipeline, NnOptions, PipelineConfig, StreamStats};

/// One runtime change to the skill library.
#[derive(Debug, Clone)]
pub enum SkillDelta {
    /// Add a class, or replace an existing class in place (same template
    /// splice position, so unrelated pool entries keep their indices).
    Upsert {
        /// The class definition.
        class: ClassDef,
        /// Its primitive templates (replacing any previous ones).
        templates: Vec<PrimitiveTemplate>,
    },
    /// Remove a class and all its primitive templates.
    Remove {
        /// The class name (e.g. `com.spotify`).
        name: String,
    },
}

impl SkillDelta {
    /// The class name the delta targets.
    pub fn class_name(&self) -> &str {
        match self {
            SkillDelta::Upsert { class, .. } => &class.name,
            SkillDelta::Remove { name } => name,
        }
    }

    /// Apply the delta to a library copy.
    fn apply(&self, library: &mut Thingpedia) {
        match self {
            SkillDelta::Upsert { class, templates } => {
                library.upsert_class(class.clone(), templates.clone());
            }
            SkillDelta::Remove { name } => {
                library.remove_class(name);
            }
        }
    }
}

/// How a reload produces the next model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainMode {
    /// Retrain from scratch on the (incrementally re-synthesized) stream —
    /// the byte-identical path: the swapped model equals a cold bootstrap
    /// at the new library.
    Full,
    /// Clone the serving model and run this many
    /// [`LuinetParser::fine_tune`] epochs over the new stream — the
    /// low-latency approximate path (the new stream contains the full
    /// dataset, so rehearsal against forgetting is built in).
    FineTune {
        /// Fine-tuning epochs (0 falls back to [`RetrainMode::Full`]).
        epochs: usize,
    },
}

/// What one completed reload did, returned by [`LiveWorld::reload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// The world version now serving.
    pub version: u64,
    /// Synthesis `(rule, batch)` work items in the new build.
    pub total_batches: usize,
    /// Work items served from the memo instead of re-instantiated.
    pub reused_batches: usize,
    /// Pool entries whose content the delta changed.
    pub changed_pool_entries: usize,
    /// Whether a pool length change forced a full re-synthesis.
    pub full_rebuild: bool,
    /// Parser examples the retraining consumed.
    pub emitted_examples: usize,
    /// Whether the model was fine-tuned instead of retrained from scratch.
    pub fine_tuned: bool,
    /// End-to-end reload latency (delta apply → re-synthesis → retrain →
    /// swap), as surfaced by [`crate::engine::EngineStats::last_swap_us`].
    pub swap_latency_us: u64,
}

/// The memoized synthesis of the serving world: everything the next delta
/// needs to decide which work items it can replay.
struct SynthesisMemo {
    /// The snapshot arena the memoized candidates' utterances live in.
    arena: Arc<Interner>,
    /// Per-entry content digests of the phrase pools at build time.
    digests: PoolDigests,
    /// Every completed `(rule, batch)` work item, keyed by `(rule_id,
    /// batch)`.
    batches: HashMap<(u64, u64), BatchRecord>,
}

/// Mutable half of a [`LiveWorld`], held behind a mutex so concurrent
/// reloads serialize (requests never wait on it — they go straight to the
/// engine's world slot).
struct LiveState {
    library: Arc<Thingpedia>,
    memo: SynthesisMemo,
}

/// Everything one synthesis + training pass produced.
struct BuildOutcome {
    parser: LuinetParser,
    memo: SynthesisMemo,
    stats: StreamStats,
    examples: usize,
    reused_batches: usize,
    changed_pool_entries: usize,
    full_rebuild: bool,
    fine_tuned: bool,
}

/// A hot-swappable serving world: a [`GenieEngine`] plus the synthesis
/// memo and configuration needed to rebuild it incrementally on a skill
/// delta. See the [module docs](self) for the lifecycle.
pub struct LiveWorld {
    engine: GenieEngine,
    pipeline: PipelineConfig,
    model: ModelConfig,
    options: NnOptions,
    policies: Vec<Policy>,
    state: Mutex<LiveState>,
}

impl LiveWorld {
    /// Bootstrap a live world over `library`: synthesize + train with the
    /// given configs, memoize the synthesis, and build the engine (world
    /// version 1). Forces [`genie_templates::GeneratorConfig::pool_streams`]
    /// (genie_templates) on — per-template pool RNG streams are what keep
    /// a delta's pool damage local, and the knob is part of the dataset
    /// identity, so it must be fixed for the world's whole lifetime.
    ///
    /// # Errors
    ///
    /// Propagates config validation, pipeline and engine-build failures.
    pub fn bootstrap(
        library: Thingpedia,
        pipeline: PipelineConfig,
        model: ModelConfig,
    ) -> GenieResult<Self> {
        Self::bootstrap_with(library, pipeline, model, NnOptions::default(), Vec::new())
    }

    /// [`LiveWorld::bootstrap`] with explicit parser-token options and
    /// TACL policies (re-installed verbatim on every swap).
    pub fn bootstrap_with(
        library: Thingpedia,
        mut pipeline: PipelineConfig,
        model: ModelConfig,
        options: NnOptions,
        policies: Vec<Policy>,
    ) -> GenieResult<Self> {
        pipeline.synthesis.pool_streams = true;
        pipeline.validate()?;
        let library = Arc::new(library);
        let outcome = build_world(
            &library,
            &pipeline,
            &model,
            options,
            None,
            TrainPlan::Scratch,
        )?;
        let engine = GenieEngine::builder()
            .thingpedia_shared(library.clone())
            .model(outcome.parser)
            .policies(policies.clone())
            .build()?;
        Ok(LiveWorld {
            engine,
            pipeline,
            model,
            options,
            policies,
            state: Mutex::new(LiveState {
                library,
                memo: outcome.memo,
            }),
        })
    }

    /// The engine this world serves through. Clones share the world slot,
    /// so a handle captured before a reload observes the swap.
    pub fn engine(&self) -> &GenieEngine {
        &self.engine
    }

    /// The world version currently serving.
    pub fn version(&self) -> u64 {
        self.engine.world_version()
    }

    /// The library of the serving world.
    pub fn library(&self) -> Arc<Thingpedia> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .library
            .clone()
    }

    /// Apply a skill delta with byte-identical retraining
    /// ([`RetrainMode::Full`]).
    ///
    /// # Errors
    ///
    /// Propagates pipeline and training failures; the serving world is
    /// untouched unless the whole rebuild succeeds.
    pub fn reload(&self, delta: &SkillDelta) -> GenieResult<SwapReport> {
        self.reload_with(delta, RetrainMode::Full)
    }

    /// Apply a skill delta: copy + patch the library, incrementally
    /// re-synthesize, retrain per `mode`, and atomically swap the new
    /// world in. Concurrent reloads serialize; requests in flight finish
    /// on the world they started with.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and training failures; the serving world is
    /// untouched unless the whole rebuild succeeds.
    pub fn reload_with(&self, delta: &SkillDelta, mode: RetrainMode) -> GenieResult<SwapReport> {
        let start = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // Chaos-harness injection point: a fault here (error or panic) must
        // leave the old world serving and the version untouched — the swap
        // below only happens after the whole rebuild succeeds.
        genie_nlp::failpoint::fail_io("reload.retrain")?;
        let mut library = (*state.library).clone();
        delta.apply(&mut library);
        let library = Arc::new(library);
        let plan = match mode {
            RetrainMode::Full | RetrainMode::FineTune { epochs: 0 } => TrainPlan::Scratch,
            RetrainMode::FineTune { epochs } => TrainPlan::FineTune {
                base: self.engine.model(),
                epochs,
            },
        };
        let outcome = build_world(
            &library,
            &self.pipeline,
            &self.model,
            self.options,
            Some(&state.memo),
            plan,
        )?;
        let swap_latency_us = start.elapsed().as_micros() as u64;
        let version = self.engine.swap_world(
            library.clone(),
            Arc::new(outcome.parser),
            self.policies.clone(),
            swap_latency_us,
        );
        state.library = library;
        state.memo = outcome.memo;
        Ok(SwapReport {
            version,
            total_batches: outcome.stats.synthesis.batches,
            reused_batches: outcome.reused_batches,
            changed_pool_entries: outcome.changed_pool_entries,
            full_rebuild: outcome.full_rebuild,
            emitted_examples: outcome.examples,
            fine_tuned: outcome.fine_tuned,
            swap_latency_us,
        })
    }
}

/// How [`build_world`] turns the example stream into a parser.
enum TrainPlan {
    /// `LuinetParser::new` + full training — byte-identical to a cold
    /// bootstrap at the same library.
    Scratch,
    /// Clone `base` (via a snapshot round-trip; the parser is deliberately
    /// not `Clone`) and fine-tune for `epochs`.
    FineTune {
        base: Arc<LuinetParser>,
        epochs: usize,
    },
}

/// One full synthesis + training pass over `library`, incrementally reusing
/// `previous` where the pool diff proves a work item unaffected.
fn build_world(
    library: &Thingpedia,
    pipeline: &PipelineConfig,
    model: &ModelConfig,
    options: NnOptions,
    previous: Option<&SynthesisMemo>,
    plan: TrainPlan,
) -> GenieResult<BuildOutcome> {
    let datasets = ParamDatasets::builtin();
    let arena = genie_templates::intern::fresh(library, &datasets);
    // The digest pass builds the new pools once up front (a pure function
    // of `(library, seed)`); the pipeline's own generator rebuilds them
    // identically, so the diff below describes exactly the pools the run
    // will draw from.
    let digests = {
        let generator =
            SentenceGenerator::with_interner(library, pipeline.synthesis, arena.clone());
        generator.pools().content_digests(generator.interner())
    };
    let delta: Option<PoolsDelta> = previous.map(|memo| memo.digests.diff(&digests));
    let full_rebuild = match &delta {
        Some(delta) => delta.lengths_changed(),
        None => false,
    };
    let changed_pool_entries = delta.as_ref().map_or(0, |d| d.changed_entries);
    let reusable = match (&delta, previous) {
        (Some(delta), Some(memo)) if !delta.lengths_changed() => Some((delta, memo)),
        _ => None,
    };
    let provider = reusable.map(|(delta, memo)| {
        move |rule_id: u64, batch: u64, local: &mut genie_templates::LocalInterner<'_>| {
            let record = memo.batches.get(&(rule_id, batch))?;
            if delta.affects(&record.draws) {
                return None;
            }
            let candidates = record
                .candidates
                .iter()
                .map(|example| {
                    let mut replay = example.clone();
                    let text = memo.arena.render(&example.utterance);
                    let mut stream = TokenStream::with_capacity(example.utterance.len());
                    local.intern_words(&text, &mut stream);
                    replay.utterance = stream;
                    replay
                })
                .collect();
            Some(ProvidedBatch {
                candidates,
                fingerprints: record.fingerprints.clone(),
                draws: record.draws.clone(),
            })
        }
    });
    let data_pipeline = DataPipeline::with_interner(library, *pipeline, arena.clone());
    let mut batches: HashMap<(u64, u64), BatchRecord> = HashMap::new();
    let mut observer = |record: BatchRecord| {
        batches.insert((record.rule_id, record.batch), record);
    };
    let mut examples: Vec<ParserExample> = Vec::new();
    let stats =
        data_pipeline.run_streaming_observed(
            options,
            provider.as_ref().map(|f| {
                f
                    as &(dyn Fn(
                        u64,
                        u64,
                        &mut genie_templates::LocalInterner<'_>,
                    ) -> Option<ProvidedBatch>
                          + Sync)
            }),
            Some(&mut observer),
            |example| examples.push(example),
        )?;
    let reused_batches = batches.values().filter(|record| record.provided).count();
    let (parser, fine_tuned) = match plan {
        TrainPlan::Scratch => {
            let mut parser = LuinetParser::new(model.clone());
            parser.train(&examples);
            (parser, false)
        }
        TrainPlan::FineTune { base, epochs } => {
            let bytes = luinet::snapshot::to_bytes(&base);
            let mut parser = luinet::snapshot::from_bytes(&bytes)?;
            parser.fine_tune(&examples, epochs);
            (parser, true)
        }
    };
    Ok(BuildOutcome {
        parser,
        memo: SynthesisMemo {
            arena,
            digests,
            batches,
        },
        stats,
        examples: examples.len(),
        reused_batches,
        changed_pool_entries,
        full_rebuild,
        fine_tuned,
    })
}
