//! The `GenieEngine` serving facade.
//!
//! PRs 1–2 built the *offline* half of the paper — the dataset factory —
//! but the product of §5 is a deployed semantic parser answering live
//! utterances. This module is that serving layer: one long-lived,
//! thread-safe object assembled once from a Thingpedia and a trained
//! parser, shared across request threads, and answering typed requests
//! with typed errors instead of panics.
//!
//! # Request lifecycle
//!
//! ```text
//! ParseRequest { utterance, flags }
//!        │  validate: non-empty, ≤ max_utterance_tokens
//!        ▼
//!   tokenize (genie-nlp)
//!        │            cache hit? ──────────────────────────┐
//!        ▼                                                 │
//!   LuinetParser::predict_topk  (k scored candidates)      │
//!        │  per candidate:                                 │
//!        ▼                                                 │
//!   nn_syntax::from_tokens_checked  (decode + typecheck)   │
//!        │                                                 │
//!        ▼                                                 │
//!   TACL policy check (when policies are installed)        │
//!        │  survivors                                      ▼
//!        ▼                                         ParseResponse
//!   ParseResponse { candidates } ── insert ──▶ fingerprint-keyed cache
//!        │
//!        └─ every candidate rejected → Err(Error::NoParse { rejected })
//! ```
//!
//! Responses are a pure function of (model, library, policies, request),
//! candidate ranking breaks ties deterministically, and
//! [`GenieEngine::parse_batch`] fans out over an order-preserving parallel
//! map — so batch output is **byte-identical for any thread count**, and
//! the cache can only change latency, never content.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use genie_templates::dedup::fingerprint;
use genie_templates::ConfigError;
use luinet::{LuinetParser, ModelConfig};
use thingpedia::Thingpedia;
use thingtalk::nn_syntax::from_tokens_checked;
use thingtalk::policy::{check_program, Policy};
use thingtalk::Program;

use crate::error::{Error, GenieResult};
use crate::pipeline::{DataPipeline, NnOptions, PipelineConfig};

/// Default number of candidates decoded per request.
pub const DEFAULT_CANDIDATES: usize = 3;
/// Hard ceiling on candidates per request. The beam's cost grows with its
/// width, so an unclamped per-request `candidates` would let one untrusted
/// request buy unbounded decode work; values above the ceiling are clamped.
pub const MAX_REQUEST_CANDIDATES: usize = 16;
/// Default bound on utterance length, in tokens.
pub const DEFAULT_MAX_UTTERANCE_TOKENS: usize = 64;
/// Default response-cache capacity, in entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;
/// The principal used for policy checks when a request names none.
pub const DEFAULT_PRINCIPAL: &str = "user";

/// Per-request options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseFlags {
    /// Candidates to decode and check; `0` uses the engine default.
    pub candidates: usize,
    /// Principal for the TACL policy check; `None` uses
    /// [`DEFAULT_PRINCIPAL`].
    pub principal: Option<String>,
    /// Skip the response cache for this request (it is still populated).
    pub bypass_cache: bool,
}

/// One utterance to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequest {
    /// The natural-language command.
    pub utterance: String,
    /// Per-request options.
    pub flags: ParseFlags,
}

impl ParseRequest {
    /// A request with default flags.
    pub fn new(utterance: impl Into<String>) -> Self {
        ParseRequest {
            utterance: utterance.into(),
            flags: ParseFlags::default(),
        }
    }

    /// Ask for a specific number of candidates.
    pub fn with_candidates(mut self, candidates: usize) -> Self {
        self.flags.candidates = candidates;
        self
    }

    /// Check policies against this principal instead of the default.
    pub fn with_principal(mut self, principal: impl Into<String>) -> Self {
        self.flags.principal = Some(principal.into());
        self
    }

    /// Skip the response cache.
    pub fn bypass_cache(mut self) -> Self {
        self.flags.bypass_cache = true;
        self
    }
}

/// One decoded, typechecked, policy-approved candidate program.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseCandidate {
    /// The decoded program.
    pub program: Program,
    /// The program rendered in surface syntax.
    pub source: String,
    /// The NN tokens the model emitted.
    pub tokens: Vec<String>,
    /// The decoder score (comparable within one response only).
    pub score: f64,
}

/// The answer to a [`ParseRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseResponse {
    /// The request utterance, as received.
    pub utterance: String,
    /// The tokenized sentence the model saw.
    pub sentence: Vec<String>,
    /// Valid candidates, most probable first. Never empty — an empty set
    /// is an [`Error::NoParse`] instead.
    pub candidates: Vec<ParseCandidate>,
}

impl ParseResponse {
    /// The most probable candidate.
    pub fn best(&self) -> &ParseCandidate {
        // Construction guarantees at least one candidate.
        &self.candidates[0]
    }
}

/// Aggregate serving counters (monotonic except `world_version` and
/// `last_swap_us`, which track the latest hot swap; updated atomically).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered (including errors).
    pub requests: u64,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Model candidates discarded by decode, typecheck or policy.
    pub rejected_candidates: u64,
    /// Version of the world snapshot currently serving (1 = as built).
    pub world_version: u64,
    /// Completed hot swaps since the engine was built.
    pub swaps: u64,
    /// Wall-clock microseconds the most recent swap took end to end, as
    /// reported by the caller that drove it (0 until the first swap).
    pub last_swap_us: u64,
}

/// The engine's counter cells, shared between the engine and any
/// [`EngineStatsHandle`]s observing it.
#[derive(Default)]
struct EngineCounters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    rejected_candidates: AtomicU64,
    world_version: AtomicU64,
    swaps: AtomicU64,
    last_swap_us: AtomicU64,
}

impl EngineCounters {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            rejected_candidates: self.rejected_candidates.load(Ordering::Relaxed),
            world_version: self.world_version.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            last_swap_us: self.last_swap_us.load(Ordering::Relaxed),
        }
    }
}

/// A cheap, cloneable handle onto the engine's counters — three shared
/// atomics, no lock, no reference to the model or the library. A metrics
/// exporter (e.g. `genie-server`'s `GET /metrics`) holds one of these and
/// snapshots it per scrape instead of shadow-counting cache hits it cannot
/// see from outside.
///
/// The handle keeps only the counter cells alive, so it can outlive the
/// engine itself (the counters then simply stop moving).
#[derive(Clone)]
pub struct EngineStatsHandle {
    counters: Arc<EngineCounters>,
}

impl EngineStatsHandle {
    /// A consistent-enough snapshot of the counters (each cell is read
    /// atomically; the triple is not a transaction).
    pub fn snapshot(&self) -> EngineStats {
        self.counters.snapshot()
    }
}

impl fmt::Debug for EngineStatsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("EngineStatsHandle")
            .field(&self.snapshot())
            .finish()
    }
}

/// One cached response, carrying the full key so a 64-bit fingerprint
/// collision is detected on lookup instead of silently serving another
/// utterance's parse.
struct CacheEntry {
    sentence: genie_nlp::TokenStream,
    k: usize,
    principal: String,
    response: ParseResponse,
}

/// The hot-swappable half of the engine: everything a live skill update
/// replaces in one step. Immutable once published — in-flight requests
/// capture one `Arc<World>` at entry and finish on it even if a swap lands
/// mid-request; the response cache rides inside the world, so a swap
/// empties it wholesale instead of serving answers from a retired library.
struct World {
    /// Monotonic snapshot version; 1 is the world the engine was built
    /// with, each completed swap increments it.
    version: u64,
    library: Arc<Thingpedia>,
    model: Arc<LuinetParser>,
    policies: Vec<Policy>,
    cache: Mutex<HashMap<u64, Arc<CacheEntry>>>,
}

struct EngineInner {
    /// The serving world, swapped atomically by [`GenieEngine::swap_world`].
    /// Readers hold the lock only long enough to clone the `Arc`.
    world: RwLock<Arc<World>>,
    candidates: usize,
    max_utterance_tokens: usize,
    cache_capacity: usize,
    threads: usize,
    counters: Arc<EngineCounters>,
}

/// The long-lived, thread-safe serving facade. Cloning is cheap (the
/// engine is an [`Arc`] handle); clones share the model, the library, the
/// cache and the counters.
#[derive(Clone)]
pub struct GenieEngine {
    inner: Arc<EngineInner>,
}

/// Builder for [`GenieEngine`]; `build()` validates the assembly.
pub struct EngineBuilder {
    library: Arc<Thingpedia>,
    model: Option<Arc<LuinetParser>>,
    policies: Vec<Policy>,
    candidates: usize,
    max_utterance_tokens: usize,
    cache_capacity: usize,
    threads: usize,
    initial_version: u64,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            library: Arc::new(Thingpedia::builtin()),
            model: None,
            policies: Vec::new(),
            candidates: DEFAULT_CANDIDATES,
            max_utterance_tokens: DEFAULT_MAX_UTTERANCE_TOKENS,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            threads: 0,
            initial_version: 1,
        }
    }
}

impl EngineBuilder {
    /// Start from the builtin Thingpedia and defaults.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Serve against this skill library instead of the builtin one.
    pub fn thingpedia(mut self, library: Thingpedia) -> Self {
        self.library = Arc::new(library);
        self
    }

    /// Share an already-`Arc`ed library (e.g. with a co-located pipeline).
    pub fn thingpedia_shared(mut self, library: Arc<Thingpedia>) -> Self {
        self.library = library;
        self
    }

    /// Use this trained parser.
    pub fn model(mut self, model: LuinetParser) -> Self {
        self.model = Some(Arc::new(model));
        self
    }

    /// Share an already-`Arc`ed parser.
    pub fn model_shared(mut self, model: Arc<LuinetParser>) -> Self {
        self.model = Some(model);
        self
    }

    /// Load the model from a snapshot file written by
    /// [`luinet::LuinetParser::save_snapshot`] — the multi-process serving
    /// path: replicas share one trained artifact instead of each re-training
    /// or eagerly rebuilding the symbol-keyed tables.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file cannot be read and
    /// [`Error::CorruptArtifact`] when its bytes fail validation.
    pub fn model_from_snapshot(mut self, path: impl AsRef<std::path::Path>) -> GenieResult<Self> {
        let model = luinet::snapshot::load(path.as_ref())?;
        self.model = Some(Arc::new(model));
        Ok(self)
    }

    /// Synthesize a training set with `pipeline`, train a parser with
    /// `model` on the full Genie strategy, and install it as the engine
    /// model — the one-stop bootstrap used by tests, examples and the
    /// serving bench.
    ///
    /// Training is deterministically parallel: `model.threads` only
    /// changes wall-clock, while `model.train_shards` is part of the
    /// model identity (see [`luinet::ModelConfig`]) — so an engine
    /// bootstrapped from a fixed (pipeline, model) pair serves identical
    /// responses no matter how many cores trained it.
    pub fn train(mut self, pipeline: PipelineConfig, model: ModelConfig) -> GenieResult<Self> {
        pipeline.validate()?;
        let data_pipeline = DataPipeline::new(&self.library, pipeline);
        let data = data_pipeline.build()?;
        let examples = data_pipeline.to_parser_examples(&data.combined(), NnOptions::default());
        let mut parser = LuinetParser::new(model);
        parser.train(&examples);
        self.model = Some(Arc::new(parser));
        Ok(self)
    }

    /// Enforce these TACL policies on every candidate. With no policies
    /// installed, every well-typed candidate is allowed.
    pub fn policies(mut self, policies: Vec<Policy>) -> Self {
        self.policies = policies;
        self
    }

    /// Default number of candidates per request.
    pub fn candidates(mut self, candidates: usize) -> Self {
        self.candidates = candidates;
        self
    }

    /// Reject utterances longer than this many tokens.
    pub fn max_utterance_tokens(mut self, tokens: usize) -> Self {
        self.max_utterance_tokens = tokens;
        self
    }

    /// Response-cache capacity in entries (`0` disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Worker threads for [`GenieEngine::parse_batch`] (`0` = all cores;
    /// never changes output).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Start serving at this world version instead of 1 — the crash-recovery
    /// path: an engine rebuilt from a version-`V` bundle must report `V`, so
    /// journal replay and follower catch-up line up with the pre-crash
    /// history. Values below 1 are clamped to 1.
    pub fn world_version(mut self, version: u64) -> Self {
        self.initial_version = version.max(1);
        self
    }

    /// Validate and assemble the engine.
    ///
    /// # Errors
    ///
    /// [`Error::ModelUntrained`] when no model was installed or the model
    /// has seen no training data; [`Error::Config`] for out-of-range
    /// limits.
    pub fn build(self) -> GenieResult<GenieEngine> {
        if self.candidates == 0 {
            return Err(ConfigError::new("candidates", "must be at least 1").into());
        }
        if self.candidates > MAX_REQUEST_CANDIDATES {
            return Err(ConfigError::new(
                "candidates",
                format!(
                    "must be at most {MAX_REQUEST_CANDIDATES}, got {}",
                    self.candidates
                ),
            )
            .into());
        }
        if self.max_utterance_tokens == 0 {
            return Err(ConfigError::new("max_utterance_tokens", "must be at least 1").into());
        }
        let model = self.model.ok_or(Error::ModelUntrained)?;
        if model.trained_examples() == 0 {
            return Err(Error::ModelUntrained);
        }
        let counters = Arc::new(EngineCounters::default());
        counters
            .world_version
            .store(self.initial_version, Ordering::Relaxed);
        Ok(GenieEngine {
            inner: Arc::new(EngineInner {
                world: RwLock::new(Arc::new(World {
                    version: self.initial_version,
                    library: self.library,
                    model,
                    policies: self.policies,
                    cache: Mutex::new(HashMap::new()),
                })),
                candidates: self.candidates,
                max_utterance_tokens: self.max_utterance_tokens,
                cache_capacity: self.cache_capacity,
                threads: self.threads,
                counters,
            }),
        })
    }
}

impl GenieEngine {
    /// Start building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The serving world at this instant (a cheap `Arc` clone; the read
    /// lock is held only for the clone). Requests capture one world at
    /// entry and never observe a mid-request swap.
    fn world(&self) -> Arc<World> {
        self.inner
            .world
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The skill library the engine currently serves (a swap may replace
    /// it; the returned `Arc` pins this version).
    pub fn library(&self) -> Arc<Thingpedia> {
        self.world().library.clone()
    }

    /// The trained model currently serving, shared (a cheap [`Arc`]
    /// clone) — e.g. to assemble another engine over the same parser with
    /// different policies or worker counts.
    pub fn model(&self) -> Arc<LuinetParser> {
        self.world().model.clone()
    }

    /// The version of the world snapshot currently serving (1 = as built;
    /// each completed [`GenieEngine::swap_world`] increments it).
    pub fn world_version(&self) -> u64 {
        self.world().version
    }

    /// Atomically replace the serving world: library, model and policies
    /// swap together as one version, and the response cache starts empty
    /// (it is scoped to the world it was filled under). In-flight requests
    /// finish on the snapshot they captured at entry; requests arriving
    /// after the swap see only the new world. Returns the new version.
    ///
    /// `swap_latency_us` is the end-to-end latency of the reload that
    /// produced this world (re-synthesis + retraining + this call), as
    /// measured by the driver; it is surfaced through
    /// [`EngineStats::last_swap_us`].
    pub fn swap_world(
        &self,
        library: Arc<Thingpedia>,
        model: Arc<LuinetParser>,
        policies: Vec<Policy>,
        swap_latency_us: u64,
    ) -> u64 {
        self.swap_world_inner(None, library, model, policies, swap_latency_us)
    }

    /// [`GenieEngine::swap_world`] at an explicit version — the replication
    /// path: a follower installing a primary's bundle must land on the
    /// bundle's version, not `local + 1`. Returns the version installed.
    pub fn swap_world_at(
        &self,
        version: u64,
        library: Arc<Thingpedia>,
        model: Arc<LuinetParser>,
        policies: Vec<Policy>,
        swap_latency_us: u64,
    ) -> u64 {
        self.swap_world_inner(Some(version), library, model, policies, swap_latency_us)
    }

    fn swap_world_inner(
        &self,
        version: Option<u64>,
        library: Arc<Thingpedia>,
        model: Arc<LuinetParser>,
        policies: Vec<Policy>,
        swap_latency_us: u64,
    ) -> u64 {
        let mut slot = self.inner.world.write().unwrap_or_else(|e| e.into_inner());
        // The version is read and replaced under the same write lock, so
        // concurrent implicit swaps never mint the same successor.
        let version = version.unwrap_or(slot.version + 1);
        *slot = Arc::new(World {
            version,
            library,
            model,
            policies,
            cache: Mutex::new(HashMap::new()),
        });
        drop(slot);
        let counters = &self.inner.counters;
        counters.world_version.store(version, Ordering::Relaxed);
        counters.swaps.fetch_add(1, Ordering::Relaxed);
        counters
            .last_swap_us
            .store(swap_latency_us, Ordering::Relaxed);
        version
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> EngineStats {
        self.inner.counters.snapshot()
    }

    /// A cloneable handle onto the engine's counters, for observers (a
    /// metrics endpoint, a load shedder) that must read cache effectiveness
    /// without holding — or keeping alive — the engine itself.
    pub fn stats_handle(&self) -> EngineStatsHandle {
        EngineStatsHandle {
            counters: self.inner.counters.clone(),
        }
    }

    /// Parse one utterance into typechecked, policy-approved candidate
    /// programs.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyUtterance`] / [`Error::UtteranceTooLong`] for
    ///   malformed requests;
    /// * [`Error::NoParse`] when every model candidate is rejected by
    ///   decode, typecheck or policy — the rejections ride along for
    ///   error analysis.
    pub fn parse(&self, request: &ParseRequest) -> GenieResult<ParseResponse> {
        self.inner.counters.requests.fetch_add(1, Ordering::Relaxed);
        // Capture the serving world once: the whole request — cache lookup,
        // decode, policy check, cache fill — runs against this snapshot,
        // even if a hot swap lands while the request is in flight.
        let world = self.world();
        let utterance = request.utterance.trim();
        if utterance.is_empty() {
            return Err(Error::EmptyUtterance);
        }
        // Tokenize straight into the shared arena: known words are table
        // lookups; novel request words first land in the per-request local
        // overlay and commit only after the request passes the length
        // bounds — an oversized utterance never touches the arena, and a
        // vocabulary-exhaustion attack degrades to a typed error
        // (`try_commit` refuses near capacity) instead of a panic.
        let interner = genie_templates::intern::shared();
        let mut local = genie_nlp::LocalInterner::new(interner);
        let mut sentence = genie_nlp::TokenStream::new();
        genie_nlp::tokenize::tokenize_into(utterance, &mut local, &mut sentence);
        if sentence.is_empty() {
            return Err(Error::EmptyUtterance);
        }
        if sentence.len() > self.inner.max_utterance_tokens {
            return Err(Error::UtteranceTooLong {
                tokens: sentence.len(),
                limit: self.inner.max_utterance_tokens,
            });
        }
        if local.has_pending() {
            match interner.try_commit(&local.take_pending()) {
                Some(remap) => remap.apply(&mut sentence),
                None => return Err(Error::Config(genie_templates::ConfigError::new(
                    "intern_arena",
                    "shared vocabulary arena is full; the request's novel words cannot be admitted",
                ))),
            }
        }
        // Clamp the per-request width: decode work grows with the beam, so
        // an untrusted request must not be able to buy unbounded work.
        let k = if request.flags.candidates == 0 {
            self.inner.candidates
        } else {
            request.flags.candidates.min(MAX_REQUEST_CANDIDATES)
        };
        let principal = request
            .flags
            .principal
            .as_deref()
            .unwrap_or(DEFAULT_PRINCIPAL);

        // The response is a deterministic function of the key, so a hit can
        // only change latency, never content. The world version is folded
        // into the key — the cache is already scoped to one world, but the
        // fold makes the key itself honest about *which* skill library the
        // answer was computed against. The entry stores the full
        // (sentence, k, principal) tuple and a hit re-verifies it, so a
        // 64-bit fingerprint collision degrades to a miss, never to serving
        // another utterance's parse.
        let key = fingerprint(&(world.version, &sentence, k, principal));
        if !request.flags.bypass_cache && self.inner.cache_capacity > 0 {
            let cache = world.cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cached) = cache.get(&key) {
                if cached.sentence == sentence && cached.k == k && cached.principal == principal {
                    self.inner
                        .counters
                        .cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                    let mut response = cached.response.clone();
                    response.utterance = request.utterance.clone();
                    return Ok(response);
                }
            }
        }

        let predictions = world.model.predict_topk(&sentence, k);
        let mut candidates = Vec::new();
        let mut rejected = Vec::new();
        for prediction in predictions {
            match self.check_candidate(&world, &prediction.tokens, principal) {
                Ok(program) => {
                    candidates.push(ParseCandidate {
                        source: program.to_string(),
                        program,
                        tokens: prediction.tokens,
                        score: prediction.score,
                    });
                }
                Err(error) => {
                    self.inner
                        .counters
                        .rejected_candidates
                        .fetch_add(1, Ordering::Relaxed);
                    rejected.push((prediction.tokens.join(" "), error));
                }
            }
        }
        if candidates.is_empty() {
            return Err(Error::NoParse {
                utterance: request.utterance.clone(),
                rejected,
            });
        }
        let response = ParseResponse {
            utterance: request.utterance.clone(),
            // The response surface stays text: resolve the interned tokens
            // once, at the serving boundary.
            sentence: sentence
                .iter()
                .map(|s| interner.resolve(s).to_owned())
                .collect(),
            candidates,
        };
        if self.inner.cache_capacity > 0 {
            let mut cache = world.cache.lock().unwrap_or_else(|e| e.into_inner());
            // Bounded and deterministic in content: a full cache stops
            // admitting. (Values are pure functions of their key, so *which*
            // requests are cached never affects *what* is returned.)
            if cache.len() < self.inner.cache_capacity {
                cache.entry(key).or_insert_with(|| {
                    let mut cached = response.clone();
                    // The cache is keyed on the tokenization, which many
                    // surface utterances share; store the tokens' canonical
                    // rendering, and rewrite per request on the way out.
                    cached.utterance = cached.sentence.join(" ");
                    Arc::new(CacheEntry {
                        sentence: sentence.clone(),
                        k,
                        principal: principal.to_owned(),
                        response: cached,
                    })
                });
            }
        }
        Ok(response)
    }

    /// Decode, typecheck and policy-check one model candidate against a
    /// captured world snapshot.
    fn check_candidate(
        &self,
        world: &World,
        tokens: &[String],
        principal: &str,
    ) -> thingtalk::Result<Program> {
        let program = from_tokens_checked(world.library.as_ref(), tokens)?;
        if !world.policies.is_empty() && !check_program(&world.policies, principal, &program) {
            return Err(thingtalk::Error::policy_violation(format!(
                "no installed policy allows principal `{principal}` to run this program"
            )));
        }
        Ok(program)
    }

    /// Parse a batch of requests, fanned out over the engine's configured
    /// worker threads. Output order matches input order and every response
    /// is byte-identical regardless of the thread count — per-request
    /// results are pure functions, and the shared cache affects latency
    /// only.
    pub fn parse_batch(&self, requests: &[ParseRequest]) -> Vec<GenieResult<ParseResponse>> {
        genie_parallel::par_map(self.inner.threads, requests, |_, request| {
            self.parse(request)
        })
    }

    /// Drop every cached response of the current world (a hot swap does
    /// this implicitly — the new world starts with an empty cache).
    pub fn clear_cache(&self) {
        self.world()
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Number of cached responses in the current world.
    pub fn cached_responses(&self) -> usize {
        self.world()
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paraphrase::ParaphraseConfig;
    use genie_templates::GeneratorConfig;
    use std::sync::OnceLock;

    fn tiny_pipeline() -> PipelineConfig {
        PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(12)
                    .instantiations_per_template(1)
                    .seed(5)
                    .quiet(true)
                    .build()
                    .unwrap(),
            )
            .paraphrase(
                ParaphraseConfig::builder()
                    .per_sentence(1)
                    .error_rate(0.0)
                    .seed(5)
                    .build()
                    .unwrap(),
            )
            .paraphrase_sample(30)
            .parameter_expansion(false)
            .seed(5)
            .build()
            .unwrap()
    }

    /// One engine (expensive: synthesis + training) shared by every test,
    /// plus a training utterance the engine demonstrably parses.
    fn tiny_engine() -> &'static (GenieEngine, String) {
        static ENGINE: OnceLock<(GenieEngine, String)> = OnceLock::new();
        ENGINE.get_or_init(|| {
            let engine = GenieEngine::builder()
                .train(
                    tiny_pipeline(),
                    ModelConfig {
                        epochs: 8,
                        seed: 5,
                        ..ModelConfig::default()
                    },
                )
                .unwrap()
                .threads(1)
                .build()
                .unwrap();
            // Find a training utterance the tiny model round-trips; the
            // facade must answer at least one of the first twenty.
            let library = Thingpedia::builtin();
            let data = DataPipeline::new(&library, tiny_pipeline())
                .build()
                .unwrap();
            let utterance = data
                .synthesized
                .examples
                .iter()
                .take(20)
                .map(|e| e.text())
                .find(|u| {
                    engine
                        .parse(&ParseRequest::new(u.clone()).bypass_cache())
                        .is_ok()
                })
                .expect("the engine answers none of its own training utterances");
            engine.clear_cache();
            (engine, utterance)
        })
    }

    #[test]
    fn engine_answers_a_training_utterance() {
        let (engine, utterance) = tiny_engine();
        let response = engine.parse(&ParseRequest::new(utterance.clone())).unwrap();
        assert!(!response.candidates.is_empty());
        let best = response.best();
        assert!(best.source.contains("=>"), "not a program: {}", best.source);
        // Every returned candidate typechecks against the library.
        for candidate in &response.candidates {
            assert!(
                thingtalk::typecheck::typecheck(engine.library().as_ref(), &candidate.program)
                    .is_ok()
            );
        }
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        let (engine, _) = tiny_engine();
        assert!(matches!(
            engine.parse(&ParseRequest::new("")),
            Err(Error::EmptyUtterance)
        ));
        assert!(matches!(
            engine.parse(&ParseRequest::new("   \t  ")),
            Err(Error::EmptyUtterance)
        ));
        let long = "tweet ".repeat(200);
        assert!(matches!(
            engine.parse(&ParseRequest::new(long)),
            Err(Error::UtteranceTooLong { .. })
        ));
    }

    #[test]
    fn oversized_candidate_requests_are_clamped_not_unbounded() {
        let (engine, utterance) = tiny_engine();
        // An adversarial width must not buy unbounded beam work: the
        // request completes promptly and matches the clamped width.
        let flooded = engine.parse(
            &ParseRequest::new(utterance.clone())
                .with_candidates(usize::MAX)
                .bypass_cache(),
        );
        let clamped = engine.parse(
            &ParseRequest::new(utterance.clone())
                .with_candidates(MAX_REQUEST_CANDIDATES)
                .bypass_cache(),
        );
        match (flooded, clamped) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("clamped and flooded requests diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn untrained_model_is_rejected_at_build_time() {
        let untrained = LuinetParser::new(ModelConfig::default());
        assert!(matches!(
            GenieEngine::builder().model(untrained).build(),
            Err(Error::ModelUntrained)
        ));
        assert!(matches!(
            GenieEngine::builder().build(),
            Err(Error::ModelUntrained)
        ));
    }

    #[test]
    fn zero_limits_are_config_errors() {
        let (engine, _) = tiny_engine();
        let model = engine.model();
        let zero_candidates = GenieEngine::builder()
            .model_shared(model.clone())
            .candidates(0)
            .build();
        assert!(matches!(zero_candidates, Err(Error::Config(_))));
        let too_many = GenieEngine::builder()
            .model_shared(model.clone())
            .candidates(MAX_REQUEST_CANDIDATES + 1)
            .build();
        assert!(matches!(too_many, Err(Error::Config(_))));
        let zero_length = GenieEngine::builder()
            .model_shared(model)
            .max_utterance_tokens(0)
            .build();
        assert!(matches!(zero_length, Err(Error::Config(_))));
    }

    #[test]
    fn cache_serves_repeats_without_changing_responses() {
        let (base, utterance) = tiny_engine();
        // A private engine so the counters are this test's alone.
        let engine = GenieEngine::builder()
            .model_shared(base.model())
            .threads(1)
            .build()
            .unwrap();
        let request = ParseRequest::new(utterance.clone());
        let first = engine.parse(&request).unwrap();
        let second = engine.parse(&request).unwrap();
        assert_eq!(first, second);
        assert!(engine.stats().cache_hits >= 1);
        assert_eq!(engine.cached_responses(), 1);
        // Bypass gives the same content.
        let bypassed = engine.parse(&request.bypass_cache()).unwrap();
        assert_eq!(first, bypassed);
        engine.clear_cache();
        assert_eq!(engine.cached_responses(), 0);
    }

    #[test]
    fn stats_handle_tracks_the_engine_and_outlives_it() {
        let (base, utterance) = tiny_engine();
        let engine = GenieEngine::builder()
            .model_shared(base.model())
            .threads(1)
            .build()
            .unwrap();
        let handle = engine.stats_handle();
        assert_eq!(
            handle.snapshot(),
            EngineStats {
                world_version: 1,
                ..EngineStats::default()
            }
        );
        let request = ParseRequest::new(utterance.clone());
        engine.parse(&request).unwrap();
        engine.parse(&request).unwrap();
        let seen = handle.snapshot();
        assert_eq!(seen.requests, 2);
        assert_eq!(seen.cache_hits, 1);
        assert_eq!(seen, engine.stats());
        // The handle is just the counter cells: it stays readable after the
        // engine is gone, and the counters simply stop moving.
        drop(engine);
        assert_eq!(handle.snapshot(), seen);
    }

    #[test]
    fn policies_reject_disallowed_programs() {
        use thingtalk::ast::{FunctionRef, Predicate};
        use thingtalk::policy::{action_policy, query_policy};

        let (base, utterance) = tiny_engine();
        let parsed = base.parse(&ParseRequest::new(utterance.clone())).unwrap();
        // Build a policy that allows only a class the parsed program does
        // not use, so every candidate for this utterance violates it.
        let devices = parsed.best().program.devices();
        assert!(!devices.contains(&"com.example.unused"));
        let only_unused = vec![
            query_policy(
                Predicate::True,
                FunctionRef::new("com.example.unused", "get"),
                Predicate::True,
            ),
            action_policy(
                Predicate::True,
                FunctionRef::new("com.example.unused", "act"),
                Predicate::True,
            ),
        ];
        let engine = GenieEngine::builder()
            .model_shared(base.model())
            .policies(only_unused)
            .threads(1)
            .build()
            .unwrap();
        match engine.parse(&ParseRequest::new(utterance.clone())) {
            Err(Error::NoParse { rejected, .. }) => {
                assert!(!rejected.is_empty());
                assert!(rejected
                    .iter()
                    .any(|(_, e)| matches!(e, thingtalk::Error::PolicyViolation { .. })));
            }
            other => panic!("expected NoParse with policy rejections, got {other:?}"),
        }
    }

    #[test]
    fn batch_output_is_byte_identical_across_thread_counts() {
        let (base, utterance) = tiny_engine();
        let mut utterances = vec![
            utterance.clone(),
            "tweet hello world".to_owned(),
            utterance.clone(), // repeat: exercises the cache
            String::new(),     // error path inside a batch
            "frobnicate the unfrobnicatable".to_owned(),
        ];
        utterances.push(utterance.clone());
        let requests: Vec<ParseRequest> = utterances
            .iter()
            .map(|u| ParseRequest::new(u.clone()))
            .collect();
        let render = |results: Vec<GenieResult<ParseResponse>>| -> Vec<String> {
            results
                .into_iter()
                .map(|r| match r {
                    Ok(response) => format!(
                        "ok {} | {}",
                        response.sentence.join(" "),
                        response
                            .candidates
                            .iter()
                            .map(|c| c.tokens.join(" "))
                            .collect::<Vec<_>>()
                            .join(" ; ")
                    ),
                    Err(error) => format!("err {error}"),
                })
                .collect()
        };
        let mut baseline = None;
        for threads in [1usize, 2, 8] {
            let engine = GenieEngine::builder()
                .model_shared(base.model())
                .threads(threads)
                .build()
                .unwrap();
            let rendered = render(engine.parse_batch(&requests));
            match &baseline {
                None => baseline = Some(rendered),
                Some(expected) => {
                    assert_eq!(&rendered, expected, "batch differs at {threads} threads")
                }
            }
        }
    }
}
