//! End-to-end properties of the live subsystem (`genie::live`):
//!
//! * incremental re-synthesis after a skill delta produces a world
//!   **byte-identical** (weights-digest-identical) to a cold bootstrap at
//!   the post-delta library, across thread and shard counts;
//! * pool length changes (class add/remove) fall back to a full rebuild
//!   and still match the cold world;
//! * a reload actually changes the served answers for an utterance whose
//!   skill changed — the response cache never leaks a retired world's
//!   parse across the swap.

use genie::live::{LiveWorld, RetrainMode, SkillDelta};
use genie::pipeline::DataPipeline;
use genie::{ParaphraseConfig, ParseRequest, PipelineConfig};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;
use thingpedia::{PrimitiveTemplate, Thingpedia};
use thingtalk::typecheck::SchemaRegistry;

fn pipeline(threads: usize, shards: usize) -> PipelineConfig {
    PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(10)
                .max_depth(4)
                .instantiations_per_template(1)
                .seed(7)
                .threads(threads)
                .shards(shards)
                .quiet(true)
                .build()
                .unwrap(),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .unwrap(),
        )
        .paraphrase_sample(20)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .unwrap()
}

fn model() -> ModelConfig {
    ModelConfig {
        epochs: 4,
        seed: 7,
        threads: 1,
        ..ModelConfig::default()
    }
}

/// A content-only delta: re-word every template of a mid-list class,
/// keeping the template count (and so every pool length) unchanged.
fn reworded_delta(library: &Thingpedia) -> SkillDelta {
    let templates = library.templates();
    let name = templates[templates.len() / 2].class.clone();
    let class = library.class(&name).unwrap().clone();
    let replacement: Vec<PrimitiveTemplate> = templates
        .iter()
        .filter(|t| t.class == name)
        .cloned()
        .map(|mut t| {
            t.utterance = format!("{} pronto", t.utterance);
            t
        })
        .collect();
    SkillDelta::Upsert {
        class,
        templates: replacement,
    }
}

/// The library after `delta`, for building the cold reference world.
fn patched(library: &Thingpedia, delta: &SkillDelta) -> Thingpedia {
    let mut patched = library.clone();
    match delta {
        SkillDelta::Upsert { class, templates } => {
            patched.upsert_class(class.clone(), templates.clone());
        }
        SkillDelta::Remove { name } => {
            patched.remove_class(name);
        }
    }
    patched
}

#[test]
fn incremental_reload_matches_cold_bootstrap_across_threads_and_shards() {
    let base = Thingpedia::builtin();
    let delta = reworded_delta(&base);
    // The reference: a cold world bootstrapped directly at the post-delta
    // library. Thread and shard counts are not part of the dataset
    // identity, so one reference serves every combination.
    let cold = LiveWorld::bootstrap(patched(&base, &delta), pipeline(1, 1), model()).unwrap();
    let cold_digest = cold.engine().model().weights_digest();

    for (threads, shards) in [(1, 1), (2, 4), (8, 16), (1, 16), (8, 1)] {
        let world = LiveWorld::bootstrap(base.clone(), pipeline(threads, shards), model()).unwrap();
        let report = world.reload(&delta).unwrap();
        assert_eq!(report.version, 2, "threads={threads} shards={shards}");
        assert!(
            !report.full_rebuild,
            "a re-wording must not change pool lengths (threads={threads} shards={shards})"
        );
        assert!(
            report.reused_batches > 0,
            "a one-template delta must leave reusable batches (threads={threads} shards={shards})"
        );
        assert!(
            report.changed_pool_entries > 0,
            "the re-wording must change pool entry digests (threads={threads} shards={shards})"
        );
        assert_eq!(
            world.engine().model().weights_digest(),
            cold_digest,
            "incremental world diverged from cold bootstrap at threads={threads} shards={shards} \
             (reused {} of {} batches)",
            report.reused_batches,
            report.total_batches,
        );
    }
}

#[test]
fn class_removal_forces_full_rebuild_and_still_matches_cold() {
    let base = Thingpedia::builtin();
    let templates = base.templates();
    let victim = templates[templates.len() / 3].class.clone();
    let delta = SkillDelta::Remove {
        name: victim.clone(),
    };
    let cold = LiveWorld::bootstrap(patched(&base, &delta), pipeline(1, 4), model()).unwrap();

    let world = LiveWorld::bootstrap(base, pipeline(2, 4), model()).unwrap();
    let report = world.reload(&delta).unwrap();
    assert!(
        report.full_rebuild,
        "removing a class changes pool lengths, which must force a full rebuild"
    );
    assert_eq!(report.reused_batches, 0);
    assert_eq!(
        world.engine().model().weights_digest(),
        cold.engine().model().weights_digest(),
        "full-rebuild reload diverged from cold bootstrap"
    );
    assert!(world.library().class(&victim).is_none());
}

/// Satellite regression: after a reload that removes a skill, the engine's
/// answer for an utterance of that skill must change — the response cache
/// (keyed by world version, scoped to the world) never serves the retired
/// library's parse.
#[test]
fn reload_changes_answers_for_a_changed_skill() {
    let base = Thingpedia::builtin();
    let world = LiveWorld::bootstrap(base.clone(), pipeline(0, 4), model()).unwrap();
    let engine = world.engine();

    // A training utterance the engine demonstrably parses, plus the class
    // its best program mentions.
    let data = DataPipeline::new(&base, pipeline(0, 4)).build().unwrap();
    let (utterance, class) = data
        .synthesized
        .examples
        .iter()
        .take(40)
        .filter_map(|example| {
            let response = engine.parse(&ParseRequest::new(example.text())).ok()?;
            let source = &response.best().source;
            let at = source.find('@')?;
            let class: String = source[at + 1..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
                .collect();
            let class = class
                .rsplit_once('.')
                .map_or(class.clone(), |(c, _)| c.to_string());
            Some((example.text(), class))
        })
        .next()
        .expect("the engine answers none of its own training utterances");
    assert!(
        base.class(&class).is_some(),
        "bad class extraction: {class}"
    );

    // Parse twice so the answer is demonstrably served from the cache.
    let before = engine.parse(&ParseRequest::new(utterance.clone())).unwrap();
    let cached = engine.parse(&ParseRequest::new(utterance.clone())).unwrap();
    assert_eq!(before, cached);
    assert!(engine.stats().cache_hits >= 1);

    let report = world
        .reload(&SkillDelta::Remove {
            name: class.clone(),
        })
        .unwrap();
    assert_eq!(report.version, 2);
    assert_eq!(engine.world_version(), 2);
    assert_eq!(engine.stats().swaps, 1);

    // The same utterance now gets a different answer: every candidate
    // typechecks against the new library, which no longer has the class.
    let marker = format!("@{class}");
    match engine.parse(&ParseRequest::new(utterance)) {
        Ok(after) => {
            assert_ne!(
                before, after,
                "the cache served a retired world's parse across the swap"
            );
            for candidate in &after.candidates {
                assert!(
                    !candidate.source.contains(&marker),
                    "candidate still uses the removed class: {}",
                    candidate.source
                );
            }
        }
        // With the skill gone the decoder may find no well-typed candidate
        // at all — also a changed answer.
        Err(error) => {
            let rendered = error.to_string();
            assert!(!rendered.is_empty());
        }
    }
}

#[test]
fn fine_tune_reload_is_approximate_but_serves() {
    let base = Thingpedia::builtin();
    let delta = reworded_delta(&base);
    let world = LiveWorld::bootstrap(base, pipeline(0, 4), model()).unwrap();
    let scratch_digest = {
        let cold = LiveWorld::bootstrap(patched(&world.library(), &delta), pipeline(1, 4), model())
            .unwrap();
        cold.engine().model().weights_digest()
    };
    let report = world
        .reload_with(&delta, RetrainMode::FineTune { epochs: 2 })
        .unwrap();
    assert!(report.fine_tuned);
    assert_eq!(report.version, 2);
    assert_ne!(
        world.engine().model().weights_digest(),
        scratch_digest,
        "fine-tuning is the approximate path; matching the scratch model would be a fluke"
    );
    // The fine-tuned world still serves: the engine parses at least one of
    // its own training utterances.
    let library = world.library();
    let data = DataPipeline::new(&library, pipeline(0, 4)).build().unwrap();
    let served = data.synthesized.examples.iter().take(20).any(|example| {
        world
            .engine()
            .parse(&ParseRequest::new(example.text()))
            .is_ok()
    });
    assert!(served, "fine-tuned world answers nothing");
}
