//! Deterministic fault injection against the artifact and reload layers:
//! a torn snapshot or columnar write (the crash the atomic
//! write-temp→fsync→rename path exists to prevent, forced here with the
//! `genie_nlp::failpoint` registry) must be *detected* at load as a typed
//! [`Error::CorruptArtifact`], never misparsed; and a reload that dies
//! mid-rebuild must roll back — the old world keeps serving, the version
//! stays put, and the next (healthy) reload succeeds.
//!
//! Own test binary: these tests arm the **process-global** failpoint
//! registry, so they serialize on
//! [`genie_nlp::failpoint::registry_test_lock`] rather than race the
//! harness's parallel test threads.

use std::path::PathBuf;
use std::sync::MutexGuard;

use genie::engine::{GenieEngine, ParseRequest};
use genie::live::{LiveWorld, SkillDelta};
use genie::{
    read_columnar_shard, DatasetFormat, Error, ParaphraseConfig, PipelineConfig,
    ShardedDatasetWriter,
};
use genie_nlp::failpoint::{self, FaultPlan, SiteSpec, INJECTED_ERROR_PREFIX};
use genie_templates::GeneratorConfig;
use luinet::{ModelConfig, ParserExample};
use thingpedia::{PrimitiveTemplate, Thingpedia};

fn registry_lock() -> MutexGuard<'static, ()> {
    failpoint::registry_test_lock()
}

fn pipeline() -> PipelineConfig {
    PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(10)
                .max_depth(4)
                .instantiations_per_template(1)
                .seed(7)
                .threads(1)
                .shards(4)
                .quiet(true)
                .build()
                .unwrap(),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .unwrap(),
        )
        .paraphrase_sample(20)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .unwrap()
}

fn model() -> ModelConfig {
    ModelConfig {
        epochs: 4,
        seed: 7,
        threads: 1,
        ..ModelConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("genie-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// Torn writes are detected, not misparsed
// ---------------------------------------------------------------------------

#[test]
fn a_torn_snapshot_write_is_a_typed_corrupt_artifact_at_load() {
    let _serialized = registry_lock();
    let engine = GenieEngine::builder()
        .train(pipeline(), model())
        .unwrap()
        .build()
        .unwrap();
    let dir = scratch_dir("snapshot");
    let path = dir.join("model.snap");

    // The torn fault makes the save report success after persisting only
    // half of the sealed bytes under the *final* name — the crash the
    // rename protocol cannot absorb, which the checksum footer catches.
    let plan = FaultPlan::new(0x7042).site("snapshot.write", SiteSpec::new().torn(1.0));
    {
        let _armed = failpoint::armed(&plan);
        luinet::snapshot::save(&engine.model(), &path).unwrap();
    }
    let error = GenieEngine::builder()
        .model_from_snapshot(&path)
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(error, Error::CorruptArtifact { .. }),
        "a torn snapshot must load as CorruptArtifact, got {error:?}"
    );

    // Disarmed, the same save round-trips.
    luinet::snapshot::save(&engine.model(), &path).unwrap();
    GenieEngine::builder()
        .model_from_snapshot(&path)
        .unwrap()
        .build()
        .unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_torn_columnar_write_is_a_typed_corrupt_artifact_at_read() {
    let _serialized = registry_lock();
    let dir = scratch_dir("colfmt");
    let interner = genie_templates::intern::shared();
    let mut writer =
        ShardedDatasetWriter::create_with_format(&dir, "train", 2, DatasetFormat::Columnar)
            .unwrap();
    for i in 0..6 {
        writer
            .write(&ParserExample::new(
                interner.stream_of(&format!("sentence{i} words")),
                vec!["now".to_owned(), "=>".to_owned(), format!("prog{i}")],
            ))
            .unwrap();
    }

    let plan = FaultPlan::new(0xC01F).site("colfmt.write", SiteSpec::new().torn(1.0));
    let paths = {
        let _armed = failpoint::armed(&plan);
        // Every shard (and the string table) lands torn — and finish()
        // still reports success, exactly like a crash after rename.
        writer.finish().unwrap()
    };
    let error = read_columnar_shard(&paths[0]).unwrap_err();
    assert!(
        matches!(error, Error::CorruptArtifact { .. }),
        "a torn shard must read as CorruptArtifact, got {error:?}"
    );
    let error = ShardedDatasetWriter::merge_for_each(&paths, |_| {}).unwrap_err();
    assert!(
        matches!(error, Error::CorruptArtifact { .. }),
        "a torn shard set must merge as CorruptArtifact, got {error:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// A reload that dies mid-rebuild rolls back
// ---------------------------------------------------------------------------

#[test]
fn a_failed_reload_leaves_the_old_world_serving_and_the_version_unchanged() {
    let world = LiveWorld::bootstrap(Thingpedia::builtin(), pipeline(), model()).unwrap();
    let _serialized = registry_lock();

    // An utterance from the serving world's own training distribution:
    // the rollback contract is that it keeps parsing identically.
    let data = genie::DataPipeline::new(&world.library(), pipeline())
        .build()
        .unwrap();
    let utterance = data
        .synthesized
        .examples
        .iter()
        .map(|e| e.text())
        .find(|u| {
            world
                .engine()
                .parse(&ParseRequest::new(u.clone()).bypass_cache())
                .is_ok()
        })
        .expect("the world answers none of its own training utterances");
    let before = world
        .engine()
        .parse(&ParseRequest::new(utterance.clone()).bypass_cache())
        .unwrap();

    let class = thingtalk::syntax::parse_class(
        "class @com.test.lights { action set_power(in req power : Enum(on, off)); }",
    )
    .unwrap();
    let template = PrimitiveTemplate::new(
        &class.name,
        "set_power",
        thingpedia::PhraseCategory::VerbPhrase,
        "flip the test lights $power".to_owned(),
    );
    let delta = SkillDelta::Upsert {
        class,
        templates: vec![template],
    };

    let plan =
        FaultPlan::new(0x5EED).site("reload.retrain", SiteSpec::new().error(1.0).max_fires(1));
    {
        let _armed = failpoint::armed(&plan);
        let error = world.reload(&delta).unwrap_err();
        assert!(
            error.to_string().contains(INJECTED_ERROR_PREFIX),
            "expected the injected fault, got {error:?}"
        );
    }
    // Rollback: nothing swapped, nothing drifted.
    assert_eq!(
        world.version(),
        1,
        "a failed reload must not advance the version"
    );
    let after = world
        .engine()
        .parse(&ParseRequest::new(utterance).bypass_cache())
        .unwrap();
    assert_eq!(
        before.best().source,
        after.best().source,
        "the old world must keep serving identically after a failed reload"
    );

    // The same delta, disarmed: the world was left healthy enough to swap.
    let report = world.reload(&delta).unwrap();
    assert_eq!(report.version, 2);
    assert_eq!(world.version(), 2);
}
