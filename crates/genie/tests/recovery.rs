//! Crash-recovery of durable worlds: the delta journal (WAL) + world
//! bundle must bring a restarted process back to the exact last journaled
//! version with a byte-identical `weights_digest`, under torn writes at
//! every journal/bundle site.
//!
//! Own test binary: these tests arm the **process-global** failpoint
//! registry, so they serialize on
//! [`genie_nlp::failpoint::registry_test_lock`] rather than race the
//! harness's parallel test threads.

use std::path::PathBuf;

use genie::live::LiveWorld;
use genie::{ParaphraseConfig, PipelineConfig, RetrainMode, SkillDelta};
use genie_nlp::failpoint::{self, registry_test_lock, FaultPlan, SiteSpec, INJECTED_ERROR_PREFIX};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;
use thingpedia::{PhraseCategory, PrimitiveTemplate, Thingpedia};

fn pipeline() -> PipelineConfig {
    PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(10)
                .max_depth(4)
                .instantiations_per_template(1)
                .seed(7)
                .threads(1)
                .shards(4)
                .quiet(true)
                .build()
                .unwrap(),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .unwrap(),
        )
        .paraphrase_sample(20)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .unwrap()
}

fn model() -> ModelConfig {
    ModelConfig {
        epochs: 4,
        seed: 7,
        threads: 1,
        ..ModelConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("genie-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn lights_delta(utterance: &str) -> SkillDelta {
    let class = thingtalk::syntax::parse_class(
        "class @com.test.lights { action set_power(in req power : Enum(on, off)); }",
    )
    .unwrap();
    let template = PrimitiveTemplate::new(
        &class.name,
        "set_power",
        PhraseCategory::VerbPhrase,
        utterance.to_owned(),
    );
    SkillDelta::Upsert {
        class,
        templates: vec![template],
    }
}

#[test]
fn a_fresh_durable_world_bootstraps_with_an_empty_journal() {
    let _serialized = registry_test_lock();
    let dir = scratch_dir("fresh");
    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert!(!report.recovered_from_bundle);
    assert_eq!(report.version, 1);
    assert_eq!(report.replayed, 0);
    assert!(!report.torn_tail, "an empty journal is not a torn journal");
    assert_eq!(world.journal_last_version(), 0, "nothing journaled yet");
    assert!(world.is_durable());
    let digest = world.weights_digest();

    // A second open warm-starts from the v1 bundle the first one wrote.
    drop(world);
    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert!(report.recovered_from_bundle, "the v1 bundle must load");
    assert_eq!(report.bundle_version, 1);
    assert_eq!(report.version, 1);
    assert_eq!(
        world.weights_digest(),
        digest,
        "bundle recovery must reproduce the model byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_replays_the_journal_over_the_bundle_and_is_idempotent() {
    let _serialized = registry_test_lock();
    let dir = scratch_dir("replay");
    let (world, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    let report = world
        .reload(&lights_delta("flip the test lights $power"))
        .unwrap();
    assert_eq!(report.version, 2);
    assert!(report.persisted, "the healthy reload must write its bundle");
    assert_eq!(world.journal_last_version(), 2);
    let digest = world.weights_digest();
    drop(world);

    // Restart: the bundle is already at v2, so the journaled record is
    // skipped (replay over a bundle whose version is current).
    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert!(report.recovered_from_bundle);
    assert_eq!(report.bundle_version, 2);
    assert_eq!(report.replayed, 0);
    assert_eq!(report.skipped, 1, "the v2 record predates the bundle");
    assert_eq!(report.version, 2);
    assert_eq!(world.weights_digest(), digest);
    drop(world);

    // Idempotence: recovering again changes nothing.
    let (world, second) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert_eq!(second, report, "re-recovery must be a fixed point");
    assert_eq!(world.weights_digest(), digest);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_torn_bundle_write_falls_back_to_cold_bootstrap_plus_full_replay() {
    let _serialized = registry_test_lock();
    let dir = scratch_dir("torn-bundle");
    let (world, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();

    // The reload's bundle write lands torn under the final name and
    // "succeeds" — the crash the checksum footer exists to catch.
    let plan = FaultPlan::new(0xB0B0).site("bundle.write", SiteSpec::new().torn(1.0));
    let report = {
        let _armed = failpoint::armed(&plan);
        world
            .reload(&lights_delta("flip the test lights $power"))
            .unwrap()
    };
    assert_eq!(report.version, 2);
    let digest = world.weights_digest();
    drop(world);

    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert!(
        !report.recovered_from_bundle,
        "a torn bundle must be detected and discarded"
    );
    assert_eq!(report.replayed, 1, "the journaled delta replays cold");
    assert_eq!(
        report.version, 2,
        "recovery lands on the last journaled version"
    );
    assert_eq!(
        world.weights_digest(),
        digest,
        "cold bootstrap + replay must reproduce the pre-crash model"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_torn_journal_tail_is_ignored_and_the_intact_prefix_replays() {
    let _serialized = registry_test_lock();
    let dir = scratch_dir("torn-tail");
    let (world, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    world
        .reload(&lights_delta("flip the test lights $power"))
        .unwrap();
    let digest_v2 = world.weights_digest();

    // The next reload's journal append AND bundle write both land torn:
    // the v3 frame is half-written and the bundle is garbage, exactly a
    // crash in the middle of accepting the delta.
    let plan = FaultPlan::new(0x7EA2)
        .site("journal.append", SiteSpec::new().torn(1.0))
        .site("bundle.write", SiteSpec::new().torn(1.0));
    {
        let _armed = failpoint::armed(&plan);
        world
            .reload(&lights_delta("turn the test lights $power please"))
            .unwrap();
    }
    drop(world);

    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert!(
        report.torn_tail,
        "the half-written v3 frame is a typed tail"
    );
    assert!(!report.recovered_from_bundle);
    assert_eq!(
        report.version, 2,
        "recovery lands on the last *durably* journaled version"
    );
    assert_eq!(report.replayed, 1);
    assert_eq!(world.weights_digest(), digest_v2);

    // The journal healed: the next accepted delta reuses version 3.
    let report = world
        .reload(&lights_delta("turn the test lights $power please"))
        .unwrap();
    assert_eq!(report.version, 3);
    assert_eq!(world.journal_last_version(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_journal_append_failure_rejects_the_delta_and_keeps_serving() {
    let _serialized = registry_test_lock();
    let dir = scratch_dir("wal-fail");
    let (world, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();

    let plan =
        FaultPlan::new(0x3A11).site("journal.append", SiteSpec::new().error(1.0).max_fires(1));
    {
        let _armed = failpoint::armed(&plan);
        let error = world
            .reload(&lights_delta("flip the test lights $power"))
            .unwrap_err();
        assert!(
            error.to_string().contains(INJECTED_ERROR_PREFIX),
            "expected the injected append fault, got {error:?}"
        );
    }
    assert_eq!(world.version(), 1, "nothing swapped");
    assert_eq!(world.journal_last_version(), 0, "nothing journaled");

    // Disarmed, the same delta goes through with WAL intact.
    let report = world
        .reload(&lights_delta("flip the test lights $power"))
        .unwrap();
    assert_eq!(report.version, 2);
    assert_eq!(world.journal_last_version(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn an_aborted_reload_is_journaled_as_dead_and_never_replays() {
    let _serialized = registry_test_lock();
    let dir = scratch_dir("abort");
    let (world, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();

    // The delta journals, then the rebuild dies: an abort frame marks the
    // journaled v2 dead.
    let plan =
        FaultPlan::new(0xDEAD).site("reload.retrain", SiteSpec::new().error(1.0).max_fires(1));
    {
        let _armed = failpoint::armed(&plan);
        world
            .reload(&lights_delta("flip the test lights $power"))
            .unwrap_err();
    }
    assert_eq!(world.version(), 1);
    assert_eq!(
        world.journal_last_version(),
        0,
        "the aborted record must not count as journaled history"
    );
    drop(world);

    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert_eq!(report.version, 1, "the aborted delta must not replay");
    assert_eq!(report.replayed, 0);

    // The next accepted delta reuses the aborted version.
    let report = world
        .reload(&lights_delta("flip the test lights $power"))
        .unwrap();
    assert_eq!(report.version, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fine_tuned_reloads_recover_through_the_journal() {
    let _serialized = registry_test_lock();
    let dir = scratch_dir("finetune");
    let (world, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    let report = world
        .reload_with(
            &lights_delta("flip the test lights $power"),
            RetrainMode::FineTune { epochs: 2 },
        )
        .unwrap();
    assert!(report.fine_tuned);
    assert_eq!(report.version, 2);
    let digest = world.weights_digest();
    drop(world);

    // Bundle recovery restores the fine-tuned model directly.
    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert!(report.recovered_from_bundle);
    assert_eq!(world.weights_digest(), digest);
    drop(world);

    // And with the bundle gone, replay re-derives it: fine-tuning from the
    // byte-identical v1 base over the byte-identical stream.
    std::fs::remove_file(dir.join("world.bundle")).unwrap();
    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert!(!report.recovered_from_bundle);
    assert_eq!(report.version, 2);
    assert_eq!(
        world.weights_digest(),
        digest,
        "fine-tune replay must reproduce the pre-crash model"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_stale_bundle_with_a_newer_journal_replays_to_the_live_digest() {
    let _serialized = registry_test_lock();
    let dir = scratch_dir("stale-bundle");
    let (world, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    // Fail only the bundle persist: the journal commits v2 but the bundle
    // on disk stays at v1 — recovery must warm-start from the stale
    // bundle and replay the newer record on top of its memo.
    let plan = FaultPlan::new(1).site("bundle.write", SiteSpec::new().error(1.0).max_fires(1));
    let report = {
        let _armed = failpoint::armed(&plan);
        world
            .reload(&lights_delta("flip the test lights $power"))
            .unwrap()
    };
    assert!(!report.persisted, "the bundle write was injected to fail");
    assert_eq!(report.version, 2);
    let digest = world.weights_digest();
    drop(world);

    let (world, report) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    assert!(
        report.recovered_from_bundle,
        "the stale v1 bundle must load"
    );
    assert_eq!(report.bundle_version, 1);
    assert_eq!(report.replayed, 1);
    assert_eq!(report.version, 2);
    assert_eq!(
        world.weights_digest(),
        digest,
        "replay over a stale bundle must reproduce the pre-crash model byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
