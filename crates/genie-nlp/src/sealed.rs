//! sealed — the crash-safe artifact file discipline shared by every
//! on-disk format in the workspace.
//!
//! PR 9 introduced two ideas that PR 10 makes load-bearing everywhere:
//!
//! * a **checksum footer**: every artifact file ends with
//!   [`FOOTER_MAGIC`] + the payload length + an FNV-1a checksum, so a torn
//!   or bit-flipped write is *detected* at read time as a typed
//!   [`ColfmtError::Corrupt`] instead of being misparsed downstream;
//! * an **atomic write protocol**: write to a sibling temp file, fsync,
//!   rename over the final name, fsync the directory — a crash at any point
//!   leaves either the old file or the new one, never a half-written
//!   artifact under the final name.
//!
//! Both used to live inside `colfmt`; they are format-independent, so they
//! now live here and `colfmt`, `luinet::snapshot`, the delta journal and
//! the world bundles all route through the same implementation (`colfmt`
//! re-exports the old names for backward compatibility).
//!
//! On top of the sealed-file layer this module adds **record framing** for
//! append-oriented artifacts (the delta journal): each record is
//! `[u32 length][u64 FNV-1a checksum][payload]`, so a reader can recover
//! every intact record from a file whose tail was torn mid-append and
//! report the torn tail as a typed error instead of failing the whole load.

use std::io;
use std::path::Path;

use crate::colfmt::{put_u32, put_u64, ColfmtError, ColfmtResult};
use crate::failpoint::fnv64;

/// Magic bytes opening the trailing checksum footer every artifact file
/// carries after its payload.
pub const FOOTER_MAGIC: [u8; 8] = *b"GENCKSF1";
/// Footer layout: magic + `u64` payload length + `u64` FNV-1a checksum.
pub const FOOTER_LEN: usize = 24;

/// Append the checksum footer for `payload` to an encode buffer.
///
/// The footer sits *after* the payload so [`crate::colfmt::file_magic`]
/// sniffing and the in-memory codecs (which insist on consuming every
/// byte) keep working on the payload alone; the file layer strips and
/// verifies it on read.
pub fn append_footer(out: &mut Vec<u8>, payload_len: usize) {
    let checksum = fnv64(&out[out.len() - payload_len..]);
    out.extend_from_slice(&FOOTER_MAGIC);
    put_u64(out, payload_len as u64);
    put_u64(out, checksum);
}

/// The full sealed file image for `payload`: payload + checksum footer.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FOOTER_LEN);
    out.extend_from_slice(payload);
    append_footer(&mut out, payload.len());
    out
}

/// Validate a sealed file image and return the payload slice. Any torn,
/// truncated, or bit-flipped write fails here with a typed
/// [`ColfmtError::Corrupt`] instead of misparsing downstream.
pub fn unseal(buf: &[u8]) -> ColfmtResult<&[u8]> {
    if buf.len() < FOOTER_LEN {
        return Err(corrupt(format!(
            "artifact of {} bytes is shorter than its checksum footer — torn write?",
            buf.len()
        )));
    }
    let footer = &buf[buf.len() - FOOTER_LEN..];
    if footer[..8] != FOOTER_MAGIC {
        return Err(corrupt(
            "artifact checksum footer missing — torn write or pre-checksum file",
        ));
    }
    let payload_len = u64::from_le_bytes([
        footer[8], footer[9], footer[10], footer[11], footer[12], footer[13], footer[14],
        footer[15],
    ]) as usize;
    let stored = u64::from_le_bytes([
        footer[16], footer[17], footer[18], footer[19], footer[20], footer[21], footer[22],
        footer[23],
    ]);
    let body = &buf[..buf.len() - FOOTER_LEN];
    if payload_len != body.len() {
        return Err(corrupt(format!(
            "artifact footer claims {payload_len} payload bytes but {} are present — torn write?",
            body.len()
        )));
    }
    let actual = fnv64(body);
    if actual != stored {
        return Err(corrupt(format!(
            "artifact checksum mismatch (stored {stored:016x}, computed {actual:016x})"
        )));
    }
    Ok(body)
}

/// Crash-safe sealed artifact write: seal `payload`, write to a sibling
/// temp file, fsync, then atomically rename over `path` (and best-effort
/// fsync the directory). A crash at any point leaves either the old file or
/// the new one — never a half-written artifact under the final name.
///
/// `site` names the [`crate::failpoint`] hooked here; an armed
/// [`FaultKind::Torn`](crate::failpoint::FaultKind) persists a truncated
/// prefix under the final name and *reports success*, simulating exactly
/// the torn write the footer exists to catch.
pub fn write_artifact(path: &Path, payload: &[u8], site: &str) -> ColfmtResult<()> {
    let sealed = seal(payload);
    if let Some(fault) = crate::failpoint::check(site) {
        use crate::failpoint::FaultKind;
        match fault.kind {
            FaultKind::Error => {
                return Err(ColfmtError::Io(io::Error::other(format!(
                    "{} at `{site}` (hit {})",
                    crate::failpoint::INJECTED_ERROR_PREFIX,
                    fault.hit
                ))));
            }
            FaultKind::Panic => panic!("failpoint `{site}` injected panic (hit {})", fault.hit),
            FaultKind::Delay => std::thread::sleep(fault.delay),
            FaultKind::Torn => {
                // Crash mid-write: half the sealed image lands under the
                // final name and the writer "succeeds".
                std::fs::write(path, &sealed[..sealed.len() / 2])?;
                return Ok(());
            }
        }
    }
    atomic_write(path, &sealed)?;
    Ok(())
}

/// Read a sealed artifact written by [`write_artifact`], verify its footer,
/// and return the payload bytes. `site` names the read-side failpoint.
pub fn read_artifact(path: &Path, site: &str) -> ColfmtResult<Vec<u8>> {
    crate::failpoint::fail_io(site)?;
    let mut bytes = std::fs::read(path)?;
    let payload_len = unseal(&bytes)?.len();
    bytes.truncate(payload_len);
    Ok(bytes)
}

/// write-temp → fsync → rename. The temp name carries the pid plus a
/// process-wide counter so concurrent writers in one test process never
/// collide.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("artifact path {path:?} has no file name")))?;
    let temp = path.with_file_name(format!(
        "{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = std::fs::File::create(&temp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&temp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&temp);
        return result;
    }
    // Durability of the rename itself: sync the containing directory where
    // the platform allows opening it (best-effort elsewhere).
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// The first 8 bytes of a file (`None` when the file is shorter) — enough
/// to distinguish file layouts without reading any of them.
pub fn file_magic(path: &Path) -> io::Result<Option<[u8; 8]>> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut magic = [0u8; 8];
    let mut filled = 0;
    while filled < 8 {
        let n = file.read(&mut magic[filled..])?;
        if n == 0 {
            return Ok(None);
        }
        filled += n;
    }
    Ok(Some(magic))
}

// ---------------------------------------------------------------------------
// Record framing for append-oriented artifacts (the delta journal)
// ---------------------------------------------------------------------------

/// Bytes of framing ahead of each record payload: `u32` length + `u64`
/// FNV-1a checksum of the payload.
pub const RECORD_HEADER_LEN: usize = 12;

/// Frame one record — `[u32 length][u64 checksum][payload]` — onto an
/// encode buffer.
pub fn append_record(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u64(out, fnv64(payload));
    out.extend_from_slice(payload);
}

/// Why record parsing stopped before the end of the buffer. Everything
/// *before* the torn tail is intact and usable; the tail itself must be
/// ignored (it is the residue of a crash mid-append).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first unparseable record.
    pub offset: usize,
    /// What failed: a short header, a short payload, or a checksum
    /// mismatch.
    pub detail: String,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torn record tail at byte {}: {}",
            self.offset, self.detail
        )
    }
}

/// Parse every intact framed record out of `buf`.
///
/// Returns the record payload slices in order plus `Some(TornTail)` when
/// the buffer ends in a record that is truncated or fails its checksum —
/// the crash-mid-append case. The torn tail is a *typed* condition, not an
/// error: callers replay everything before it and ignore the rest.
pub fn read_records(buf: &[u8]) -> (Vec<&[u8]>, Option<TornTail>) {
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        let remaining = buf.len() - pos;
        if remaining < RECORD_HEADER_LEN {
            return (
                records,
                Some(TornTail {
                    offset: pos,
                    detail: format!("{remaining} trailing bytes are shorter than a record header"),
                }),
            );
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let body_start = pos + RECORD_HEADER_LEN;
        if buf.len() - body_start < len {
            return (
                records,
                Some(TornTail {
                    offset: pos,
                    detail: format!(
                        "record claims {len} bytes but only {} remain",
                        buf.len() - body_start
                    ),
                }),
            );
        }
        let payload = &buf[body_start..body_start + len];
        let actual = fnv64(payload);
        if actual != stored {
            return (
                records,
                Some(TornTail {
                    offset: pos,
                    detail: format!(
                        "record checksum mismatch (stored {stored:016x}, computed {actual:016x})"
                    ),
                }),
            );
        }
        records.push(payload);
        pos = body_start + len;
    }
    (records, None)
}

fn corrupt(detail: impl Into<String>) -> ColfmtError {
    ColfmtError::Corrupt(detail.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_artifacts_roundtrip_and_detect_torn_writes() {
        let dir = std::env::temp_dir().join(format!("sealed-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sealed.bin");
        let payload = b"hello artifact".to_vec();
        write_artifact(&path, &payload, "colfmt.write").unwrap();
        assert_eq!(read_artifact(&path, "colfmt.read").unwrap(), payload);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), payload.len() + FOOTER_LEN);

        // Every proper prefix of the sealed image is a typed Corrupt error:
        // a torn write can never be mistaken for a valid artifact.
        for len in 0..on_disk.len() {
            std::fs::write(&path, &on_disk[..len]).unwrap();
            match read_artifact(&path, "colfmt.read") {
                Err(ColfmtError::Corrupt(_)) => {}
                other => panic!("torn prefix of {len} bytes: expected Corrupt, got {other:?}"),
            }
        }

        // A flipped payload bit fails the checksum.
        let mut flipped = on_disk;
        flipped[3] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let error = read_artifact(&path, "colfmt.read").unwrap_err();
        assert!(error.to_string().contains("checksum mismatch"), "{error}");

        // A pre-checksum (footerless) file is reported as such.
        std::fs::write(&path, &payload).unwrap();
        let error = read_artifact(&path, "colfmt.read").unwrap_err();
        assert!(error.to_string().contains("footer"), "{error}");

        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp.")
            })
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn framed_records_roundtrip() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"first");
        append_record(&mut buf, b"");
        append_record(&mut buf, b"third record");
        let (records, tail) = read_records(&buf);
        assert_eq!(
            records,
            vec![
                b"first".as_slice(),
                b"".as_slice(),
                b"third record".as_slice()
            ]
        );
        assert!(tail.is_none());
        let (records, tail) = read_records(&[]);
        assert!(records.is_empty());
        assert!(tail.is_none());
    }

    #[test]
    fn a_torn_tail_preserves_every_intact_record() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"alpha");
        append_record(&mut buf, b"beta");
        let intact = buf.len();
        append_record(&mut buf, b"gamma-torn-away");
        // Every truncation point inside the last record keeps the first two
        // records and reports a typed torn tail (except exactly at the
        // boundary, which is a clean two-record file).
        for cut in intact + 1..buf.len() {
            let (records, tail) = read_records(&buf[..cut]);
            assert_eq!(
                records,
                vec![b"alpha".as_slice(), b"beta".as_slice()],
                "cut at {cut}"
            );
            let tail = tail.expect("a truncated record must report a torn tail");
            assert_eq!(tail.offset, intact);
        }
        let (records, tail) = read_records(&buf[..intact]);
        assert_eq!(records.len(), 2);
        assert!(tail.is_none());
    }

    #[test]
    fn a_corrupt_record_is_reported_as_the_tail() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"good");
        let boundary = buf.len();
        append_record(&mut buf, b"flipped");
        *buf.last_mut().unwrap() ^= 0x01;
        let (records, tail) = read_records(&buf);
        assert_eq!(records, vec![b"good".as_slice()]);
        let tail = tail.expect("checksum mismatch must be a torn tail");
        assert_eq!(tail.offset, boundary);
        assert!(tail.to_string().contains("checksum mismatch"), "{tail}");
    }
}
