//! colfmt — the little-endian binary codecs behind the on-disk artifacts:
//! columnar dataset shards and the string tables they (and the model
//! snapshots) share.
//!
//! Every artifact is a flat, offset-based layout designed so loading reads
//! length-prefixed slices straight into the in-memory tables — no per-entry
//! text parsing, no per-entry UTF-8 validation, no re-tokenization:
//!
//! * a **string table** ([`StringTable`] / [`LoadedTable`]) stores every
//!   distinct token text once as one contiguous UTF-8 blob plus an
//!   `(count + 1)`-entry offset array. The blob is validated as UTF-8 once
//!   at load; after that, resolving a local id is two array reads and a
//!   borrow — the serialized twin of the intern arena
//!   ([`crate::intern::Interner`]);
//! * a **columnar shard** ([`ColumnShardWriter`] / [`ColumnShard`]) stores
//!   one column per field — example ids, flags, utterance token ids,
//!   program token ids — with per-row extents as prefix-sum offset arrays,
//!   so a row's tokens are a subslice, not a parse.
//!
//! All integers are **little-endian** and fixed-width; every file starts
//! with an 8-byte magic and a `u32` format version, so a reader can reject
//! foreign or future files with a typed error instead of misreading them.
//! Structural failures (bad magic, truncated section, out-of-range id,
//! non-monotonic offsets) surface as [`ColfmtError::Corrupt`]; the
//! `genie` crate maps them onto its `Error::CorruptArtifact` variant.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;

/// Magic bytes opening a standalone string-table file.
pub const TABLE_MAGIC: [u8; 8] = *b"GENCOLT1";
/// Magic bytes opening a columnar dataset shard file.
pub const SHARD_MAGIC: [u8; 8] = *b"GENCOLS1";
/// Current version of both columnar layouts.
pub const FORMAT_VERSION: u32 = 1;

/// A specialized `Result` for artifact encoding and decoding.
pub type ColfmtResult<T> = std::result::Result<T, ColfmtError>;

/// Why an artifact failed to read or write.
#[derive(Debug)]
pub enum ColfmtError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The bytes failed structural validation: wrong magic, unsupported
    /// version, truncated section, out-of-range id, or inconsistent
    /// offsets.
    Corrupt(String),
}

impl fmt::Display for ColfmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColfmtError::Io(error) => write!(f, "i/o error: {error}"),
            ColfmtError::Corrupt(detail) => write!(f, "corrupt artifact: {detail}"),
        }
    }
}

impl std::error::Error for ColfmtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColfmtError::Io(error) => Some(error),
            ColfmtError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for ColfmtError {
    fn from(error: io::Error) -> Self {
        ColfmtError::Io(error)
    }
}

fn corrupt(detail: impl Into<String>) -> ColfmtError {
    ColfmtError::Corrupt(detail.into())
}

/// Append a `u8` to an encode buffer.
pub fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

/// Append a little-endian `u32` to an encode buffer.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Append a little-endian `u64` to an encode buffer.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Append a little-endian `f32` (IEEE 754 bits) to an encode buffer.
pub fn put_f32(out: &mut Vec<u8>, value: f32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Append a little-endian `f64` (IEEE 754 bits) to an encode buffer.
pub fn put_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// A bounds-checked little-endian reader over a loaded artifact buffer.
///
/// Every accessor returns [`ColfmtError::Corrupt`] on a short buffer
/// instead of panicking, so truncated files become typed errors all the way
/// up the stack.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// A safe `Vec::with_capacity` hint for `count` entries of at least
    /// `min_entry_bytes` each: never larger than the remaining bytes could
    /// hold, so a garbage count in a corrupt file cannot force a huge
    /// allocation before the short read is detected.
    pub fn capacity_hint(&self, count: usize, min_entry_bytes: usize) -> usize {
        count.min(self.remaining() / min_entry_bytes.max(1))
    }

    fn take(&mut self, n: usize, what: &str) -> ColfmtResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated {what}: needed {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consume and check an 8-byte magic.
    pub fn expect_magic(&mut self, magic: &[u8; 8], what: &str) -> ColfmtResult<()> {
        let found = self.take(8, "magic")?;
        if found != magic {
            return Err(corrupt(format!(
                "not a {what}: bad magic {found:02x?} (expected {magic:02x?})"
            )));
        }
        Ok(())
    }

    /// Consume and check the format version.
    pub fn expect_version(&mut self, version: u32, what: &str) -> ColfmtResult<()> {
        let found = self.u32()?;
        if found != version {
            return Err(corrupt(format!(
                "unsupported {what} version {found} (this build reads version {version})"
            )));
        }
        Ok(())
    }

    /// Read one `u8`.
    pub fn u8(&mut self) -> ColfmtResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read one little-endian `u32`.
    pub fn u32(&mut self) -> ColfmtResult<u32> {
        let bytes = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Read one little-endian `u64`.
    pub fn u64(&mut self) -> ColfmtResult<u64> {
        let bytes = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Read one little-endian `f32`.
    pub fn f32(&mut self) -> ColfmtResult<f32> {
        let bytes = self.take(4, "f32")?;
        Ok(f32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Read one little-endian `f64`.
    pub fn f64(&mut self) -> ColfmtResult<f64> {
        let bytes = self.take(8, "f64")?;
        Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed-by-caller column of `count` raw bytes.
    pub fn u8_vec(&mut self, count: usize, what: &str) -> ColfmtResult<Vec<u8>> {
        Ok(self.take(count, what)?.to_vec())
    }

    /// Read a column of `count` little-endian `u32`s in one bounds check.
    pub fn u32_vec(&mut self, count: usize, what: &str) -> ColfmtResult<Vec<u32>> {
        let bytes = count
            .checked_mul(4)
            .ok_or_else(|| corrupt(format!("{what}: element count {count} overflows")))?;
        let slice = self.take(bytes, what)?;
        Ok(slice
            .chunks_exact(4)
            .map(|chunk| u32::from_le_bytes(chunk.try_into().expect("4 bytes")))
            .collect())
    }

    /// Read a column of `count` little-endian `u64`s in one bounds check.
    pub fn u64_vec(&mut self, count: usize, what: &str) -> ColfmtResult<Vec<u64>> {
        let bytes = count
            .checked_mul(8)
            .ok_or_else(|| corrupt(format!("{what}: element count {count} overflows")))?;
        let slice = self.take(bytes, what)?;
        Ok(slice
            .chunks_exact(8)
            .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8 bytes")))
            .collect())
    }
}

/// Validate that a prefix-sum offset array starts at 0 and is monotonically
/// non-decreasing, returning its final extent.
fn validate_offsets(offsets: &[u32], what: &str) -> ColfmtResult<usize> {
    match offsets.first() {
        Some(0) => {}
        _ => return Err(corrupt(format!("{what}: offsets must start at 0"))),
    }
    for pair in offsets.windows(2) {
        if pair[1] < pair[0] {
            return Err(corrupt(format!(
                "{what}: offsets decrease ({} after {})",
                pair[1], pair[0]
            )));
        }
    }
    Ok(*offsets.last().expect("non-empty offsets") as usize)
}

/// A deduplicating string-table **builder**: the write-side twin of the
/// intern arena. `id_of` assigns dense local ids in first-reference order,
/// which is what makes a serialized shard set independent of process
/// history — local ids are a function of the example stream alone, never of
/// the live arena's [`crate::intern::Symbol`] values.
#[derive(Debug, Default)]
pub struct StringTable {
    ids: HashMap<String, u32>,
    blob: String,
    offsets: Vec<u32>,
}

impl StringTable {
    /// An empty table.
    pub fn new() -> Self {
        StringTable {
            ids: HashMap::new(),
            blob: String::new(),
            offsets: vec![0],
        }
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the table holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The local id of `text`, inserting it on first reference.
    pub fn id_of(&mut self, text: &str) -> u32 {
        if let Some(&id) = self.ids.get(text) {
            return id;
        }
        let id = self.len() as u32;
        self.blob.push_str(text);
        self.offsets.push(self.blob.len() as u32);
        self.ids.insert(text.to_owned(), id);
        id
    }

    /// The string for a local id, if in range.
    pub fn get(&self, id: u32) -> Option<&str> {
        let id = id as usize;
        if id >= self.len() {
            return None;
        }
        Some(&self.blob[self.offsets[id] as usize..self.offsets[id + 1] as usize])
    }

    /// Append the table **section** (count, offsets, blob — no magic) to an
    /// encode buffer; the embedding artifact provides its own header.
    pub fn append_to(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        for &offset in &self.offsets {
            put_u32(out, offset);
        }
        out.extend_from_slice(self.blob.as_bytes());
    }

    /// The table as a standalone file image (magic + version + section).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.offsets.len() * 4 + self.blob.len());
        out.extend_from_slice(&TABLE_MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        self.append_to(&mut out);
        out
    }

    /// Write the standalone table file — sealed with a checksum footer and
    /// renamed into place atomically (see [`write_artifact`]).
    pub fn write_file(&self, path: &Path) -> ColfmtResult<()> {
        write_artifact(path, &self.to_bytes(), "colfmt.write")
    }
}

/// A **loaded** string table: one owned UTF-8 blob plus offsets, resolved
/// by slicing. The blob is validated once at load; `get` is two array reads
/// and a borrow.
#[derive(Debug)]
pub struct LoadedTable {
    blob: String,
    offsets: Vec<u32>,
}

impl LoadedTable {
    /// Read a table section (count, offsets, blob) from a reader.
    pub fn read_section(reader: &mut Reader<'_>) -> ColfmtResult<Self> {
        let count = reader.u32()? as usize;
        let offsets = reader.u32_vec(
            count
                .checked_add(1)
                .ok_or_else(|| corrupt("string table: entry count overflows"))?,
            "string table offsets",
        )?;
        let blob_len = validate_offsets(&offsets, "string table")?;
        let bytes = reader.u8_vec(blob_len, "string table blob")?;
        let blob = String::from_utf8(bytes)
            .map_err(|error| corrupt(format!("string table blob is not UTF-8: {error}")))?;
        for &offset in &offsets {
            if !blob.is_char_boundary(offset as usize) {
                return Err(corrupt(format!(
                    "string table: offset {offset} splits a UTF-8 character"
                )));
            }
        }
        Ok(LoadedTable { blob, offsets })
    }

    /// Load a standalone table file image (magic + version + section).
    pub fn from_file_bytes(buf: &[u8]) -> ColfmtResult<Self> {
        let mut reader = Reader::new(buf);
        reader.expect_magic(&TABLE_MAGIC, "colfmt string table")?;
        reader.expect_version(FORMAT_VERSION, "colfmt string table")?;
        let table = LoadedTable::read_section(&mut reader)?;
        if !reader.is_done() {
            return Err(corrupt(format!(
                "string table: {} trailing bytes after the blob",
                reader.remaining()
            )));
        }
        Ok(table)
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the table holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The string for a local id; out-of-range ids are a corruption error
    /// (they can only come from a damaged or mismatched shard file).
    pub fn get(&self, id: u32) -> ColfmtResult<&str> {
        let index = id as usize;
        if index >= self.len() {
            return Err(corrupt(format!(
                "symbol id {id} out of range (table holds {} strings)",
                self.len()
            )));
        }
        Ok(&self.blob[self.offsets[index] as usize..self.offsets[index + 1] as usize])
    }

    /// Iterate over all strings in id order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.offsets
            .windows(2)
            .map(|pair| &self.blob[pair[0] as usize..pair[1] as usize])
    }
}

/// The in-memory **builder** of one columnar dataset shard: plain column
/// vectors, appended row by row and written as one flat file at finish.
/// Buffered state is ids only (4 bytes per token), roughly an order of
/// magnitude smaller than the rendered text the TSV path streams out.
#[derive(Debug)]
pub struct ColumnShardWriter {
    ids: Vec<u64>,
    flags: Vec<u8>,
    utterance_offsets: Vec<u32>,
    utterance_ids: Vec<u32>,
    program_offsets: Vec<u32>,
    program_ids: Vec<u32>,
}

impl Default for ColumnShardWriter {
    fn default() -> Self {
        ColumnShardWriter::new()
    }
}

impl ColumnShardWriter {
    /// An empty shard.
    pub fn new() -> Self {
        ColumnShardWriter {
            ids: Vec::new(),
            flags: Vec::new(),
            utterance_offsets: vec![0],
            utterance_ids: Vec::new(),
            program_offsets: vec![0],
            program_ids: Vec::new(),
        }
    }

    /// Rows appended so far.
    pub fn rows(&self) -> usize {
        self.ids.len()
    }

    /// Append one example row: its canonical stream index, a flags byte,
    /// and its utterance/program tokens as local string-table ids.
    pub fn push_row(&mut self, id: u64, flags: u8, utterance: &[u32], program: &[u32]) {
        self.ids.push(id);
        self.flags.push(flags);
        self.utterance_ids.extend_from_slice(utterance);
        self.utterance_offsets.push(self.utterance_ids.len() as u32);
        self.program_ids.extend_from_slice(program);
        self.program_offsets.push(self.program_ids.len() as u32);
    }

    /// The shard as a flat file image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let rows = self.rows();
        let mut out = Vec::with_capacity(
            16 + rows * 9
                + (self.utterance_offsets.len() + self.program_offsets.len()) * 4
                + (self.utterance_ids.len() + self.program_ids.len()) * 4,
        );
        out.extend_from_slice(&SHARD_MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u32(&mut out, rows as u32);
        for &id in &self.ids {
            put_u64(&mut out, id);
        }
        out.extend_from_slice(&self.flags);
        for &offset in &self.utterance_offsets {
            put_u32(&mut out, offset);
        }
        for &id in &self.utterance_ids {
            put_u32(&mut out, id);
        }
        for &offset in &self.program_offsets {
            put_u32(&mut out, offset);
        }
        for &id in &self.program_ids {
            put_u32(&mut out, id);
        }
        out
    }

    /// Write the shard file — sealed with a checksum footer and renamed
    /// into place atomically (see [`write_artifact`]).
    pub fn write_file(&self, path: &Path) -> ColfmtResult<()> {
        write_artifact(path, &self.to_bytes(), "colfmt.write")
    }
}

/// A **loaded** columnar shard: the same columns, reconstructed by bulk
/// little-endian reads. A row's utterance and program are subslices of the
/// id columns — no per-row parsing.
#[derive(Debug)]
pub struct ColumnShard {
    ids: Vec<u64>,
    flags: Vec<u8>,
    utterance_offsets: Vec<u32>,
    utterance_ids: Vec<u32>,
    program_offsets: Vec<u32>,
    program_ids: Vec<u32>,
}

impl ColumnShard {
    /// Load a shard file image.
    pub fn from_file_bytes(buf: &[u8]) -> ColfmtResult<Self> {
        let mut reader = Reader::new(buf);
        reader.expect_magic(&SHARD_MAGIC, "colfmt dataset shard")?;
        reader.expect_version(FORMAT_VERSION, "colfmt dataset shard")?;
        let rows = reader.u32()? as usize;
        let ids = reader.u64_vec(rows, "shard ids")?;
        let flags = reader.u8_vec(rows, "shard flags")?;
        let utterance_offsets = reader.u32_vec(rows + 1, "shard utterance offsets")?;
        let utterance_len = validate_offsets(&utterance_offsets, "shard utterance offsets")?;
        let utterance_ids = reader.u32_vec(utterance_len, "shard utterance ids")?;
        let program_offsets = reader.u32_vec(rows + 1, "shard program offsets")?;
        let program_len = validate_offsets(&program_offsets, "shard program offsets")?;
        let program_ids = reader.u32_vec(program_len, "shard program ids")?;
        if !reader.is_done() {
            return Err(corrupt(format!(
                "dataset shard: {} trailing bytes after the columns",
                reader.remaining()
            )));
        }
        Ok(ColumnShard {
            ids,
            flags,
            utterance_offsets,
            utterance_ids,
            program_offsets,
            program_ids,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.ids.len()
    }

    /// The canonical stream index of a row.
    pub fn id(&self, row: usize) -> u64 {
        self.ids[row]
    }

    /// The flags byte of a row (reserved; currently always 0).
    pub fn flags(&self, row: usize) -> u8 {
        self.flags[row]
    }

    /// The utterance token ids of a row.
    pub fn utterance(&self, row: usize) -> &[u32] {
        &self.utterance_ids
            [self.utterance_offsets[row] as usize..self.utterance_offsets[row + 1] as usize]
    }

    /// The program token ids of a row.
    pub fn program(&self, row: usize) -> &[u32] {
        &self.program_ids
            [self.program_offsets[row] as usize..self.program_offsets[row + 1] as usize]
    }
}

// The checksum-footer + atomic-rename discipline moved to the shared
// [`crate::sealed`] module (the journal and world bundles route through it
// too); the old `colfmt::` names keep working via this re-export.
pub use crate::sealed::{
    append_footer, file_magic, read_artifact, seal, unseal, write_artifact, FOOTER_LEN,
    FOOTER_MAGIC,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_table_roundtrips_and_deduplicates() {
        let mut table = StringTable::new();
        assert!(table.is_empty());
        let a = table.id_of("now");
        let b = table.id_of("=>");
        assert_eq!(table.id_of("now"), a);
        assert_ne!(a, b);
        assert_eq!(table.get(a), Some("now"));
        assert_eq!(table.get(99), None);
        let unicode = table.id_of("café ☕");
        let bytes = table.to_bytes();
        let loaded = LoadedTable::from_file_bytes(&bytes).unwrap();
        assert_eq!(loaded.len(), 3);
        assert!(!loaded.is_empty());
        assert_eq!(loaded.get(a).unwrap(), "now");
        assert_eq!(loaded.get(unicode).unwrap(), "café ☕");
        assert!(loaded.get(3).is_err());
        let entries: Vec<&str> = loaded.iter().collect();
        assert_eq!(entries, vec!["now", "=>", "café ☕"]);
    }

    #[test]
    fn column_shard_roundtrips() {
        let mut shard = ColumnShardWriter::new();
        shard.push_row(0, 0, &[1, 2, 3], &[4, 5]);
        shard.push_row(7, 1, &[], &[6]);
        assert_eq!(shard.rows(), 2);
        let bytes = shard.to_bytes();
        let loaded = ColumnShard::from_file_bytes(&bytes).unwrap();
        assert_eq!(loaded.rows(), 2);
        assert_eq!(loaded.id(0), 0);
        assert_eq!(loaded.id(1), 7);
        assert_eq!(loaded.flags(1), 1);
        assert_eq!(loaded.utterance(0), &[1, 2, 3]);
        assert_eq!(loaded.utterance(1), &[] as &[u32]);
        assert_eq!(loaded.program(0), &[4, 5]);
        assert_eq!(loaded.program(1), &[6]);
    }

    #[test]
    fn truncation_and_bad_magic_are_typed_errors() {
        let mut shard = ColumnShardWriter::new();
        shard.push_row(0, 0, &[1, 2], &[3]);
        let bytes = shard.to_bytes();
        // Every proper prefix must fail with Corrupt, never panic.
        for len in 0..bytes.len() {
            match ColumnShard::from_file_bytes(&bytes[..len]) {
                Err(ColfmtError::Corrupt(_)) => {}
                other => panic!("prefix of {len} bytes: expected Corrupt, got {other:?}"),
            }
        }
        // Trailing garbage is also rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            ColumnShard::from_file_bytes(&padded),
            Err(ColfmtError::Corrupt(_))
        ));
        // A table file is not a shard file.
        let table = StringTable::new().to_bytes();
        let error = ColumnShard::from_file_bytes(&table).unwrap_err();
        assert!(error.to_string().contains("bad magic"), "{error}");
        // Unsupported version.
        let mut wrong_version = bytes;
        wrong_version[8..12].copy_from_slice(&2u32.to_le_bytes());
        let error = ColumnShard::from_file_bytes(&wrong_version).unwrap_err();
        assert!(error.to_string().contains("version"), "{error}");
    }

    #[test]
    fn non_monotonic_offsets_are_rejected() {
        let mut table = StringTable::new();
        table.id_of("ab");
        table.id_of("cd");
        let mut bytes = table.to_bytes();
        // Corrupt the middle offset (entries: count at 12, offsets at 16).
        bytes[20..24].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            LoadedTable::from_file_bytes(&bytes),
            Err(ColfmtError::Corrupt(_))
        ));
    }

    #[test]
    fn utf8_and_char_boundary_validation() {
        let mut table = StringTable::new();
        table.id_of("héllo");
        let mut bytes = table.to_bytes();
        // Slice the blob mid-character: shift the end offset into the é.
        let blob_start = bytes.len() - "héllo".len();
        bytes[blob_start - 4..blob_start].copy_from_slice(&2u32.to_le_bytes());
        // Blob length no longer matches the final offset → truncated or
        // boundary error, either way Corrupt.
        assert!(matches!(
            LoadedTable::from_file_bytes(&bytes),
            Err(ColfmtError::Corrupt(_))
        ));
        // Raw invalid UTF-8 in the blob.
        let mut table = StringTable::new();
        table.id_of("ok");
        let mut bytes = table.to_bytes();
        let blob_start = bytes.len() - 2;
        bytes[blob_start] = 0xff;
        let error = LoadedTable::from_file_bytes(&bytes).unwrap_err();
        assert!(error.to_string().contains("UTF-8"), "{error}");
    }

    #[test]
    fn reader_capacity_hint_is_bounded_by_remaining_bytes() {
        let buf = [0u8; 16];
        let reader = Reader::new(&buf);
        assert_eq!(reader.capacity_hint(1_000_000_000, 4), 4);
        assert_eq!(reader.capacity_hint(2, 4), 2);
        assert_eq!(reader.capacity_hint(5, 0), 5);
    }

    #[test]
    fn sealed_artifacts_roundtrip_and_detect_torn_writes() {
        let dir = std::env::temp_dir().join(format!("colfmt-seal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sealed.bin");
        let payload = b"hello artifact".to_vec();
        write_artifact(&path, &payload, "colfmt.write").unwrap();
        assert_eq!(read_artifact(&path, "colfmt.read").unwrap(), payload);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), payload.len() + FOOTER_LEN);

        // Every proper prefix of the sealed image is a typed Corrupt error:
        // a torn write can never be mistaken for a valid artifact.
        for len in 0..on_disk.len() {
            std::fs::write(&path, &on_disk[..len]).unwrap();
            match read_artifact(&path, "colfmt.read") {
                Err(ColfmtError::Corrupt(_)) => {}
                other => panic!("torn prefix of {len} bytes: expected Corrupt, got {other:?}"),
            }
        }

        // A flipped payload bit fails the checksum.
        let mut flipped = on_disk;
        flipped[3] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let error = read_artifact(&path, "colfmt.read").unwrap_err();
        assert!(error.to_string().contains("checksum mismatch"), "{error}");

        // A pre-checksum (footerless) file is reported as such.
        std::fs::write(&path, &payload).unwrap();
        let error = read_artifact(&path, "colfmt.read").unwrap_err();
        assert!(error.to_string().contains("footer"), "{error}");

        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp.")
            })
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_table_file_roundtrips_through_read_artifact() {
        let dir = std::env::temp_dir().join(format!("colfmt-seal-table-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.col");
        let mut table = StringTable::new();
        let id = table.id_of("now");
        table.write_file(&path).unwrap();
        let payload = read_artifact(&path, "colfmt.read").unwrap();
        let loaded = LoadedTable::from_file_bytes(&payload).unwrap();
        assert_eq!(loaded.get(id).unwrap(), "now");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_magic_distinguishes_layouts() {
        let dir = std::env::temp_dir().join(format!("colfmt-magic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let shard_path = dir.join("x.col");
        ColumnShardWriter::new().write_file(&shard_path).unwrap();
        assert_eq!(file_magic(&shard_path).unwrap(), Some(SHARD_MAGIC));
        let tsv_path = dir.join("x.tsv");
        std::fs::write(&tsv_path, "hi\tthere\n").unwrap();
        assert_ne!(file_magic(&tsv_path).unwrap(), Some(SHARD_MAGIC));
        let short_path = dir.join("short");
        std::fs::write(&short_path, "ab").unwrap();
        assert_eq!(file_magic(&short_path).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
