//! Sentence tokenization.
//!
//! A small, deterministic English tokenizer: lowercases, splits on
//! whitespace, separates trailing punctuation, keeps contractions,
//! `@mentions`, `#hashtags`, URLs, email addresses, decimal numbers and
//! times intact, and preserves quoted spans as-is (quotes become their own
//! tokens so downstream argument identification can find them).

/// Tokenize a sentence into lowercase tokens.
///
/// # Examples
///
/// ```
/// let tokens = genie_nlp::tokenize("Post \"Hello, World!\" on Twitter at 8:30am");
/// assert_eq!(
///     tokens,
///     vec!["post", "\"", "hello", ",", "world", "!", "\"", "on", "twitter", "at", "8:30am"]
/// );
/// ```
pub fn tokenize(sentence: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for raw in sentence.split_whitespace() {
        split_token(raw, &mut tokens);
    }
    tokens
}

/// Tokenize a sentence directly into an interned
/// [`TokenStream`](crate::intern::TokenStream) — the
/// single entry point that turns external text (serving requests,
/// evaluation data) into the symbol representation the pipeline uses
/// internally. Unseen words intern into the worker-local overlay; commit
/// them ([`Interner::commit`](crate::intern::Interner::commit)) before the
/// stream escapes the batch.
///
/// For text the pipeline itself produced, prefer the cached per-symbol
/// expansion ([`crate::intern::Interner::tokenized`]) — it never re-runs
/// the tokenizer.
pub fn tokenize_into(
    sentence: &str,
    interner: &mut crate::intern::LocalInterner<'_>,
    out: &mut crate::intern::TokenStream,
) {
    let mut pieces = Vec::new();
    for raw in sentence.split_whitespace() {
        pieces.clear();
        split_token(raw, &mut pieces);
        for piece in &pieces {
            out.push(interner.intern(piece));
        }
    }
}

pub(crate) fn split_token(raw: &str, out: &mut Vec<String>) {
    let mut word = raw.to_lowercase();
    // Leading quotes/punctuation.
    loop {
        let Some(first) = word.chars().next() else {
            return;
        };
        if matches!(first, '"' | '(' | '[' | '\'' | '“' | '”') {
            out.push(normalize_quote(first));
            word.remove(0);
        } else {
            break;
        }
    }
    // Protect tokens that keep internal punctuation.
    if is_protected(&word) {
        out.push(word);
        return;
    }
    // Trailing punctuation (possibly several, e.g. `world!"`).
    let mut trailing: Vec<String> = Vec::new();
    while let Some(last) = word.chars().last() {
        if matches!(
            last,
            '.' | ',' | '!' | '?' | ';' | ':' | ')' | ']' | '"' | '\'' | '“' | '”'
        ) && !is_protected(&word)
        {
            word.pop();
            trailing.push(normalize_quote(last));
        } else {
            break;
        }
    }
    // Internal commas in plain words ("hello,world") are rare; split on
    // remaining internal quotes only.
    if !word.is_empty() {
        out.push(word);
    }
    out.extend(trailing.into_iter().rev());
}

fn normalize_quote(c: char) -> String {
    match c {
        '“' | '”' => "\"".to_owned(),
        other => other.to_string(),
    }
}

/// Tokens whose internal punctuation is meaningful and must not be split:
/// numbers, decimals, times, URLs, emails, handles, hashtags, file names.
fn is_protected(word: &str) -> bool {
    if word.is_empty() {
        return false;
    }
    if word.starts_with('@') || word.starts_with('#') {
        return true;
    }
    if word.contains("://") || word.starts_with("www.") {
        return true;
    }
    if word.contains('@') && word.contains('.') {
        return true;
    }
    let has_digit = word.chars().any(|c| c.is_ascii_digit());
    if has_digit {
        // 8:30am, 1.5, 3,000, 25c, $10, 60f
        let ok = word.chars().all(|c| {
            c.is_ascii_alphanumeric() || matches!(c, ':' | '.' | ',' | '$' | '%' | '-' | '+')
        });
        if ok {
            return true;
        }
    }
    // File names like report.pdf
    if let Some((stem, ext)) = word.rsplit_once('.') {
        if !stem.is_empty() && ext.len() <= 4 && ext.chars().all(|c| c.is_ascii_alphanumeric()) {
            return true;
        }
    }
    false
}

/// Join tokens back into a sentence (inverse of [`tokenize`] up to spacing).
pub fn detokenize(tokens: &[String]) -> String {
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits_punctuation() {
        assert_eq!(
            tokenize("Remind me, please!"),
            vec!["remind", "me", ",", "please", "!"]
        );
    }

    #[test]
    fn preserves_times_numbers_and_handles() {
        assert_eq!(
            tokenize("wake me at 8:30am with 2.5 songs by @taylorswift #nowplaying"),
            vec![
                "wake",
                "me",
                "at",
                "8:30am",
                "with",
                "2.5",
                "songs",
                "by",
                "@taylorswift",
                "#nowplaying"
            ]
        );
    }

    #[test]
    fn preserves_urls_emails_and_files() {
        let tokens =
            tokenize("email bob@example.com the file report.pdf from https://example.com/x");
        assert!(tokens.contains(&"bob@example.com".to_owned()));
        assert!(tokens.contains(&"report.pdf".to_owned()));
        assert!(tokens.contains(&"https://example.com/x".to_owned()));
    }

    #[test]
    fn quotes_become_tokens() {
        let tokens = tokenize("post \"funny cat\" on facebook");
        assert_eq!(
            tokens,
            vec!["post", "\"", "funny", "cat", "\"", "on", "facebook"]
        );
    }

    #[test]
    fn curly_quotes_are_normalized() {
        let tokens = tokenize("post “funny cat” now");
        assert_eq!(tokens, vec!["post", "\"", "funny", "cat", "\"", "now"]);
    }

    #[test]
    fn detokenize_roundtrip_is_space_joined() {
        let tokens = tokenize("tweet hello world");
        assert_eq!(detokenize(&tokens), "tweet hello world");
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }
}
